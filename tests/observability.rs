//! End-to-end contracts of the observability layer: traces are
//! deterministic, JSON-lines sinks parse back, and every counter in the
//! event stream reconciles with the final [`RunReport`].

use bayescrowd::prelude::*;
use bc_crowd::{FaultConfig, FaultyPlatform, GroundTruthOracle, SimulatedPlatform};
use bc_data::generators::sample::{paper_completion, paper_dataset};
use proptest::prelude::*;

fn sample_config() -> BayesCrowdConfig {
    BayesCrowdConfig::builder()
        .budget(20)
        .latency(10)
        .alpha(1.0)
        .strategy(TaskStrategy::Hhs { m: 2 })
        .build()
        .expect("the sample configuration is valid")
}

/// Runs the paper sample against a simulated crowd, recording every event.
/// PlatformExhausted still carries a full report, so both outcomes fold
/// into the same shape.
fn run_recorded(accuracy: f64, seed: u64) -> (RunReport, MetricsRecorder) {
    let data = paper_dataset();
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, accuracy, seed);
    let mut metrics = MetricsRecorder::new();
    let report = match BayesCrowd::new(sample_config()).try_run(&data, &mut platform, &mut metrics)
    {
        Ok(r) => r,
        Err(RunError::PlatformExhausted { report }) => *report,
        Err(e) => panic!("unexpected run error: {e}"),
    };
    (report, metrics)
}

/// The event sequence of a seeded run is deterministic once timing fields
/// are redacted: the trace is a golden artifact, not a best-effort log.
#[test]
fn golden_trace_is_deterministic_modulo_timing() {
    let (_, a) = run_recorded(1.0, 42);
    let (_, b) = run_recorded(1.0, 42);
    assert_eq!(a.redacted_events(), b.redacted_events());
    assert!(!a.events().is_empty());
}

/// Structural invariants of any trace: RunStarted first, RunFinished last,
/// and every RoundStarted paired with exactly one RoundFinished for the
/// same round number, in order.
#[test]
fn trace_is_well_formed() {
    let (_, metrics) = run_recorded(1.0, 7);
    let events = metrics.events();
    assert!(matches!(events.first(), Some(Event::RunStarted { .. })));
    assert!(matches!(events.last(), Some(Event::RunFinished { .. })));
    let mut open_round: Option<usize> = None;
    let mut finished = Vec::new();
    for e in events {
        match e {
            Event::RoundStarted { round } => {
                assert_eq!(open_round, None, "round {round} started inside a round");
                open_round = Some(*round);
            }
            Event::RoundFinished { round, .. } => {
                assert_eq!(open_round, Some(*round), "round {round} finished unopened");
                open_round = None;
                finished.push(*round);
            }
            _ => {}
        }
    }
    assert_eq!(open_round, None, "a round was never finished");
    let expected: Vec<usize> = (1..=finished.len()).collect();
    assert_eq!(finished, expected, "rounds must finish in order, no gaps");
}

/// Writes a seeded end-to-end trace through the JSON-lines sink, parses it
/// back, and reconciles its counters against the final report.
#[test]
fn json_lines_trace_reconciles_with_the_report() {
    let path = std::env::temp_dir().join(format!("bc-obs-trace-{}.jsonl", std::process::id()));
    let data = paper_dataset();
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 42);
    let mut sink = JsonLinesSink::create(&path).expect("temp file is writable");
    let report = BayesCrowd::new(sample_config())
        .try_run(&data, &mut platform, &mut sink)
        .expect("the sample run succeeds");
    let written = sink.events_written();
    assert!(sink.io_error().is_none());
    drop(sink);

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let _ = std::fs::remove_file(&path);
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let (seq, event) =
            Event::from_json_line(line).unwrap_or_else(|| panic!("unparseable line {i}: {line}"));
        assert_eq!(seq, i as u64, "sequence numbers are dense and ordered");
        events.push(event);
    }
    assert_eq!(events.len() as u64, written);

    // Replay the parsed trace through a recorder: the aggregates must match
    // the report the run itself returned.
    let mut replay = MetricsRecorder::new();
    for e in &events {
        replay.event(e);
    }
    let c = replay.counters();
    assert_eq!(c.posted as usize, report.crowd.tasks_posted);
    assert_eq!(c.expired as usize, report.tasks_expired);
    assert_eq!(c.retried as usize, report.tasks_retried);
    assert_eq!(c.probability_evals, report.probability_evals);
    match events.last() {
        Some(&Event::RunFinished {
            rounds,
            tasks_posted,
            tasks_expired,
            tasks_retried,
            probability_evals,
            ..
        }) => {
            assert_eq!(rounds, report.crowd.rounds);
            assert_eq!(tasks_posted, report.crowd.tasks_posted);
            assert_eq!(tasks_expired, report.tasks_expired);
            assert_eq!(tasks_retried, report.tasks_retried);
            assert_eq!(probability_evals, report.probability_evals);
        }
        other => panic!("trace must end in RunFinished, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary fault injection, every round's counters reconcile
    /// (`posted = answered + expired + requeued`) and the trace totals
    /// match the report — including the tasks abandoned at shutdown.
    #[test]
    fn round_counters_reconcile_under_faults(
        seed in 0u64..1000,
        expiry in 0.0f64..1.0,
        attrition in 0.0f64..0.5,
        duplicate in 0.0f64..0.5,
    ) {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let sim = SimulatedPlatform::new(oracle, 1.0, seed);
        let faults = FaultConfig {
            expiry_prob: expiry,
            attrition,
            duplicate_prob: duplicate,
            ..FaultConfig::default()
        };
        let mut platform = FaultyPlatform::new(sim, faults, seed ^ 0x5eed);
        let mut metrics = MetricsRecorder::new();
        let report = match BayesCrowd::new(sample_config())
            .try_run(&data, &mut platform, &mut metrics)
        {
            Ok(r) => r,
            Err(RunError::PlatformExhausted { report }) => *report,
            Err(e) => panic!("unexpected run error: {e}"),
        };

        let mut abandoned = 0usize;
        for e in metrics.events() {
            match *e {
                Event::RoundFinished { round, posted, answered, expired, requeued, .. } => {
                    prop_assert_eq!(
                        posted,
                        answered + expired + requeued,
                        "round {} does not reconcile",
                        round
                    );
                }
                Event::Degraded { tasks_abandoned } => abandoned += tasks_abandoned,
                _ => {}
            }
        }
        let c = metrics.counters();
        prop_assert_eq!(c.posted as usize, report.crowd.tasks_posted);
        prop_assert_eq!(c.expired as usize + abandoned, report.tasks_expired);
        prop_assert_eq!(c.retried as usize, report.tasks_retried);
        prop_assert_eq!(c.probability_evals, report.probability_evals);
    }
}
