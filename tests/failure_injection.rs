//! Failure injection: adversarial and degenerate inputs must never panic or
//! violate the budget/latency contracts.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::domain::uniform_domains;
use bc_data::{AttrId, Dataset, ObjectId};

fn config(strategy: TaskStrategy) -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 30,
        latency: 5,
        alpha: 1.0,
        strategy,
        ..Default::default()
    }
}

fn complete_random(n: usize, d: usize, card: u16, seed: u64) -> Dataset {
    bc_data::generators::classic::independent(n, d, card, seed)
}

/// Workers that are always wrong (accuracy 0) can contradict themselves
/// across rounds; the run must terminate cleanly with the budget respected.
#[test]
fn always_wrong_workers_do_not_break_the_run() {
    let complete = complete_random(40, 3, 6, 1);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.3, 2);
    for strategy in [TaskStrategy::Fbs, TaskStrategy::Hhs { m: 3 }] {
        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 0.0, 3);
        let report = BayesCrowd::new(config(strategy)).run(&incomplete, &mut platform);
        assert!(report.crowd.tasks_posted <= 30);
        assert!(report.crowd.rounds <= 5);
        // The result is garbage, but it is a well-formed result.
        for o in &report.result {
            assert!(o.index() < incomplete.n_objects());
        }
    }
}

/// Coin-flip workers (accuracy 1/3 ≈ random over three choices).
#[test]
fn random_workers_terminate() {
    let complete = complete_random(30, 3, 6, 4);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.4, 5);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0 / 3.0, 6);
    let report = BayesCrowd::new(config(TaskStrategy::Ubs)).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 30);
}

/// A dataset where everything is missing: every pmf is a prior, every
/// object's condition involves only variables.
#[test]
fn fully_missing_dataset() {
    let n = 8;
    let d = 2;
    let rows = vec![vec![None; d]; n];
    let incomplete = Dataset::from_rows("void", uniform_domains(d, 4).unwrap(), rows).unwrap();
    let complete = complete_random(n, d, 4, 7);
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 8);
    let cfg = BayesCrowdConfig {
        budget: 200,
        latency: 20,
        ..config(TaskStrategy::Fbs)
    };
    let report = BayesCrowd::new(cfg).run(&incomplete, &mut platform);
    // With enough budget and perfect workers the skyline may still not be
    // fully recoverable through [Var op Var] questions alone when ties
    // exist, but the run must terminate and answers must be sane.
    assert!(report.crowd.rounds <= 20);
    for o in &report.certain {
        assert!(o.index() < n);
    }
}

/// A single object is trivially the whole skyline, with no crowd needed.
#[test]
fn single_object_dataset() {
    let incomplete = Dataset::from_rows(
        "one",
        uniform_domains(3, 4).unwrap(),
        vec![vec![Some(1), None, Some(3)]],
    )
    .unwrap();
    let complete =
        Dataset::from_complete_rows("one", uniform_domains(3, 4).unwrap(), vec![vec![1, 2, 3]])
            .unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 9);
    let report = BayesCrowd::new(config(TaskStrategy::Fbs)).run(&incomplete, &mut platform);
    assert_eq!(report.result, vec![ObjectId(0)]);
    assert_eq!(report.crowd.tasks_posted, 0);
    assert_eq!(report.accuracy.unwrap().f1, 1.0);
}

/// Duplicated objects (full ties) everywhere: the paper's CNF treats a
/// fully observed tie as non-dominating, so all duplicates survive; the run
/// must not loop or panic on the degenerate structure.
#[test]
fn all_identical_objects() {
    let n = 6;
    let rows = vec![vec![Some(2), Some(2)]; n];
    let incomplete = Dataset::from_rows("dup", uniform_domains(2, 4).unwrap(), rows).unwrap();
    let complete =
        Dataset::from_complete_rows("dup", uniform_domains(2, 4).unwrap(), vec![vec![2, 2]; n])
            .unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 10);
    let report =
        BayesCrowd::new(config(TaskStrategy::Hhs { m: 2 })).run(&incomplete, &mut platform);
    assert_eq!(report.result.len(), n, "ties never dominate");
    assert_eq!(report.crowd.tasks_posted, 0);
}

/// Contradictory constraint masks (wrong Eq answers emptying a variable's
/// candidate set) must leave the engine running on its remaining knowledge.
#[test]
fn contradictory_answers_leave_a_consistent_engine() {
    // Accuracy 0 guarantees wrong answers; with repeated questions about the
    // same variables across rounds, masks can empty out.
    let complete = complete_random(20, 2, 4, 11);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.5, 12);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 0.0, 13);
    let cfg = BayesCrowdConfig {
        budget: 100,
        latency: 25,
        ..config(TaskStrategy::Fbs)
    };
    let report = BayesCrowd::new(cfg).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 100);
    // Probabilities reported for still-open objects stay within [0, 1].
    for p in report.open_probabilities.values() {
        assert!((0.0..=1.0).contains(p), "probability {p} out of range");
    }
}

/// CrowdSky with an empty crowd-attribute set and zero-size rounds is
/// rejected or degenerates gracefully.
#[test]
fn crowdsky_degenerate_inputs() {
    use crowdsky::{CrowdSky, CrowdSkyConfig};
    let complete = complete_random(10, 3, 6, 14);
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 15);
    // Complete data: no crowd attributes at all.
    let report = CrowdSky::new(CrowdSkyConfig { round_size: 1 }).run(&complete, &mut platform);
    assert_eq!(report.crowd.tasks_posted, 0);
    assert_eq!(report.accuracy.unwrap().f1, 1.0);
}

/// Mixed observed/missing attribute required by CrowdSky is validated.
#[test]
#[should_panic(expected = "fully observed or fully missing")]
fn crowdsky_rejects_mcar_data() {
    use crowdsky::{CrowdSky, CrowdSkyConfig};
    let complete = complete_random(10, 3, 6, 16);
    let mut incomplete = complete.clone();
    incomplete.set(ObjectId(0), AttrId(0), None).unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
    let _ = CrowdSky::new(CrowdSkyConfig::default()).run(&incomplete, &mut platform);
}

// ---------------------------------------------------------------------------
// Fault matrix: FaultyPlatform + RetryPolicy against the framework's
// budget/latency contracts and graceful-degradation guarantees.
// ---------------------------------------------------------------------------

use bayescrowd::{RetryPolicy, RunReport};
use bc_crowd::{
    CrowdPlatform, CrowdStats, FaultConfig, FaultyPlatform, SpammerKind, Task, TaskOutcome,
    TaskResult,
};
use bc_ctable::{Operand, Relation};

const MATRIX_STRATEGIES: [TaskStrategy; 3] = [
    TaskStrategy::Fbs,
    TaskStrategy::Ubs,
    TaskStrategy::Hhs { m: 3 },
];

fn faulty_workload() -> (Dataset, Dataset) {
    let complete = complete_random(60, 3, 8, 21);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.25, 22);
    (complete, incomplete)
}

fn run_with_faults(
    strategy: TaskStrategy,
    faults: FaultConfig,
    retry: RetryPolicy,
    budget: usize,
    latency: usize,
) -> RunReport {
    let (complete, incomplete) = faulty_workload();
    let cfg = BayesCrowdConfig {
        budget,
        latency,
        alpha: 1.0,
        strategy,
        retry,
        ..Default::default()
    };
    let inner = SimulatedPlatform::new(GroundTruthOracle::new(complete), 1.0, 23);
    let mut platform = FaultyPlatform::new(inner, faults, 24);
    BayesCrowd::new(cfg).run(&incomplete, &mut platform)
}

fn assert_contracts(report: &RunReport, budget: usize, latency: usize, label: &str) {
    assert!(
        report.crowd.tasks_posted <= budget,
        "{label}: {} tasks posted over budget {budget}",
        report.crowd.tasks_posted
    );
    assert!(
        report.crowd.rounds <= latency,
        "{label}: {} rounds over latency {latency}",
        report.crowd.rounds
    );
    for p in report.open_probabilities.values() {
        assert!((0.0..=1.0).contains(p), "{label}: probability {p}");
    }
}

/// Acceptance: a seeded 30%-expiry run with retries enabled terminates
/// within B and L, reports its degradation honestly, and lands within 0.15
/// F1 of the fault-free run on the same platform seed.
#[test]
fn thirty_percent_expiry_with_retries_stays_close_to_fault_free() {
    let (budget, latency) = (60, 10);
    for strategy in MATRIX_STRATEGIES {
        let clean = run_with_faults(
            strategy,
            FaultConfig::default(),
            RetryPolicy::default(),
            budget,
            latency,
        );
        assert!(!clean.degraded, "no faults, nothing to give up on");
        assert_eq!(clean.tasks_expired, 0);

        let faulty = run_with_faults(
            strategy,
            FaultConfig {
                expiry_prob: 0.3,
                ..FaultConfig::default()
            },
            RetryPolicy::default(),
            budget,
            latency,
        );
        assert_contracts(&faulty, budget, latency, "expiry-30");
        assert!(
            faulty.tasks_retried > 0,
            "30% expiry must trigger re-posts: {}",
            faulty.summary()
        );
        let f1_clean = clean.accuracy.unwrap().f1;
        let f1_faulty = faulty.accuracy.unwrap().f1;
        assert!(
            (f1_clean - f1_faulty).abs() <= 0.15,
            "{}: faulty f1 {f1_faulty:.3} strayed from clean {f1_clean:.3}",
            strategy.name()
        );
    }
}

/// Total workforce attrition after the first round: everything later
/// expires, retries can't help, and the run must degrade instead of hanging.
#[test]
fn total_attrition_mid_run_degrades_gracefully() {
    let (budget, latency) = (60, 10);
    for strategy in MATRIX_STRATEGIES {
        let report = run_with_faults(
            strategy,
            FaultConfig {
                attrition: 1.0,
                ..FaultConfig::default()
            },
            RetryPolicy::default(),
            budget,
            latency,
        );
        assert_contracts(&report, budget, latency, "attrition-total");
        assert!(
            report.degraded,
            "{}: a dead workforce must degrade the run: {}",
            strategy.name(),
            report.summary()
        );
        assert!(report.tasks_expired > 0, "{}", report.summary());
        // Certain answers derived before the collapse are still reported.
        for o in &report.result {
            assert!(o.index() < 60);
        }
    }
}

/// Adversarial spammers who always invert the truth: answers are worse than
/// useless, but the run still honors its contracts and returns a
/// well-formed (if wrong) answer set.
#[test]
fn adversarial_spammers_never_break_the_contracts() {
    let (budget, latency) = (60, 10);
    for strategy in MATRIX_STRATEGIES {
        let report = run_with_faults(
            strategy,
            FaultConfig {
                spammer_rate: 1.0,
                spammer_kind: SpammerKind::Adversarial,
                ..FaultConfig::default()
            },
            RetryPolicy::default(),
            budget,
            latency,
        );
        assert_contracts(&report, budget, latency, "adversarial");
        for o in &report.result {
            assert!(o.index() < 60);
        }
    }
}

/// The full storm at once — expiry, attrition, spam, stragglers, and
/// duplicates, with escalating backed-off retries — must terminate cleanly.
#[test]
fn combined_fault_storm_terminates_within_contracts() {
    let (budget, latency) = (60, 10);
    let report = run_with_faults(
        TaskStrategy::Hhs { m: 3 },
        FaultConfig {
            expiry_prob: 0.25,
            attrition: 0.1,
            spammer_rate: 0.2,
            spammer_kind: SpammerKind::Fixed(Relation::Gt),
            straggler_prob: 0.3,
            straggler_penalty: 1,
            duplicate_prob: 0.15,
        },
        RetryPolicy {
            max_attempts: 3,
            escalate_workers: 2,
            backoff_base: 1,
        },
        budget,
        latency,
    );
    assert!(report.crowd.tasks_posted <= budget);
    // Stragglers may overshoot the final round's latency charge by at most
    // one penalty; the loop never *starts* a round beyond L.
    assert!(
        report.crowd.rounds <= latency + 1,
        "{} rounds with straggler penalty 1 over latency {latency}",
        report.crowd.rounds
    );
}

/// No-retry policy: failed tasks are abandoned immediately and counted.
#[test]
fn retries_disabled_counts_failures_as_expired() {
    let (budget, latency) = (60, 10);
    let report = run_with_faults(
        TaskStrategy::Fbs,
        FaultConfig {
            expiry_prob: 0.5,
            ..FaultConfig::default()
        },
        RetryPolicy::none(),
        budget,
        latency,
    );
    assert_contracts(&report, budget, latency, "no-retry");
    assert_eq!(report.tasks_retried, 0, "retries are disabled");
    assert!(report.degraded);
    assert!(report.tasks_expired > 0);
}

// ---------------------------------------------------------------------------
// A test-local platform: proves BayesCrowd::run depends only on the
// CrowdPlatform trait, not on SimulatedPlatform.
// ---------------------------------------------------------------------------

/// Answers every task truthfully from a captured dataset, except that every
/// `fail_every`-th task expires. No rand, no bc-crowd simulator machinery.
struct ScriptedPlatform {
    truth: Dataset,
    fail_every: usize,
    posted: usize,
    stats: CrowdStats,
}

impl ScriptedPlatform {
    fn new(truth: Dataset, fail_every: usize) -> ScriptedPlatform {
        ScriptedPlatform {
            truth,
            fail_every,
            posted: 0,
            stats: CrowdStats::default(),
        }
    }
}

impl CrowdPlatform for ScriptedPlatform {
    fn post_round(&mut self, tasks: &[Task]) -> Vec<TaskResult> {
        if tasks.is_empty() {
            return Vec::new();
        }
        self.stats.rounds += 1;
        self.stats.tasks_posted += tasks.len();
        tasks
            .iter()
            .map(|t| {
                self.posted += 1;
                let outcome = if self.fail_every > 0 && self.posted.is_multiple_of(self.fail_every)
                {
                    TaskOutcome::Expired
                } else {
                    self.stats.worker_answers += 1;
                    self.stats.money_spent += 1;
                    let l = self.truth.get(t.var.object, t.var.attr).unwrap();
                    let r = match t.rhs {
                        Operand::Const(c) => c,
                        Operand::Var(v) => self.truth.get(v.object, v.attr).unwrap(),
                    };
                    TaskOutcome::Answered(Relation::between(l, r))
                };
                TaskResult { task: *t, outcome }
            })
            .collect()
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }

    fn ground_truth(&self) -> Option<&Dataset> {
        Some(&self.truth)
    }
}

/// The engine runs against a platform it has never heard of, retries its
/// scripted failures, and still solves the query.
#[test]
fn engine_runs_against_a_foreign_platform_implementation() {
    let (complete, incomplete) = faulty_workload();
    let cfg = BayesCrowdConfig {
        budget: 80,
        latency: 16,
        alpha: 1.0,
        strategy: TaskStrategy::Hhs { m: 3 },
        retry: RetryPolicy::default(),
        ..Default::default()
    };
    let mut platform = ScriptedPlatform::new(complete, 5);
    let report = BayesCrowd::new(cfg).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 80);
    assert!(
        report.tasks_retried > 0,
        "every 5th task expires, so retries must fire: {}",
        report.summary()
    );
    assert!(
        report.accuracy.unwrap().f1 >= 0.85,
        "truthful answers + retries should nearly solve it: {}",
        report.summary()
    );
}
