//! Failure injection: adversarial and degenerate inputs must never panic or
//! violate the budget/latency contracts.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::domain::uniform_domains;
use bc_data::{AttrId, Dataset, ObjectId};

fn config(strategy: TaskStrategy) -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 30,
        latency: 5,
        alpha: 1.0,
        strategy,
        ..Default::default()
    }
}

fn complete_random(n: usize, d: usize, card: u16, seed: u64) -> Dataset {
    bc_data::generators::classic::independent(n, d, card, seed)
}

/// Workers that are always wrong (accuracy 0) can contradict themselves
/// across rounds; the run must terminate cleanly with the budget respected.
#[test]
fn always_wrong_workers_do_not_break_the_run() {
    let complete = complete_random(40, 3, 6, 1);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.3, 2);
    for strategy in [TaskStrategy::Fbs, TaskStrategy::Hhs { m: 3 }] {
        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 0.0, 3);
        let report = BayesCrowd::new(config(strategy)).run(&incomplete, &mut platform);
        assert!(report.crowd.tasks_posted <= 30);
        assert!(report.crowd.rounds <= 5);
        // The result is garbage, but it is a well-formed result.
        for o in &report.result {
            assert!(o.index() < incomplete.n_objects());
        }
    }
}

/// Coin-flip workers (accuracy 1/3 ≈ random over three choices).
#[test]
fn random_workers_terminate() {
    let complete = complete_random(30, 3, 6, 4);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.4, 5);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0 / 3.0, 6);
    let report = BayesCrowd::new(config(TaskStrategy::Ubs)).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 30);
}

/// A dataset where everything is missing: every pmf is a prior, every
/// object's condition involves only variables.
#[test]
fn fully_missing_dataset() {
    let n = 8;
    let d = 2;
    let rows = vec![vec![None; d]; n];
    let incomplete = Dataset::from_rows("void", uniform_domains(d, 4).unwrap(), rows).unwrap();
    let complete = complete_random(n, d, 4, 7);
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 8);
    let cfg = BayesCrowdConfig {
        budget: 200,
        latency: 20,
        ..config(TaskStrategy::Fbs)
    };
    let report = BayesCrowd::new(cfg).run(&incomplete, &mut platform);
    // With enough budget and perfect workers the skyline may still not be
    // fully recoverable through [Var op Var] questions alone when ties
    // exist, but the run must terminate and answers must be sane.
    assert!(report.crowd.rounds <= 20);
    for o in &report.certain {
        assert!(o.index() < n);
    }
}

/// A single object is trivially the whole skyline, with no crowd needed.
#[test]
fn single_object_dataset() {
    let incomplete = Dataset::from_rows(
        "one",
        uniform_domains(3, 4).unwrap(),
        vec![vec![Some(1), None, Some(3)]],
    )
    .unwrap();
    let complete = Dataset::from_complete_rows(
        "one",
        uniform_domains(3, 4).unwrap(),
        vec![vec![1, 2, 3]],
    )
    .unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 9);
    let report = BayesCrowd::new(config(TaskStrategy::Fbs)).run(&incomplete, &mut platform);
    assert_eq!(report.result, vec![ObjectId(0)]);
    assert_eq!(report.crowd.tasks_posted, 0);
    assert_eq!(report.accuracy.unwrap().f1, 1.0);
}

/// Duplicated objects (full ties) everywhere: the paper's CNF treats a
/// fully observed tie as non-dominating, so all duplicates survive; the run
/// must not loop or panic on the degenerate structure.
#[test]
fn all_identical_objects() {
    let n = 6;
    let rows = vec![vec![Some(2), Some(2)]; n];
    let incomplete = Dataset::from_rows("dup", uniform_domains(2, 4).unwrap(), rows).unwrap();
    let complete = Dataset::from_complete_rows(
        "dup",
        uniform_domains(2, 4).unwrap(),
        vec![vec![2, 2]; n],
    )
    .unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 10);
    let report = BayesCrowd::new(config(TaskStrategy::Hhs { m: 2 })).run(&incomplete, &mut platform);
    assert_eq!(report.result.len(), n, "ties never dominate");
    assert_eq!(report.crowd.tasks_posted, 0);
}

/// Contradictory constraint masks (wrong Eq answers emptying a variable's
/// candidate set) must leave the engine running on its remaining knowledge.
#[test]
fn contradictory_answers_leave_a_consistent_engine() {
    // Accuracy 0 guarantees wrong answers; with repeated questions about the
    // same variables across rounds, masks can empty out.
    let complete = complete_random(20, 2, 4, 11);
    let (incomplete, _) = bc_data::missing::inject_mcar(&complete, 0.5, 12);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 0.0, 13);
    let cfg = BayesCrowdConfig {
        budget: 100,
        latency: 25,
        ..config(TaskStrategy::Fbs)
    };
    let report = BayesCrowd::new(cfg).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 100);
    // Probabilities reported for still-open objects stay within [0, 1].
    for (_, p) in &report.open_probabilities {
        assert!((0.0..=1.0).contains(p), "probability {p} out of range");
    }
}

/// CrowdSky with an empty crowd-attribute set and zero-size rounds is
/// rejected or degenerates gracefully.
#[test]
fn crowdsky_degenerate_inputs() {
    use crowdsky::{CrowdSky, CrowdSkyConfig};
    let complete = complete_random(10, 3, 6, 14);
    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 15);
    // Complete data: no crowd attributes at all.
    let report = CrowdSky::new(CrowdSkyConfig { round_size: 1 }).run(&complete, &mut platform);
    assert_eq!(report.crowd.tasks_posted, 0);
    assert_eq!(report.accuracy.unwrap().f1, 1.0);
}

/// Mixed observed/missing attribute required by CrowdSky is validated.
#[test]
#[should_panic(expected = "fully observed or fully missing")]
fn crowdsky_rejects_mcar_data() {
    use crowdsky::{CrowdSky, CrowdSkyConfig};
    let complete = complete_random(10, 3, 6, 16);
    let mut incomplete = complete.clone();
    incomplete.set(ObjectId(0), AttrId(0), None).unwrap();
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
    let _ = CrowdSky::new(CrowdSkyConfig::default()).run(&incomplete, &mut platform);
}
