//! Integration test: the paper's running example, cross-crate.
//!
//! Covers Table 1 (sample data), Table 3 (c-table), Table 4 (dominator
//! sets), Example 3 (Pr(φ(o5)) = 0.823), Table 5 (the c-table update), and
//! Example 4's final outcome.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_bayes::Pmf;
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_ctable::dominators::DominatorIndex;
use bc_ctable::{build_ctable, CTableConfig, Condition, DominatorStrategy};
use bc_data::generators::sample::{paper_completion, paper_dataset};
use bc_data::{ObjectId, VarId};
use bc_solver::{AdpllSolver, NaiveSolver, Solver, VarDists};

fn sample_ctable() -> bc_ctable::CTable {
    build_ctable(
        &paper_dataset(),
        &CTableConfig {
            alpha: 1.0,
            strategy: DominatorStrategy::FastIndex,
        },
    )
}

/// Example 3's hand-specified distributions: a2 uniform over 0..=9, a3
/// uniform over 0..=7, a4 with weights (.1, .1, .2, .2, .3, .1).
fn example3_dists() -> VarDists {
    let a2 = Pmf::uniform(10);
    let a3 = Pmf::uniform(8);
    let a4 = Pmf::from_weights(vec![0.1, 0.1, 0.2, 0.2, 0.3, 0.1]);
    [
        (VarId::new(1, 1), a2.clone()), // Var(o2, a2)
        (VarId::new(2, 2), a3.clone()), // Var(o3, a3)
        (VarId::new(4, 1), a2),         // Var(o5, a2)
        (VarId::new(4, 2), a3),         // Var(o5, a3)
        (VarId::new(4, 3), a4),         // Var(o5, a4)
    ]
    .into_iter()
    .collect()
}

#[test]
fn table_4_dominator_sets() {
    let data = paper_dataset();
    let idx = DominatorIndex::build(&data);
    let sets: Vec<Vec<usize>> = data
        .objects()
        .map(|o| idx.dominator_set(&data, o).iter().collect())
        .collect();
    assert_eq!(sets, vec![vec![4], vec![], vec![], vec![1, 4], vec![0, 1]]);
}

#[test]
fn table_3_conditions_are_generated() {
    let ct = sample_ctable();
    assert_eq!(*ct.condition(ObjectId(1)), Condition::True);
    assert_eq!(*ct.condition(ObjectId(2)), Condition::True);
    assert_eq!(ct.condition(ObjectId(0)).clauses().len(), 1);
    assert_eq!(ct.condition(ObjectId(0)).n_exprs(), 3);
    assert_eq!(ct.condition(ObjectId(3)).clauses().len(), 2);
    assert_eq!(ct.condition(ObjectId(3)).n_exprs(), 4);
    assert_eq!(ct.condition(ObjectId(4)).clauses().len(), 2);
    assert_eq!(ct.condition(ObjectId(4)).n_exprs(), 6);
}

/// Example 3: the probability of φ(o5) under the example distributions is
/// 0.823, and ADPLL computes it exactly (so does Naive).
#[test]
fn example_3_probability_of_o5() {
    let ct = sample_ctable();
    let dists = example3_dists();
    let cond = ct.condition(ObjectId(4));
    let adpll = AdpllSolver::new().probability(cond, &dists).unwrap();
    let naive = NaiveSolver::new().probability(cond, &dists).unwrap();
    assert!((adpll - 0.823).abs() < 1e-9, "ADPLL got {adpll}");
    assert!((naive - 0.823).abs() < 1e-9, "Naive got {naive}");
}

/// Example 4 (first iteration): the entropies of the three open objects are
/// roughly H(o1)=0.72, H(o4)=0.62, H(o5)=0.67 under the example
/// distributions, so o1 and o5 are selected.
#[test]
fn example_4_entropy_ranking() {
    let ct = sample_ctable();
    let dists = example3_dists();
    let solver = AdpllSolver::new();
    let h = |o: u32| {
        let p = solver
            .probability(ct.condition(ObjectId(o)), &dists)
            .unwrap();
        bc_solver::utility::object_entropy(p)
    };
    let (h1, h4, h5) = (h(0), h(3), h(4));
    assert!((h1 - 0.72).abs() < 0.02, "H(o1) = {h1}");
    assert!((h4 - 0.62).abs() < 0.02, "H(o4) = {h4}");
    assert!((h5 - 0.67).abs() < 0.02, "H(o5) = {h5}");
    assert!(h1 > h5 && h5 > h4, "selection order must be o1, o5, o4");
}

/// The end-to-end run with ample budget returns exactly the completion's
/// skyline {o1, o2, o3, o5} with zero remaining uncertainty.
#[test]
fn example_4_final_outcome() {
    let data = paper_dataset();
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 123);
    let config = BayesCrowdConfig {
        budget: 30,
        latency: 15,
        alpha: 1.0,
        strategy: TaskStrategy::Hhs { m: 2 },
        ..Default::default()
    };
    let report = BayesCrowd::new(config).run(&data, &mut platform);
    assert_eq!(
        report.result,
        vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
    );
    assert_eq!(report.open_exprs_left, 0);
    assert_eq!(report.accuracy.unwrap().f1, 1.0);
    // The crowd was needed: at least the paper's four decisive tasks.
    assert!(report.crowd.tasks_posted >= 4);
}

/// All three strategies find the same answer here, differing only in cost.
#[test]
fn strategies_agree_on_the_sample_outcome() {
    for strategy in [
        TaskStrategy::Fbs,
        TaskStrategy::Ubs,
        TaskStrategy::Hhs { m: 2 },
    ] {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 321);
        let config = BayesCrowdConfig {
            budget: 30,
            latency: 15,
            alpha: 1.0,
            strategy,
            ..Default::default()
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(
            report.result,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)],
            "strategy {strategy:?}"
        );
    }
}
