//! Property tests on the data substrate: the two skyline algorithms agree,
//! injection accounting is exact, and pmf operations obey probability laws.

use bc_bayes::Pmf;
use bc_data::domain::uniform_domains;
use bc_data::missing::inject_mcar;
use bc_data::skyline::{dominates, skyline_bnl, skyline_sfs};
use bc_data::{Accuracy, Dataset, ObjectId};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..40, 1usize..5, 2u16..10).prop_flat_map(|(n, d, card)| {
        prop::collection::vec(prop::collection::vec(0..card, d), n).prop_map(move |rows| {
            Dataset::from_complete_rows("p", uniform_domains(d, card).unwrap(), rows).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bnl_and_sfs_skylines_agree(data in arb_dataset()) {
        prop_assert_eq!(skyline_bnl(&data).unwrap(), skyline_sfs(&data).unwrap());
    }

    #[test]
    fn skyline_objects_are_mutually_incomparable(data in arb_dataset()) {
        let sky = skyline_bnl(&data).unwrap();
        prop_assert!(!sky.is_empty(), "a non-empty dataset has a skyline");
        for &a in &sky {
            for &b in &sky {
                if a != b {
                    let ra: Vec<u16> = data.row(a).iter().map(|c| c.unwrap()).collect();
                    let rb: Vec<u16> = data.row(b).iter().map(|c| c.unwrap()).collect();
                    prop_assert!(!dominates(&ra, &rb), "{a} dominates {b} inside the skyline");
                }
            }
        }
    }

    #[test]
    fn every_non_skyline_object_has_a_dominator(data in arb_dataset()) {
        let sky = skyline_bnl(&data).unwrap();
        for o in data.objects() {
            if !sky.contains(&o) {
                let ro: Vec<u16> = data.row(o).iter().map(|c| c.unwrap()).collect();
                let dominated = data.objects().any(|p| {
                    if p == o { return false; }
                    let rp: Vec<u16> = data.row(p).iter().map(|c| c.unwrap()).collect();
                    dominates(&rp, &ro)
                });
                prop_assert!(dominated, "{o} excluded without a dominator");
            }
        }
    }

    #[test]
    fn mcar_injection_hits_the_exact_count(
        data in arb_dataset(),
        rate in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let (inc, deleted) = inject_mcar(&data, rate, seed);
        let expected = (rate * (data.n_objects() * data.n_attrs()) as f64).round() as usize;
        prop_assert_eq!(inc.n_missing(), expected);
        prop_assert_eq!(deleted.len(), expected);
        // Deleted cells existed before and are unique.
        let mut sorted = deleted.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), deleted.len());
        for v in &deleted {
            prop_assert!(data.get(v.object, v.attr).is_some());
        }
    }

    #[test]
    fn f1_is_symmetric_in_perfect_cases(ids in prop::collection::btree_set(0u32..50, 0..20)) {
        let v: Vec<ObjectId> = ids.iter().copied().map(ObjectId).collect();
        let acc = Accuracy::of(&v, &v);
        prop_assert_eq!(acc.f1, 1.0);
    }

    #[test]
    fn pmf_comparison_probabilities_are_consistent(
        weights in prop::collection::vec(0.01f64..1.0, 2..16),
        c_raw in 0u16..20,
    ) {
        let pmf = Pmf::from_weights(weights);
        let c = c_raw % pmf.card() as u16;
        // lt + eq + gt partitions the space.
        let total = pmf.pr_lt(c) + pmf.p(c) + pmf.pr_gt(c);
        prop_assert!((total - 1.0).abs() < 1e-9);
        // le/ge consistency.
        prop_assert!((pmf.pr_le(c) - pmf.pr_lt(c) - pmf.p(c)).abs() < 1e-12);
        prop_assert!((pmf.pr_ge(c) - pmf.pr_gt(c) - pmf.p(c)).abs() < 1e-12);
        // Monotonicity of the cdf.
        if c > 0 {
            prop_assert!(pmf.pr_lt(c) >= pmf.pr_lt(c - 1) - 1e-12);
        }
    }

    #[test]
    fn pmf_conditioning_is_idempotent(
        weights in prop::collection::vec(0.01f64..1.0, 2..10),
        mask in 1u64..1023,
    ) {
        let pmf = Pmf::from_weights(weights);
        if let Some(once) = pmf.conditioned(mask) {
            let twice = once.conditioned(mask).unwrap();
            for v in 0..pmf.card() as u16 {
                prop_assert!((once.p(v) - twice.p(v)).abs() < 1e-12);
            }
            // All mass inside the mask.
            for v in pmf.card() as u16..64 {
                prop_assert_eq!(once.p(v), 0.0);
            }
            let inside: f64 = once
                .support()
                .filter(|&v| mask & (1 << v) != 0)
                .map(|v| once.p(v))
                .sum();
            prop_assert!((inside - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pmf_entropy_bounds(weights in prop::collection::vec(0.01f64..1.0, 1..32)) {
        let pmf = Pmf::from_weights(weights);
        let h = pmf.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (pmf.card() as f64).log2() + 1e-12);
    }
}
