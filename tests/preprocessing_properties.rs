//! Property tests for the preprocessing extensions: discretization,
//! preference-direction normalization, and EM invariants.

use bc_bayes::discretize::{discretize_rows, Binning, ColumnBins};
use bc_bayes::em::{em_fit, EmConfig};
use bc_bayes::{Dag, Pmf};
use bc_data::preference::{normalize_directions, Direction};
use bc_data::skyline::skyline_bnl;
use bc_data::{domain::uniform_domains, Dataset, ObjectId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binning preserves order: `x <= y` implies `bin(x) <= bin(y)`.
    #[test]
    fn binning_is_monotone(
        mut values in prop::collection::vec(-1e6f64..1e6, 2..60),
        bins in 1u16..16,
        equidepth in any::<bool>(),
    ) {
        let binning = if equidepth { Binning::EquiDepth } else { Binning::EquiWidth };
        let fitted = ColumnBins::fit(values.iter().copied(), bins, binning);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for pair in values.windows(2) {
            prop_assert!(fitted.bin(pair[0]) <= fitted.bin(pair[1]));
        }
        for &v in &values {
            prop_assert!((fitted.bin(v) as usize) < fitted.n_bins());
        }
    }

    /// Discretizing a table keeps every observed cell inside its domain and
    /// missing cells missing.
    #[test]
    fn discretize_rows_shape(
        raw in prop::collection::vec(
            prop::collection::vec(prop::option::of(-100f64..100.0), 3),
            2..20,
        ),
        bins in 1u16..10,
    ) {
        // Ensure every column has at least one observed value.
        prop_assume!((0..3).all(|a| raw.iter().any(|r| r[a].is_some())));
        let ds = discretize_rows("t", &raw, bins, Binning::EquiWidth).unwrap();
        prop_assert_eq!(ds.n_objects(), raw.len());
        for (i, row) in raw.iter().enumerate() {
            for (a, cell) in row.iter().enumerate() {
                let got = ds.get(ObjectId(i as u32), bc_data::AttrId(a as u16));
                prop_assert_eq!(got.is_some(), cell.is_some());
                if let Some(v) = got {
                    prop_assert!(v < bins);
                }
            }
        }
    }

    /// The skyline of the direction-normalized dataset equals the skyline
    /// computed with an explicitly direction-aware dominance test.
    #[test]
    fn direction_normalization_preserves_the_skyline(
        rows in prop::collection::vec(prop::collection::vec(0u16..8, 3), 2..16),
        dirs_raw in prop::collection::vec(any::<bool>(), 3),
    ) {
        let directions: Vec<Direction> = dirs_raw
            .iter()
            .map(|&b| if b { Direction::Maximize } else { Direction::Minimize })
            .collect();
        let data = Dataset::from_complete_rows(
            "t",
            uniform_domains(3, 8).unwrap(),
            rows.clone(),
        )
        .unwrap();
        let normalized = normalize_directions(&data, &directions).unwrap();
        let sky = skyline_bnl(&normalized).unwrap();

        // Direction-aware dominance, straight from the definition.
        let better = |dir: Direction, a: u16, b: u16| match dir {
            Direction::Maximize => a > b,
            Direction::Minimize => a < b,
        };
        let not_worse = |dir: Direction, a: u16, b: u16| match dir {
            Direction::Maximize => a >= b,
            Direction::Minimize => a <= b,
        };
        let dominates = |u: &[u16], v: &[u16]| {
            directions.iter().enumerate().all(|(i, &d)| not_worse(d, u[i], v[i]))
                && directions.iter().enumerate().any(|(i, &d)| better(d, u[i], v[i]))
        };
        let expected: Vec<ObjectId> = (0..rows.len())
            .filter(|&i| !rows.iter().enumerate().any(|(j, r)| j != i && dominates(r, &rows[i])))
            .map(|i| ObjectId(i as u32))
            .collect();
        prop_assert_eq!(sky, expected);
    }

    /// EM always produces proper distributions, for arbitrary missing
    /// patterns.
    #[test]
    fn em_cpts_are_distributions(
        rows in prop::collection::vec(
            prop::collection::vec(prop::option::of(0u16..4), 2),
            0..30,
        ),
        iterations in 0usize..4,
    ) {
        let dag = Dag::from_edges(2, &[(0, 1)]);
        let cfg = EmConfig { iterations, ..Default::default() };
        let bn = em_fit(&dag, &rows, &[4, 4], &cfg);
        for cpt in bn.cpts() {
            for cfg_idx in 0..cpt.n_configs() {
                let pmf: &Pmf = cpt.pmf_at(cfg_idx);
                let total: f64 = (0..4u16).map(|v| pmf.p(v)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }
}
