//! End-to-end tests of the `bayescrowd-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bayescrowd-cli"))
}

const INCOMPLETE: &str = "a1:10,a2:10,a3:8,a4:6,a5:10
5,2,3,4,1
6,?,2,2,2
1,1,?,5,3
4,3,1,2,1
5,?,?,?,1
";

const COMPLETE: &str = "a1:10,a2:10,a3:8,a4:6,a5:10
5,2,3,4,1
6,4,2,2,2
1,1,4,5,3
4,3,1,2,1
5,4,3,2,1
";

fn write_temp(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bayescrowd-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write temp csv");
    path
}

#[test]
fn machine_mode_reports_answers_and_stats() {
    let data = write_temp("m_inc.csv", INCOMPLETE);
    let out = cli()
        .args([
            "machine",
            "--data",
            data.to_str().unwrap(),
            "--alpha",
            "1.0",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("answers"), "{stdout}");
    assert!(stdout.contains("o1"), "certain answer o1 missing: {stdout}");
    assert!(stdout.contains("c-table: true=2"), "{stdout}");
}

#[test]
fn simulate_mode_reaches_perfect_f1_on_the_sample() {
    let data = write_temp("s_inc.csv", INCOMPLETE);
    let complete = write_temp("s_com.csv", COMPLETE);
    let out = cli()
        .args([
            "simulate",
            "--data",
            data.to_str().unwrap(),
            "--complete",
            complete.to_str().unwrap(),
            "--alpha",
            "1.0",
            "--budget",
            "20",
            "--latency",
            "10",
            "--strategy",
            "hhs",
            "--m",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("F1 1.000"), "{stdout}");
}

#[test]
fn simulate_without_truth_fails_cleanly() {
    let data = write_temp("t_inc.csv", INCOMPLETE);
    let out = cli()
        .args(["simulate", "--data", data.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--complete"), "{stderr}");
}

#[test]
fn bad_arguments_exit_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unreadable_file_exits_with_error() {
    let out = cli()
        .args(["machine", "--data", "/definitely/not/here.csv"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn profile_flag_writes_a_parseable_span_tree() {
    let data = write_temp("p_inc.csv", INCOMPLETE);
    let complete = write_temp("p_com.csv", COMPLETE);
    let profile = std::env::temp_dir().join("bayescrowd-cli-tests/profile.json");
    let _ = std::fs::remove_file(&profile);
    let out = cli()
        .args([
            "simulate",
            "--data",
            data.to_str().unwrap(),
            "--complete",
            complete.to_str().unwrap(),
            "--alpha",
            "1.0",
            "--budget",
            "12",
            "--latency",
            "6",
            "--profile",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&profile).expect("profile file written");
    let report = bc_obs::ProfileReport::from_json(&text).expect("profile JSON parses");
    assert_eq!(report.root().name, "run");
    assert!(report.root().nanos > 0, "run total missing");
    let round = report.node("round").expect("round span present");
    assert!(round.count >= 1, "no rounds profiled");
    assert!(
        report.node("round/select/solve").is_some(),
        "solve span missing: {}",
        report.render_text()
    );
}

#[test]
fn killed_run_resumes_to_the_identical_report() {
    // Clean run writing checkpoints and a deterministic report; a second
    // run killed (process abort) after round 2; a third run resumed from
    // the newest surviving checkpoint. The resumed report file must be
    // byte-identical to the clean one.
    let data = write_temp("k_inc.csv", INCOMPLETE);
    let complete = write_temp("k_com.csv", COMPLETE);
    let dir = std::env::temp_dir().join("bayescrowd-cli-tests/kill-resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("work dir");
    let common = |out: &std::path::Path| {
        vec![
            "simulate".to_string(),
            "--data".into(),
            data.to_str().unwrap().into(),
            "--complete".into(),
            complete.to_str().unwrap().into(),
            "--alpha".into(),
            "1.0".into(),
            "--budget".into(),
            "12".into(),
            "--latency".into(),
            "6".into(),
            "--expiry".into(),
            "0.2".into(),
            "--max-attempts".into(),
            "3".into(),
            "--seed".into(),
            "9".into(),
            "--report-out".into(),
            out.to_str().unwrap().into(),
        ]
    };

    let clean_report = dir.join("clean.txt");
    let out = cli()
        .args(common(&clean_report))
        .args(["--checkpoint-dir", dir.join("ckpt-clean").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");

    let ckpt_dir = dir.join("ckpt");
    let out = cli()
        .args(common(&dir.join("never.txt")))
        .args(["--checkpoint-dir", ckpt_dir.to_str().unwrap()])
        .args(["--kill-after-round", "2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "kill run should abort: {out:?}");
    assert!(!dir.join("never.txt").exists(), "killed run wrote a report");

    let mut snaps: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "bcsnap"))
        .collect();
    snaps.sort();
    let latest = snaps.last().expect("at least one checkpoint survived");

    let resumed_report = dir.join("resumed.txt");
    let out = cli()
        .args(common(&resumed_report))
        .args(["--resume", latest.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");

    let clean = std::fs::read_to_string(&clean_report).expect("clean report");
    let resumed = std::fs::read_to_string(&resumed_report).expect("resumed report");
    assert!(clean.contains("result:"), "{clean}");
    assert_eq!(clean, resumed, "resumed report diverged from the clean run");
}
