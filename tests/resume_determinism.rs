//! Kill-at-round-k checkpoint/resume determinism.
//!
//! The contract of [`Session::checkpoint`] / [`Session::resume`]: killing a
//! run after any round `k` and resuming from the checkpoint written there
//! must finish with a [`RunReport`] identical field-by-field (wall-clock
//! durations aside) to the uninterrupted run — same answer set, same
//! probabilities, same crowd accounting, same retry/fault bookkeeping.
//! Exercised under both the well-behaved [`SimulatedPlatform`] and the
//! fault-injecting [`FaultyPlatform`], whose RNG streams ride along in the
//! snapshot.

use bayescrowd::prelude::*;
use bayescrowd::{BayesCrowd, Session};
use bc_crowd::{CrowdPlatform, FaultConfig, FaultyPlatform, GroundTruthOracle, SimulatedPlatform};
use bc_data::generators::sample::{paper_completion, paper_dataset};
use bc_data::Dataset;
use bc_snapshot::Snapshot;
use proptest::prelude::*;

fn sample_config() -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 20,
        latency: 10,
        alpha: 1.0,
        strategy: TaskStrategy::Hhs { m: 2 },
        ..Default::default()
    }
}

fn unwrap_report(r: Result<RunReport, RunError>) -> RunReport {
    match r {
        Ok(report) => report,
        // A fault storm that swallows every task still yields a report; the
        // resumed run must degrade identically.
        Err(RunError::PlatformExhausted { report }) => *report,
        Err(e) => panic!("run failed: {e}"),
    }
}

/// Runs a session to completion, writing a checkpoint after every round
/// (including one before any crowd work). Returns the final report and the
/// serialized checkpoints.
fn run_collecting_checkpoints(
    engine: &BayesCrowd,
    data: &Dataset,
    platform: &mut dyn CrowdPlatform,
) -> (RunReport, Vec<Vec<u8>>) {
    let mut session = engine.session(data, platform).expect("session starts");
    let mut snaps = Vec::new();
    let mut buf = Vec::new();
    session.checkpoint(&mut buf).expect("checkpoint");
    snaps.push(buf);
    while session.step().expect("step") {
        let mut buf = Vec::new();
        session.checkpoint(&mut buf).expect("checkpoint");
        snaps.push(buf);
    }
    (unwrap_report(session.finalize()), snaps)
}

/// Everything in the report except the wall-clock durations, which are the
/// one part of a run a crash genuinely changes.
fn assert_reports_match(clean: &RunReport, resumed: &RunReport, ctx: &str) {
    assert_eq!(clean.result, resumed.result, "{ctx}: result");
    assert_eq!(clean.certain, resumed.certain, "{ctx}: certain");
    assert_eq!(
        clean.open_probabilities, resumed.open_probabilities,
        "{ctx}: open_probabilities"
    );
    assert_eq!(clean.accuracy, resumed.accuracy, "{ctx}: accuracy");
    assert_eq!(clean.crowd, resumed.crowd, "{ctx}: crowd stats");
    assert_eq!(clean.budget_left, resumed.budget_left, "{ctx}: budget_left");
    assert_eq!(
        clean.probability_evals, resumed.probability_evals,
        "{ctx}: probability_evals"
    );
    assert_eq!(
        clean.open_exprs_left, resumed.open_exprs_left,
        "{ctx}: open_exprs_left"
    );
    assert_eq!(
        clean.tasks_expired, resumed.tasks_expired,
        "{ctx}: tasks_expired"
    );
    assert_eq!(
        clean.tasks_retried, resumed.tasks_retried,
        "{ctx}: tasks_retried"
    );
    assert_eq!(
        clean.rounds_stalled, resumed.rounds_stalled,
        "{ctx}: rounds_stalled"
    );
    assert_eq!(clean.degraded, resumed.degraded, "{ctx}: degraded");
}

/// "Kills" the run at every possible round k by discarding the live session
/// and resuming from the k-th checkpoint against a freshly constructed
/// platform, then checks the finished report against the clean one.
fn assert_all_resume_points_match(
    config: BayesCrowdConfig,
    data: &Dataset,
    mk_platform: impl Fn() -> Box<dyn CrowdPlatform>,
    ctx: &str,
) {
    let engine = BayesCrowd::new(config);
    let mut platform = mk_platform();
    let (clean, snaps) = run_collecting_checkpoints(&engine, data, platform.as_mut());
    assert!(snaps.len() >= 2, "{ctx}: run finished without any rounds");
    for (k, snap) in snaps.iter().enumerate() {
        let mut platform = mk_platform();
        let mut session =
            Session::resume(&snap[..], platform.as_mut()).expect("checkpoint resumes");
        while session.step().expect("resumed step") {}
        let resumed = unwrap_report(session.finalize());
        assert_reports_match(&clean, &resumed, &format!("{ctx}, resumed at round {k}"));
    }
}

#[test]
fn simulated_platform_resumes_identically_at_every_round() {
    let data = paper_dataset();
    for seed in [3, 7, 19] {
        let mk = move || -> Box<dyn CrowdPlatform> {
            let oracle = GroundTruthOracle::new(paper_completion());
            Box::new(SimulatedPlatform::new(oracle, 0.9, seed))
        };
        assert_all_resume_points_match(
            sample_config(),
            &data,
            mk,
            &format!("simulated seed {seed}"),
        );
    }
}

#[test]
fn faulty_platform_resumes_identically_at_every_round() {
    let data = paper_dataset();
    let faults = FaultConfig {
        expiry_prob: 0.25,
        spammer_rate: 0.2,
        straggler_prob: 0.2,
        duplicate_prob: 0.1,
        ..Default::default()
    };
    for seed in [1, 11] {
        let mk = move || -> Box<dyn CrowdPlatform> {
            let oracle = GroundTruthOracle::new(paper_completion());
            let sim = SimulatedPlatform::new(oracle, 0.85, seed);
            Box::new(FaultyPlatform::new(sim, faults, seed ^ 0x5eed))
        };
        let config = BayesCrowdConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                escalate_workers: 1,
                backoff_base: 1,
            },
            ..sample_config()
        };
        assert_all_resume_points_match(config, &data, mk, &format!("faulty seed {seed}"));
    }
}

#[test]
fn resumed_trace_reconciles_with_the_clean_run() {
    // The resumed run's event stream must pick up where the checkpoint left
    // off: a Resumed event carrying the checkpointed round, then exactly
    // the remaining rounds, ending in a RunFinished identical (timing
    // aside) to the clean run's.
    let data = paper_dataset();
    let mk = || {
        let oracle = GroundTruthOracle::new(paper_completion());
        SimulatedPlatform::new(oracle, 1.0, 7)
    };
    let engine = BayesCrowd::new(sample_config());

    let mut platform = mk();
    let mut clean_metrics = MetricsRecorder::new();
    let mut session = engine
        .session_observed(&data, &mut platform, &mut clean_metrics)
        .unwrap();
    let mut snaps = Vec::new();
    while session.step().unwrap() {
        let mut buf = Vec::new();
        session.checkpoint(&mut buf).unwrap();
        snaps.push(buf);
    }
    let clean = unwrap_report(session.finalize());
    let clean_finish = clean_metrics
        .events()
        .iter()
        .rev()
        .find(|e| matches!(e, Event::RunFinished { .. }))
        .expect("clean run emits RunFinished")
        .redact_timing();

    let k = snaps.len() / 2;
    let mut platform = mk();
    let mut resumed_metrics = MetricsRecorder::new();
    let mut session =
        Session::resume_observed(&snaps[k][..], &mut platform, &mut resumed_metrics).unwrap();
    while session.step().unwrap() {}
    let resumed = unwrap_report(session.finalize());
    assert_reports_match(&clean, &resumed, "trace reconcile");

    let events = resumed_metrics.events();
    assert!(
        matches!(events.first(), Some(Event::Resumed { round, .. }) if *round == k + 1),
        "first resumed event must be Resumed at round {}: {:?}",
        k + 1,
        events.first()
    );
    let resumed_finish = events
        .iter()
        .rev()
        .find(|e| matches!(e, Event::RunFinished { .. }))
        .expect("resumed run emits RunFinished")
        .redact_timing();
    assert_eq!(clean_finish, resumed_finish, "RunFinished events diverge");
    // The resumed trace replays only the tail: every RoundStarted it emits
    // is a round after the checkpoint.
    for e in events {
        if let Event::RoundStarted { round } = e {
            assert!(*round > k + 1, "resumed run replayed round {round}");
        }
    }
}

#[test]
fn checkpoints_reserialize_byte_identically() {
    // Golden round-trip: parse → re-serialize reproduces the document byte
    // for byte, so a checkpoint can be rewritten (e.g. copied through the
    // parser for validation) without invalidating its checksum.
    let data = paper_dataset();
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
    let engine = BayesCrowd::new(sample_config());
    let (_, snaps) = run_collecting_checkpoints(&engine, &data, &mut platform);
    for (k, bytes) in snaps.iter().enumerate() {
        let snap = Snapshot::parse(&bytes[..]).expect("checkpoint parses");
        let mut rewritten = Vec::new();
        snap.write_to(&mut rewritten).expect("re-serializes");
        assert_eq!(
            bytes, &rewritten,
            "checkpoint {k} did not round-trip byte-identically"
        );
    }
}

#[test]
fn truncated_checkpoints_are_rejected() {
    let data = paper_dataset();
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
    let engine = BayesCrowd::new(sample_config());
    let (_, snaps) = run_collecting_checkpoints(&engine, &data, &mut platform);
    let full = &snaps[snaps.len() - 1];
    // Cut mid-document (a torn write): resume must refuse, not half-load.
    let torn = &full[..full.len() * 2 / 3];
    let oracle = GroundTruthOracle::new(paper_completion());
    let mut fresh = SimulatedPlatform::new(oracle, 1.0, 7);
    assert!(Session::resume(torn, &mut fresh).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random worker accuracy, fault rates, and seeds: resuming from the
    /// middle checkpoint always reproduces the uninterrupted report.
    #[test]
    fn random_faulty_runs_resume_identically(
        seed in 0u64..1000,
        accuracy in 0.5f64..1.0,
        expiry in 0.0f64..0.4,
        spam in 0.0f64..0.3,
    ) {
        let data = paper_dataset();
        let faults = FaultConfig {
            expiry_prob: expiry,
            spammer_rate: spam,
            ..Default::default()
        };
        let mk = move || -> Box<dyn CrowdPlatform> {
            let oracle = GroundTruthOracle::new(paper_completion());
            let sim = SimulatedPlatform::new(oracle, accuracy, seed);
            Box::new(FaultyPlatform::new(sim, faults, seed.wrapping_mul(31)))
        };
        let engine = BayesCrowd::new(sample_config());
        let mut platform = mk();
        let (clean, snaps) = run_collecting_checkpoints(&engine, &data, platform.as_mut());
        let k = snaps.len() / 2;
        let mut platform = mk();
        let mut session = Session::resume(&snaps[k][..], platform.as_mut()).expect("resumes");
        while session.step().expect("step") {}
        let resumed = unwrap_report(session.finalize());
        assert_reports_match(&clean, &resumed, &format!("proptest seed {seed}, k {k}"));
    }
}
