//! Cross-crate end-to-end properties of the full query pipeline.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::domain::uniform_domains;
use bc_data::skyline::skyline_bnl;
use bc_data::{AttrId, Dataset};
use crowdsky::{CrowdSky, CrowdSkyConfig};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tie-free complete dataset (columns are permutations) — see
/// `ctable_semantics.rs` for why ties are excluded.
fn permutation_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut col: Vec<u16> = (0..n as u16).collect();
        col.shuffle(&mut rng);
        cols.push(col);
    }
    let rows: Vec<Vec<u16>> = (0..n)
        .map(|i| (0..d).map(|j| cols[j][i]).collect())
        .collect();
    Dataset::from_complete_rows("perm", uniform_domains(d, n as u16).unwrap(), rows).unwrap()
}

fn ample_config(strategy: TaskStrategy) -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 100_000,
        latency: 10_000,
        alpha: 1.0, // no pruning: exactness requires it
        strategy,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With perfect workers, no pruning, tie-free data, and an ample budget,
    /// BayesCrowd computes the exact skyline — for every strategy.
    #[test]
    fn perfect_crowd_recovers_the_exact_skyline(
        n in 3usize..16,
        d in 2usize..4,
        missing_frac in 0.05f64..0.4,
        seed in 0u64..3000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let (incomplete, _) =
            bc_data::missing::inject_mcar(&complete, missing_frac, seed.wrapping_add(1));
        let truth = skyline_bnl(&complete).unwrap();
        for strategy in [TaskStrategy::Fbs, TaskStrategy::Hhs { m: 5 }] {
            let oracle = GroundTruthOracle::new(complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
            let report =
                BayesCrowd::new(ample_config(strategy)).run(&incomplete, &mut platform);
            prop_assert_eq!(
                &report.result, &truth,
                "strategy {:?}, seed {}: {}", strategy, seed, report.summary()
            );
            prop_assert_eq!(report.open_exprs_left, 0);
            prop_assert_eq!(report.accuracy.unwrap().f1, 1.0);
        }
    }

    /// Budget and latency constraints are always respected, regardless of
    /// workload, strategy, or noise.
    #[test]
    fn budget_and_latency_are_hard_constraints(
        n in 4usize..16,
        d in 2usize..4,
        budget in 1usize..12,
        latency in 1usize..6,
        accuracy in 0.5f64..1.0,
        seed in 0u64..3000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let (incomplete, _) =
            bc_data::missing::inject_mcar(&complete, 0.3, seed.wrapping_add(1));
        let config = BayesCrowdConfig {
            budget,
            latency,
            alpha: 1.0,
            strategy: TaskStrategy::Fbs,
            ..Default::default()
        };
        let oracle = GroundTruthOracle::new(complete);
        let mut platform = SimulatedPlatform::new(oracle, accuracy, seed);
        let report = BayesCrowd::new(config).run(&incomplete, &mut platform);
        prop_assert!(report.crowd.tasks_posted <= budget);
        prop_assert!(report.crowd.rounds <= latency);
        // Majority voting with 3 workers per task.
        prop_assert_eq!(report.crowd.worker_answers, report.crowd.tasks_posted * 3);
    }

    /// CrowdSky with perfect workers also recovers the exact skyline on the
    /// observed/crowd split (on tiny instances its task count can even beat
    /// BayesCrowd's, so the cost comparison is a separate scale test below).
    #[test]
    fn crowdsky_is_exact_with_perfect_workers(
        n in 4usize..14,
        seed in 0u64..3000,
    ) {
        let d = 4;
        let complete = permutation_dataset(n, d, seed);
        let masked = bc_data::missing::mask_attributes(
            &complete,
            &[AttrId(d as u16 - 1)],
        );
        let truth = skyline_bnl(&complete).unwrap();

        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
        let cs = CrowdSky::new(CrowdSkyConfig { round_size: 5 })
            .run(&masked, &mut platform);
        prop_assert_eq!(&cs.result, &truth, "CrowdSky wrong at seed {}", seed);

        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
        let bc = BayesCrowd::new(ample_config(TaskStrategy::Fbs))
            .run(&masked, &mut platform);
        prop_assert_eq!(&bc.result, &truth, "BayesCrowd wrong at seed {}", seed);
    }

    /// The returned answer set is always sound with respect to what the
    /// machine can know: certain answers are actual skyline objects whenever
    /// workers are perfect.
    #[test]
    fn certain_answers_are_sound_with_perfect_workers(
        n in 3usize..16,
        d in 2usize..4,
        seed in 0u64..3000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let (incomplete, _) =
            bc_data::missing::inject_mcar(&complete, 0.25, seed.wrapping_add(1));
        let truth = skyline_bnl(&complete).unwrap();
        let config = BayesCrowdConfig {
            budget: 6,
            latency: 3,
            alpha: 1.0,
            strategy: TaskStrategy::Hhs { m: 3 },
            ..Default::default()
        };
        let oracle = GroundTruthOracle::new(complete);
        let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
        let report = BayesCrowd::new(config).run(&incomplete, &mut platform);
        for o in &report.certain {
            prop_assert!(
                truth.contains(o),
                "object {} reported certain but not in the skyline", o
            );
        }
    }
}

/// The shrunk case recorded in `end_to_end.proptest-regressions`
/// (`n = 10, seed = 1709` of `crowdsky_is_exact_with_perfect_workers`).
/// The vendored proptest stand-in does not replay regression files, so the
/// case is re-run explicitly here; an oracle-sized cut of the same dataset
/// is committed to the fuzz corpus as `reg-crowdsky-1709.bcsnap` (see
/// `bc_oracle::corpus`).
#[test]
fn regression_crowdsky_n10_seed1709() {
    let (n, d, seed) = (10usize, 4usize, 1709u64);
    let complete = permutation_dataset(n, d, seed);
    let masked = bc_data::missing::mask_attributes(&complete, &[AttrId(d as u16 - 1)]);
    let truth = skyline_bnl(&complete).unwrap();

    let oracle = GroundTruthOracle::new(complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
    let cs = CrowdSky::new(CrowdSkyConfig { round_size: 5 }).run(&masked, &mut platform);
    assert_eq!(&cs.result, &truth, "CrowdSky wrong at seed {seed}");

    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
    let bc = BayesCrowd::new(ample_config(TaskStrategy::Fbs)).run(&masked, &mut platform);
    assert_eq!(&bc.result, &truth, "BayesCrowd wrong at seed {seed}");
}
