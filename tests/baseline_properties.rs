//! Property tests for the two baseline systems.

use bc_crowd::unary::{median_vote, UnaryTask};
use bc_crowd::GroundTruthOracle;
use bc_data::domain::uniform_domains;
use bc_data::{Dataset, Value};
use crowdimpute::{CrowdImpute, CrowdImputeConfig};
use proptest::prelude::*;

fn complete_dataset(rows: Vec<Vec<Value>>) -> Dataset {
    let d = rows[0].len();
    Dataset::from_complete_rows("t", uniform_domains(d, 8).unwrap(), rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The median lies between the min and max estimate and equals the
    /// unique majority value when one exists.
    #[test]
    fn median_vote_properties(estimates in prop::collection::vec(0u16..8, 1..9)) {
        let m = median_vote(&estimates);
        let lo = *estimates.iter().min().unwrap();
        let hi = *estimates.iter().max().unwrap();
        prop_assert!(m >= lo && m <= hi);
        // Strict-majority value wins.
        let mut counts = [0usize; 8];
        for &e in &estimates {
            counts[e as usize] += 1;
        }
        if let Some((v, _)) = counts
            .iter()
            .enumerate()
            .find(|&(_, &c)| 2 * c > estimates.len())
        {
            prop_assert_eq!(m as usize, v);
        }
    }

    /// With perfect workers CrowdImpute's task count is exactly
    /// min(budget, #missing), independently of everything else; and with a
    /// full budget its result is exactly the true skyline.
    #[test]
    fn crowdimpute_cost_and_exactness(
        rows in prop::collection::vec(prop::collection::vec(0u16..8, 3), 3..24),
        hide in prop::collection::vec(any::<bool>(), 3 * 24),
        budget in 0usize..30,
    ) {
        let complete = complete_dataset(rows.clone());
        let mut incomplete = complete.clone();
        let mut n_missing = 0;
        for (i, &h) in hide.iter().take(rows.len() * 3).enumerate() {
            // Keep at least one observed value per column so mode imputation
            // is well-defined.
            let (o, a) = (i / 3, i % 3);
            if h && o > 0 {
                incomplete
                    .set(bc_data::ObjectId(o as u32), bc_data::AttrId(a as u16), None)
                    .unwrap();
                n_missing += 1;
            }
        }
        let oracle = GroundTruthOracle::new(complete.clone());

        let capped = CrowdImpute::new(CrowdImputeConfig {
            budget: Some(budget),
            ..Default::default()
        })
        .run(&incomplete, &oracle);
        prop_assert_eq!(capped.tasks_posted, budget.min(n_missing));
        prop_assert_eq!(capped.machine_imputed, n_missing - capped.tasks_posted);

        let full = CrowdImpute::default().run(&incomplete, &oracle);
        prop_assert_eq!(full.tasks_posted, n_missing);
        prop_assert_eq!(
            full.result,
            bc_data::skyline::skyline_bnl(&complete).unwrap()
        );
    }

    /// Unary question text always names the variable.
    #[test]
    fn unary_question_mentions_the_variable(o in 0u32..100, a in 0u16..12) {
        let t = UnaryTask { var: bc_data::VarId::new(o, a) };
        let q = t.question();
        let expected = format!("Var(o{}, a{})", o, a);
        prop_assert!(q.contains(&expected));
    }
}
