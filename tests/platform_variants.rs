//! End-to-end runs through the platform variants: heterogeneous worker
//! pools with recruitment, and variable-difficulty cost accounting.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{CostModel, GroundTruthOracle, SimulatedPlatform, WorkerPool};
use bc_data::generators::classic::correlated;
use bc_data::missing::inject_mcar;

fn setup(seed: u64) -> (bc_data::Dataset, bc_data::Dataset) {
    let complete = correlated(120, 4, 8, 0.7, seed);
    let (incomplete, _) = inject_mcar(&complete, 0.2, seed + 1);
    (complete, incomplete)
}

fn config() -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 40,
        latency: 5,
        alpha: 0.5,
        strategy: TaskStrategy::Hhs { m: 5 },
        ..Default::default()
    }
}

#[test]
fn pool_backed_platform_runs_the_full_query() {
    let (complete, incomplete) = setup(70);
    let pool = WorkerPool::uniform_spread(30, 0.85, 1.0, 4);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform = SimulatedPlatform::with_pool(oracle, pool, 3, 5);
    let report = BayesCrowd::new(config()).run(&incomplete, &mut platform);
    assert!(report.crowd.tasks_posted <= 40);
    assert!(report.accuracy.unwrap().f1 > 0.6, "{}", report.summary());
}

#[test]
fn recruitment_improves_noisy_pools_on_average() {
    // A pool with many poor workers: recruiting ≥0.9 should not hurt and
    // usually helps. Averaged over seeds to damp run-to-run noise.
    let mut raw_total = 0.0;
    let mut recruited_total = 0.0;
    for seed in 0..6 {
        let (complete, incomplete) = setup(100 + seed);
        let pool = WorkerPool::new(&[0.45, 0.5, 0.55, 0.95, 0.97, 0.99]);

        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::with_pool(oracle, pool.clone(), 3, seed);
        raw_total += BayesCrowd::new(config())
            .run(&incomplete, &mut platform)
            .accuracy
            .unwrap()
            .f1;

        let elite = pool.recruit(0.9).expect("three qualify");
        let oracle = GroundTruthOracle::new(complete);
        let mut platform = SimulatedPlatform::with_pool(oracle, elite, 3, seed);
        recruited_total += BayesCrowd::new(config())
            .run(&incomplete, &mut platform)
            .accuracy
            .unwrap()
            .f1;
    }
    assert!(
        recruited_total >= raw_total - 0.05,
        "recruited {recruited_total} vs raw {raw_total}"
    );
}

#[test]
fn money_accounting_distinguishes_task_kinds() {
    let (complete, incomplete) = setup(200);
    let oracle = GroundTruthOracle::new(complete);
    let mut platform =
        SimulatedPlatform::new(oracle, 1.0, 7).with_cost_model(CostModel::ByDifficulty {
            var_const: 1,
            var_var: 3,
        });
    let report = BayesCrowd::new(config()).run(&incomplete, &mut platform);
    let stats = report.crowd;
    // Each task is answered by 3 workers; per-answer price is 1 or 3, so
    // the spend lies between 3·tasks and 9·tasks, with equality only when
    // all tasks are of one kind.
    assert!(stats.money_spent >= 3 * stats.tasks_posted as u64);
    assert!(stats.money_spent <= 9 * stats.tasks_posted as u64);

    // Under the default unit model the spend equals the answer count.
    let (complete, incomplete) = setup(201);
    let oracle = GroundTruthOracle::new(complete);
    let mut unit = SimulatedPlatform::new(oracle, 1.0, 7);
    let report = BayesCrowd::new(config()).run(&incomplete, &mut unit);
    assert_eq!(report.crowd.money_spent, report.crowd.worker_answers as u64);
}

/// Paper-scale smoke test (NBA 10k × 11): modeling phase + machine-only
/// answers. Run with `cargo test -- --ignored` (takes tens of seconds in
/// release, minutes in debug).
#[test]
#[ignore = "paper-scale; run explicitly with --ignored"]
fn paper_scale_modeling_smoke() {
    use bayescrowd::framework::machine_only_answers;
    let complete = bc_data::generators::nba::nba_like(10_000, 9);
    let (incomplete, _) = inject_mcar(&complete, 0.1, 10);
    let cfg = BayesCrowdConfig {
        alpha: 0.003,
        ..BayesCrowdConfig::nba_defaults()
    };
    let (answers, ctable) = machine_only_answers(&incomplete, &cfg);
    let truth = bc_data::skyline::skyline_sfs(&complete).unwrap();
    let acc = bc_data::Accuracy::of(&answers, &truth);
    assert!(acc.f1 > 0.5, "paper-scale machine-only F1 = {}", acc.f1);
    assert!(ctable.n_objects() == 10_000);
}
