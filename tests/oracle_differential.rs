//! Acceptance tests for the differential correctness oracle (`bc-oracle`).
//!
//! These are the headline guarantees: on hundreds of random small
//! instances every exact solver matches the exhaustive possible-worlds
//! oracle to 1e-9 (Monte Carlo within its 3σ sampling band), resuming a
//! checkpointed run preserves every per-object probability, and the
//! minimize-via-reflection path is oracle-checked end to end.

use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_data::domain::uniform_domains;
use bc_data::skyline::skyline_bnl;
use bc_data::{normalize_directions, AttrId, Dataset, Direction, ObjectId};
use bc_oracle::{check_instance, metamorphic, random_instance, DiffConfig, GenConfig};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// 500 random instances within the acceptance envelope (≤ 8 objects, ≤ 3
/// missing cells, domains ≤ 4): ADPLL, naive enumeration, and ApproxCount
/// must match the possible-worlds oracle exactly, Monte Carlo within 3σ,
/// and every c-table condition must agree with skyline membership in every
/// tie-free world. Any failure here is a solver/c-table bug — minimize it
/// with `cargo run -p bc-oracle --bin oracle-fuzz` and commit the repro to
/// `crates/bc-oracle/corpus/`.
#[test]
fn five_hundred_random_instances_match_the_oracle() {
    let cfg = DiffConfig::default();
    let gen = GenConfig::default();
    let mut worlds_total = 0u128;
    for seed in 10_000..10_500u64 {
        let inst = random_instance(seed, &gen);
        let summary = check_instance(&inst, &cfg).unwrap_or_else(|d| panic!("{d}"));
        worlds_total += summary.n_worlds;
    }
    // Sanity that the suite exercised real enumeration, not 500 trivial
    // complete datasets.
    assert!(
        worlds_total > 1_000,
        "only {worlds_total} worlds enumerated"
    );
}

/// Satellite: checkpoint/resume preserves the *per-object probabilities*,
/// not just the aggregate `RunReport` fields — checked at several resume
/// rounds on a 6-object instance with the maximum number of missing cells.
#[test]
fn resume_matches_uninterrupted_probabilities_exactly() {
    let gen = GenConfig {
        min_objects: 6,
        max_objects: 6,
        ..GenConfig::default()
    };
    // Pick a seed whose instance actually has missing cells to crowdsource.
    let inst = (0..u64::MAX)
        .map(|s| random_instance(s.wrapping_add(404), &gen))
        .find(|i| i.data.n_missing() >= 2)
        .unwrap();
    assert_eq!(inst.data.n_objects(), 6);
    for resume_at in [1usize, 2, 4] {
        metamorphic::resume_preserves_probabilities(&inst, resume_at, 404, 1e-12)
            .unwrap_or_else(|e| panic!("resume at round {resume_at}: {e}"));
    }
}

/// Satellite: mixed preference directions. The directional possible-worlds
/// oracle on the original instance must agree with the standard pipeline
/// on the reflected instance ([`normalize_directions`] on values,
/// `Pmf::reflected` on distributions), and the reflected instance passes
/// the full differential check.
#[test]
fn mixed_directions_are_oracle_checked() {
    let cfg = DiffConfig::default();
    let mut covered_multi_attr = false;
    for seed in [5u64, 21, 63, 88] {
        let inst = random_instance(seed, &GenConfig::default());
        let d = inst.data.n_attrs();
        covered_multi_attr |= d >= 2;
        // Minimize the first attribute (and every odd one): at least one
        // attribute always goes through the reflection path.
        let dirs: Vec<Direction> = (0..d)
            .map(|i| {
                if i == 0 || i % 2 == 1 {
                    Direction::Minimize
                } else {
                    Direction::Maximize
                }
            })
            .collect();
        metamorphic::reflection_preserves_skyline(&inst, &dirs, &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
    assert!(covered_multi_attr, "no multi-attribute instance was drawn");
}

/// Tie-free dataset whose columns are permutations (the standard exactness
/// testbed — see `tests/end_to_end.rs`).
fn permutation_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut col: Vec<u16> = (0..n as u16).collect();
        col.shuffle(&mut rng);
        cols.push(col);
    }
    let rows: Vec<Vec<u16>> = (0..n)
        .map(|i| (0..d).map(|j| cols[j][i]).collect())
        .collect();
    Dataset::from_complete_rows("perm", uniform_domains(d, n as u16).unwrap(), rows).unwrap()
}

/// Satellite, end-to-end: a full crowdsourced run over minimize-direction
/// data. Ground truth is the directional skyline of the complete data
/// (computed by reflecting and taking the standard skyline — an
/// independent path through `bc_data`); the pipeline sees only the
/// reflected incomplete dataset and a crowd answering from the reflected
/// complete one. With perfect workers, no pruning, and tie-free data the
/// answer must be exact.
#[test]
fn mixed_directions_end_to_end_run() {
    let (n, d, seed) = (8usize, 3usize, 91u64);
    let dirs = [
        Direction::Minimize,
        Direction::Maximize,
        Direction::Minimize,
    ];
    let complete = permutation_dataset(n, d, seed);
    let reflected_complete = normalize_directions(&complete, &dirs).unwrap();
    let truth = skyline_bnl(&reflected_complete).unwrap();

    let mut incomplete = complete.clone();
    for (o, a) in [(0u32, 0u16), (3, 2), (5, 1)] {
        incomplete.set(ObjectId(o), AttrId(a), None).unwrap();
    }
    let reflected_incomplete = normalize_directions(&incomplete, &dirs).unwrap();

    let oracle = GroundTruthOracle::new(reflected_complete);
    let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
    let config = BayesCrowdConfig {
        budget: 10_000,
        latency: 1_000,
        alpha: 1.0,
        strategy: TaskStrategy::Fbs,
        ..Default::default()
    };
    let report = BayesCrowd::new(config).run(&reflected_incomplete, &mut platform);
    assert_eq!(
        report.result, truth,
        "minimize-via-reflection run diverged from the directional skyline"
    );
    assert_eq!(report.open_exprs_left, 0);
}
