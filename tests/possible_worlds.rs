//! Possible-world semantics: `Pr(φ(o))` under uniform priors must equal the
//! fraction of completions (possible worlds) in which `o` is a skyline
//! object — on tie-free domains, where the paper's CNF encoding is exact.

use bc_bayes::Pmf;
use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
use bc_data::domain::uniform_domains;
use bc_data::skyline::skyline_bnl;
use bc_data::{Dataset, ObjectId, VarId};
use bc_solver::{AdpllSolver, Solver, VarDists};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A small tie-free dataset with missing cells: columns are permutations of
/// `0..n`, and each deleted cell may be refilled with any domain value.
/// To keep worlds tie-free we only delete at most one cell per column and
/// re-enumerate worlds over the *original column values* ∪ nothing-else —
/// instead, simpler: we enumerate worlds over all domain values but skip
/// worlds that contain a within-column tie.
fn permutation_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut col: Vec<u16> = (0..n as u16).collect();
        col.shuffle(&mut rng);
        cols.push(col);
    }
    let rows: Vec<Vec<u16>> = (0..n)
        .map(|i| (0..d).map(|j| cols[j][i]).collect())
        .collect();
    Dataset::from_complete_rows("perm", uniform_domains(d, n as u16).unwrap(), rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every object: Pr(φ(o)) under uniform pmfs == (weighted) fraction
    /// of possible worlds where o is in the skyline, restricted to worlds
    /// without within-column ties (each such world is equally likely under
    /// the uniform prior, and the excluded tie worlds are exactly where the
    /// paper's CNF approximates).
    #[test]
    fn probability_equals_possible_world_frequency(
        n in 3usize..7,
        d in 2usize..4,
        n_missing in 1usize..4,
        seed in 0u64..2000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        // Delete up to n_missing cells.
        let total = n * d;
        let mut incomplete = complete.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(9));
        let mut cells: Vec<usize> = (0..total).collect();
        cells.shuffle(&mut rng);
        for &c in cells.iter().take(n_missing) {
            incomplete
                .set(ObjectId((c / d) as u32), bc_data::AttrId((c % d) as u16), None)
                .unwrap();
        }
        let missing = incomplete.missing_vars();
        prop_assume!(!missing.is_empty());
        // Keep the world count tractable.
        prop_assume!(missing.len() <= 3 && n.pow(missing.len() as u32) <= 400);

        let ctable = build_ctable(
            &incomplete,
            &CTableConfig { alpha: 1.0, strategy: DominatorStrategy::FastIndex },
        );
        let dists: VarDists = missing
            .iter()
            .map(|&v| (v, Pmf::uniform(n)))
            .collect();
        let solver = AdpllSolver::new();

        // Enumerate worlds: assignments of missing cells over 0..n.
        let mut world = complete.clone();
        let mut sky_count = vec![0usize; n];
        let mut phi_count = vec![0usize; n];
        let mut n_worlds = 0usize;
        let mut idxs = vec![0u16; missing.len()];
        loop {
            for (slot, &var) in missing.iter().enumerate() {
                world.set(var.object, var.attr, Some(idxs[slot])).unwrap();
            }
            // Skip tie worlds (within-column duplicates).
            let tie = incomplete.attrs().any(|a| {
                let mut seen = vec![false; n];
                world.objects().any(|o| {
                    let v = world.get(o, a).unwrap() as usize;
                    std::mem::replace(&mut seen[v], true)
                })
            });
            if !tie {
                n_worlds += 1;
                let sky = skyline_bnl(&world).unwrap();
                for &o in &sky {
                    sky_count[o.index()] += 1;
                }
                let lookup = |v: VarId| world.get(v.object, v.attr).unwrap();
                for o in world.objects() {
                    if ctable.condition(o).eval(lookup) {
                        phi_count[o.index()] += 1;
                    }
                }
            }
            // Odometer over missing-cell values.
            let mut k = missing.len();
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                idxs[k] += 1;
                if (idxs[k] as usize) < n {
                    break;
                }
                idxs[k] = 0;
                if k == 0 {
                    break;
                }
            }
            if idxs.iter().all(|&i| i == 0) {
                break;
            }
        }
        prop_assume!(n_worlds > 0);

        for o in incomplete.objects() {
            // φ(o) evaluated per world agrees with skyline membership
            // (tie-free worlds only).
            prop_assert_eq!(
                phi_count[o.index()], sky_count[o.index()],
                "object {} world counts differ", o
            );
        }

        // And ADPLL's probability matches the frequency over ALL worlds
        // (including tie worlds): the solver integrates the CNF over the
        // uniform prior, so compare against φ's own satisfaction frequency
        // computed over every assignment, not just tie-free ones.
        let mut phi_all = vec![0usize; n];
        let mut all_worlds = 0usize;
        let mut idxs = vec![0u16; missing.len()];
        loop {
            for (slot, &var) in missing.iter().enumerate() {
                world.set(var.object, var.attr, Some(idxs[slot])).unwrap();
            }
            all_worlds += 1;
            let lookup = |v: VarId| world.get(v.object, v.attr).unwrap();
            for o in world.objects() {
                if ctable.condition(o).eval(lookup) {
                    phi_all[o.index()] += 1;
                }
            }
            let mut k = missing.len();
            loop {
                if k == 0 {
                    break;
                }
                k -= 1;
                idxs[k] += 1;
                if (idxs[k] as usize) < n {
                    break;
                }
                idxs[k] = 0;
                if k == 0 {
                    break;
                }
            }
            if idxs.iter().all(|&i| i == 0) {
                break;
            }
        }
        for o in incomplete.objects() {
            let p = solver
                .probability(ctable.condition(o), &dists)
                .unwrap();
            let freq = phi_all[o.index()] as f64 / all_worlds as f64;
            bc_oracle::assert_prob_close!(
                p, freq, 1e-9,
                "object {}: ADPLL vs world frequency", o
            );
        }
    }
}
