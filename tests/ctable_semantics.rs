//! Property tests of the c-table's semantics.
//!
//! The defining property of a c-table for a skyline query: for any
//! completion of the missing values, evaluating `φ(o)` under that completion
//! tells whether `o` is a skyline object of the completed dataset.
//!
//! The paper's CNF encoding ignores the exact-tie corner case (an object
//! tied with a potential dominator on every attribute), so the tests
//! generate *tie-free* data — every attribute is a permutation of `0..n` —
//! where the equivalence is exact. Soundness (a true condition implies
//! skyline membership... and vice versa) then holds in both directions.

use bc_ctable::dominators::{baseline_dominator_set, DominatorIndex};
use bc_ctable::{build_ctable, CTableConfig, Condition, DominatorStrategy};
use bc_data::domain::uniform_domains;
use bc_data::skyline::skyline_bnl;
use bc_data::{Dataset, VarId};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a tie-free complete dataset: each column is a random permutation
/// of `0..n`.
fn permutation_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut col: Vec<u16> = (0..n as u16).collect();
        col.shuffle(&mut rng);
        cols.push(col);
    }
    let rows: Vec<Vec<u16>> = (0..n)
        .map(|i| (0..d).map(|j| cols[j][i]).collect())
        .collect();
    Dataset::from_complete_rows("perm", uniform_domains(d, n as u16).unwrap(), rows).unwrap()
}

/// Deletes `k` pseudo-random cells.
fn delete_cells(data: &Dataset, k: usize, seed: u64) -> Dataset {
    let (out, _) = bc_data::missing::inject_mcar(
        data,
        k as f64 / (data.n_objects() * data.n_attrs()) as f64,
        seed,
    );
    out
}

fn no_prune() -> CTableConfig {
    CTableConfig {
        alpha: 1.0,
        strategy: DominatorStrategy::FastIndex,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// φ(o) evaluated under the hidden completion ⟺ o is in the completed
    /// dataset's skyline (tie-free data, no pruning).
    #[test]
    fn conditions_characterize_the_skyline(
        n in 3usize..24,
        d in 2usize..5,
        missing_frac in 0.0f64..0.4,
        seed in 0u64..5000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let k = (missing_frac * (n * d) as f64) as usize;
        let incomplete = delete_cells(&complete, k, seed.wrapping_add(1));
        let ctable = build_ctable(&incomplete, &no_prune());
        let truth = skyline_bnl(&complete).unwrap();

        let lookup = |v: VarId| complete.get(v.object, v.attr).unwrap();
        for o in complete.objects() {
            let in_skyline = truth.contains(&o);
            let cond_holds = ctable.condition(o).eval(lookup);
            prop_assert_eq!(
                cond_holds,
                in_skyline,
                "object {} (condition {}) disagrees with skyline membership {}",
                o,
                ctable.condition(o),
                in_skyline
            );
        }
    }

    /// The fast dominator index agrees with the pairwise baseline on
    /// arbitrary (even tie-ful) data.
    #[test]
    fn dominator_index_matches_baseline(
        n in 2usize..30,
        d in 1usize..5,
        card in 2u16..8,
        missing_frac in 0.0f64..0.5,
        seed in 0u64..5000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let rows: Vec<Vec<Option<u16>>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        if rng.gen_bool(missing_frac) {
                            None
                        } else {
                            Some(rng.gen_range(0..card))
                        }
                    })
                    .collect()
            })
            .collect();
        let data = Dataset::from_rows("r", uniform_domains(d, card).unwrap(), rows).unwrap();
        let idx = DominatorIndex::build(&data);
        for o in data.objects() {
            prop_assert_eq!(
                idx.dominator_set(&data, o),
                baseline_dominator_set(&data, o),
                "mismatch at object {}", o
            );
        }
    }

    /// On complete tie-free data the c-table is fully decided and the true
    /// conditions are exactly the skyline.
    #[test]
    fn complete_data_needs_no_crowd(
        n in 2usize..30,
        d in 2usize..5,
        seed in 0u64..5000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let ctable = build_ctable(&complete, &no_prune());
        let truth = skyline_bnl(&complete).unwrap();
        for o in complete.objects() {
            prop_assert!(ctable.condition(o).is_decided());
            prop_assert_eq!(
                *ctable.condition(o) == Condition::True,
                truth.contains(&o)
            );
        }
    }

    /// α-pruning only ever turns conditions into `false` (it never
    /// fabricates answers), so the answer set shrinks monotonically with
    /// smaller α.
    #[test]
    fn alpha_pruning_is_sound(
        n in 4usize..24,
        d in 2usize..4,
        seed in 0u64..5000,
    ) {
        let complete = permutation_dataset(n, d, seed);
        let incomplete = delete_cells(&complete, n / 2, seed.wrapping_add(3));
        let full = build_ctable(&incomplete, &no_prune());
        let pruned = build_ctable(
            &incomplete,
            &CTableConfig { alpha: 0.2, strategy: DominatorStrategy::FastIndex },
        );
        for o in incomplete.objects() {
            match pruned.condition(o) {
                Condition::False => {} // may be pruned
                c => prop_assert_eq!(c, full.condition(o), "object {}", o),
            }
        }
    }
}
