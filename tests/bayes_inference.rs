//! Property tests for the Bayesian-network substrate: variable elimination
//! against brute-force enumeration of the joint distribution.

use bc_bayes::{BayesianNetwork, Cpt, Dag, Pmf};
use proptest::prelude::*;
use rand::SeedableRng;

/// Builds a random network over `n` nodes with random-ish CPTs. Structure:
/// each node may take one or two of the previous nodes as parents, so the
/// graph is a DAG by construction.
fn random_network(
    n: usize,
    card: usize,
    parent_choices: &[u8],
    weights: &[f64],
) -> BayesianNetwork {
    let mut dag = Dag::empty(n);
    for child in 1..n {
        let code = parent_choices[child % parent_choices.len()];
        if !code.is_multiple_of(3) {
            dag.try_add_edge((child - 1) % child.max(1), child);
        }
        if code % 3 == 2 && child >= 2 {
            dag.try_add_edge(child - 2, child);
        }
    }
    let mut widx = 0usize;
    let mut next_weight = || {
        let w = weights[widx % weights.len()];
        widx += 1;
        0.05 + w
    };
    let cpts = (0..n)
        .map(|node| {
            let parents = dag.parents(node).to_vec();
            let parent_cards = vec![card; parents.len()];
            let configs: usize = parent_cards.iter().product::<usize>().max(1);
            let table = (0..configs)
                .map(|_| Pmf::from_weights((0..card).map(|_| next_weight()).collect()))
                .collect();
            Cpt::new(node, parents, parent_cards, table)
        })
        .collect();
    BayesianNetwork::new(dag, cpts, vec![card; n])
}

/// Joint probability of a complete assignment.
fn joint(bn: &BayesianNetwork, assignment: &[u16]) -> f64 {
    let mut p = 1.0;
    for node in 0..bn.n_nodes() {
        let parents = bn.dag().parents(node);
        let parent_vals: Vec<u16> = parents.iter().map(|&q| assignment[q]).collect();
        p *= bn.cpts()[node].pmf(&parent_vals).p(assignment[node]);
    }
    p
}

/// Brute-force posterior by enumerating the joint.
fn posterior_by_enumeration(bn: &BayesianNetwork, target: usize, evidence: &[(usize, u16)]) -> Pmf {
    let n = bn.n_nodes();
    let card = bn.cards()[target];
    let mut weights = vec![0.0; card];
    let mut assignment = vec![0u16; n];
    loop {
        let consistent = evidence
            .iter()
            .all(|&(q, v)| q == target || assignment[q] == v);
        if consistent {
            weights[assignment[target] as usize] += joint(bn, &assignment);
        }
        // Odometer.
        let mut k = n;
        loop {
            if k == 0 {
                let total: f64 = weights.iter().sum();
                return if total > 0.0 {
                    Pmf::from_weights(weights)
                } else {
                    Pmf::uniform(card)
                };
            }
            k -= 1;
            assignment[k] += 1;
            if (assignment[k] as usize) < bn.cards()[k] {
                break;
            }
            assignment[k] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn variable_elimination_matches_enumeration(
        n in 2usize..6,
        card in 2usize..4,
        parent_choices in prop::collection::vec(0u8..6, 1..6),
        weights in prop::collection::vec(0.01f64..1.0, 8),
        target_raw in 0usize..6,
        ev_node_raw in 0usize..6,
        ev_val_raw in 0usize..4,
    ) {
        let bn = random_network(n, card, &parent_choices, &weights);
        let target = target_raw % n;
        let ev_node = ev_node_raw % n;
        let ev_val = (ev_val_raw % card) as u16;
        let evidence: Vec<(usize, u16)> = if ev_node == target {
            vec![]
        } else {
            vec![(ev_node, ev_val)]
        };
        let ve = bn.posterior(target, &evidence);
        let brute = posterior_by_enumeration(&bn, target, &evidence);
        for v in 0..card as u16 {
            prop_assert!(
                (ve.p(v) - brute.p(v)).abs() < 1e-9,
                "P({target}={v}|{evidence:?}): VE {} vs enumeration {}",
                ve.p(v), brute.p(v)
            );
        }
    }

    #[test]
    fn posteriors_are_normalized(
        n in 2usize..6,
        card in 2usize..4,
        parent_choices in prop::collection::vec(0u8..6, 1..6),
        weights in prop::collection::vec(0.01f64..1.0, 8),
        target_raw in 0usize..6,
    ) {
        let bn = random_network(n, card, &parent_choices, &weights);
        let target = target_raw % n;
        let p = bn.posterior(target, &[]);
        let total: f64 = (0..card as u16).map(|v| p.p(v)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn sampling_agrees_with_marginals() {
    // Ancestral sampling's empirical marginals must converge to the exact
    // posterior marginals.
    let bn = random_network(4, 3, &[1, 2, 4], &[0.3, 0.9, 0.5, 0.2, 0.7]);
    let exact = bn.posterior(3, &[]);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let n = 60_000;
    let mut counts = [0usize; 3];
    for _ in 0..n {
        let row = bn.sample_row(&mut rng);
        counts[row[3] as usize] += 1;
    }
    for v in 0..3u16 {
        let emp = counts[v as usize] as f64 / n as f64;
        assert!(
            (emp - exact.p(v)).abs() < 0.01,
            "value {v}: empirical {emp} vs exact {}",
            exact.p(v)
        );
    }
}
