//! Property tests: the three probability solvers agree.
//!
//! ADPLL is the paper's contribution; Naive enumeration is ground truth by
//! construction. On arbitrary random conditions and distributions the two
//! must agree exactly (they are both exact), and Monte-Carlo must land
//! nearby. Also checks the complement law and branching-heuristic
//! independence.

use bc_bayes::Pmf;
use bc_ctable::{CmpOp, Condition, Expr, Operand};
use bc_data::VarId;
use bc_solver::{AdpllSolver, BranchHeuristic, MonteCarloSolver, NaiveSolver, Solver, VarDists};
use proptest::prelude::*;

const N_VARS: u32 = 5;
const CARD: usize = 4;

fn var(i: u32) -> VarId {
    VarId::new(i, 0)
}

/// An arbitrary expression over the fixed variable pool.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let ops = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    (0..N_VARS, ops, 0..(N_VARS + CARD as u32)).prop_map(|(v, op, rhs)| {
        if rhs < N_VARS && rhs != v {
            Expr::new(var(v), op, Operand::Var(var(rhs)))
        } else {
            let c = (rhs % CARD as u32) as u16;
            Expr::new(var(v), op, Operand::Const(c))
        }
    })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    prop::collection::vec(prop::collection::vec(arb_expr(), 1..4), 1..4)
        .prop_map(Condition::from_clauses)
}

fn arb_dists() -> impl Strategy<Value = VarDists> {
    prop::collection::vec(prop::collection::vec(0.01f64..1.0, CARD), N_VARS as usize).prop_map(
        |weights| {
            weights
                .into_iter()
                .enumerate()
                .map(|(i, w)| (var(i as u32), Pmf::from_weights(w)))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn adpll_equals_naive(cond in arb_condition(), dists in arb_dists()) {
        let naive = NaiveSolver::new().probability(&cond, &dists).unwrap();
        let adpll = AdpllSolver::new().probability(&cond, &dists).unwrap();
        bc_oracle::assert_prob_close!(naive, adpll, 1e-9, "naive vs adpll on {}", cond);
    }

    #[test]
    fn component_caching_is_transparent(cond in arb_condition(), dists in arb_dists()) {
        let cached = AdpllSolver::new().probability(&cond, &dists).unwrap();
        let uncached = AdpllSolver::new()
            .with_caching(false)
            .probability(&cond, &dists)
            .unwrap();
        bc_oracle::assert_prob_close!(cached, uncached, 1e-9, "caching changed the result");
    }

    #[test]
    fn branching_heuristics_agree(cond in arb_condition(), dists in arb_dists()) {
        let a = AdpllSolver::with_heuristic(BranchHeuristic::MostFrequent)
            .probability(&cond, &dists)
            .unwrap();
        let b = AdpllSolver::with_heuristic(BranchHeuristic::First)
            .probability(&cond, &dists)
            .unwrap();
        bc_oracle::assert_prob_close!(a, b, 1e-9, "branch heuristics disagree");
    }

    #[test]
    fn probabilities_are_probabilities(cond in arb_condition(), dists in arb_dists()) {
        let p = AdpllSolver::new().probability(&cond, &dists).unwrap();
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    #[test]
    fn unit_complement_law(e in arb_expr(), dists in arb_dists()) {
        // Pr(e) + Pr(¬e) = 1 for single expressions.
        let p = dists.expr_prob(&e).unwrap();
        let q = dists.expr_prob(&e.negated()).unwrap();
        bc_oracle::assert_prob_close!(p + q, 1.0, 1e-9, "complement law for {}", e);
    }

    #[test]
    fn conjoining_an_expression_never_increases_probability(
        cond in arb_condition(),
        e in arb_expr(),
        dists in arb_dists(),
    ) {
        let s = AdpllSolver::new();
        let p = s.probability(&cond, &dists).unwrap();
        let p_and = s.probability(&cond.and_expr(e), &dists).unwrap();
        prop_assert!(p_and <= p + 1e-9, "Pr(φ∧e)={p_and} > Pr(φ)={p}");
    }

    #[test]
    fn total_probability_over_expression(
        cond in arb_condition(),
        e in arb_expr(),
        dists in arb_dists(),
    ) {
        // Pr(φ) = Pr(φ ∧ e) + Pr(φ ∧ ¬e).
        let s = NaiveSolver::new();
        let p = s.probability(&cond, &dists).unwrap();
        let pt = s.probability(&cond.and_expr(e), &dists).unwrap();
        let pf = s.probability(&cond.and_expr(e.negated()), &dists).unwrap();
        bc_oracle::assert_prob_close!(p, pt + pf, 1e-9, "total probability over {}", e);
    }

    #[test]
    fn substitution_is_total_probability(
        cond in arb_condition(),
        dists in arb_dists(),
        v_idx in 0..N_VARS,
    ) {
        // Pr(φ) = Σ_a p(v = a) · Pr(φ[v := a]).
        let v = var(v_idx);
        let s = NaiveSolver::new();
        let p = s.probability(&cond, &dists).unwrap();
        let pmf = dists.pmf(v).unwrap().clone();
        let mut total = 0.0;
        for a in pmf.support() {
            total += pmf.p(a) * s.probability(&cond.substitute(v, a), &dists).unwrap();
        }
        bc_oracle::assert_prob_close!(p, total, 1e-9, "substitution of {}", v);
    }

    #[test]
    fn utility_is_bounded_by_entropy(
        cond in arb_condition(),
        dists in arb_dists(),
    ) {
        let s = AdpllSolver::new();
        let p = s.probability(&cond, &dists).unwrap();
        let h = bc_solver::utility::object_entropy(p);
        for e in cond.exprs() {
            let g = bc_solver::utility::marginal_utility(&s, &cond, e, &dists).unwrap();
            prop_assert!(g >= 0.0, "negative utility {g}");
            prop_assert!(g <= h + 1e-9, "G={g} > H={h}");
        }
    }
}

/// The shrunk case recorded in `solver_equivalence.proptest-regressions`:
/// `(Var(o1, a0) < 4)` compares against the domain cardinality itself, so
/// every solver must saturate at exactly 1.0 — the `pr_lt` boundary. The
/// vendored proptest stand-in does not replay regression files, so the
/// case is re-run explicitly here; the same shape is committed to the
/// oracle fuzz corpus as `reg-boundary-const.bcsnap` (see
/// `bc_oracle::corpus`).
#[test]
fn regression_boundary_constant_comparison() {
    let skew = Pmf::from_probs(vec![
        0.5093092101391585,
        0.00743283030467129,
        0.3598544550106761,
        0.12340350454549417,
    ]);
    let dists: VarDists = (0..N_VARS)
        .map(|i| {
            let pmf = if i == 1 {
                skew.clone()
            } else {
                Pmf::uniform(CARD)
            };
            (var(i), pmf)
        })
        .collect();
    let cond = Condition::from_clauses(vec![vec![Expr::lt(var(1), CARD as u16)]]);
    for (name, p) in [
        ("naive", NaiveSolver::new().probability(&cond, &dists)),
        ("adpll", AdpllSolver::new().probability(&cond, &dists)),
    ] {
        bc_oracle::assert_prob_close!(p.unwrap(), 1.0, 0.0, "{} at the domain boundary", name);
    }
    // The complement (`>= card`) must be exactly impossible.
    let none = Condition::from_clauses(vec![vec![Expr::new(
        var(1),
        CmpOp::Ge,
        Operand::Const(CARD as u16),
    )]]);
    bc_oracle::assert_prob_close!(
        AdpllSolver::new().probability(&none, &dists).unwrap(),
        0.0,
        0.0,
        "complement at the domain boundary"
    );
}

#[test]
fn montecarlo_is_consistent() {
    // Not a proptest (sampling is slow); spot-check convergence on a fixed
    // family of conditions.
    let dists: VarDists = (0..N_VARS)
        .map(|i| (var(i), Pmf::from_weights(vec![1.0, 2.0, 3.0, 4.0])))
        .collect();
    for k in 0..5u16 {
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(var(0), k % 4), Expr::var_gt(var(1), var(2))],
            vec![Expr::gt(var(3), k % 3)],
        ]);
        let exact = NaiveSolver::new().probability(&cond, &dists).unwrap();
        let est = MonteCarloSolver::new(40_000, 9)
            .probability(&cond, &dists)
            .unwrap();
        bc_oracle::assert_prob_close!(exact, est, 0.015, "k={}: Monte Carlo drifted", k);
    }
}
