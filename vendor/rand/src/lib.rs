#![warn(missing_docs)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small part of `rand` 0.8's API it actually uses:
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** seeded via splitmix64 — not the upstream ChaCha-based
//! `StdRng`, so per-seed streams differ from real `rand`, but every
//! determinism and calibration property the workspace relies on holds.

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (`[0, 1)` for floats, the full range for integers) — the stand-in for
/// rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly (the stand-in for rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// A value sampled from the type's natural distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample(self) < p
    }

    /// A value drawn uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A xoshiro256** generator — the workspace's deterministic `StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw generator state, for durable checkpoints.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`],
        /// continuing its stream exactly where it left off.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Randomized slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..10).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen_range(0..1000u64)).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is virtually never the identity"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: usize = rng.gen_range(3..3);
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let _: u64 = a.gen();
        }
        let mut b = StdRng::from_state(a.state());
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }
}
