#![warn(missing_docs)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates, so this vendored crate provides
//! just enough of criterion's API for the workspace's `harness = false`
//! benches to compile and run: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! There is no statistical machinery: each benchmark runs `sample_size`
//! iterations, and the mean wall-clock time per iteration is printed. That
//! is good enough for the relative comparisons the repo's figures need,
//! while keeping the workspace buildable with no registry access.

use std::time::Instant;

/// An opaque identity function that defeats constant-folding on its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A label for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter label.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function_id: function_id.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark in this group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size,
            total_nanos: 0,
        };
        f(&mut bencher, input);
        let mean = bencher.total_nanos as f64 / bencher.iters.max(1) as f64;
        println!(
            "{}/{}: {:.3} ms/iter ({} iters)",
            self.name,
            id,
            mean / 1e6,
            bencher.iters
        );
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }
}

/// Bundles bench functions under one group name, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_times() {
        benches();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
