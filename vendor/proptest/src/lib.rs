#![warn(missing_docs)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this vendored crate
//! re-implements the slice of proptest's API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple
//! / [`Just`] / [`prop_oneof!`] strategies, `prop::collection::{vec,
//! btree_set}`, `prop::option::of`, `any::<bool>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! generated from a deterministic per-test seed and there is **no
//! shrinking** — a failing case panics with the formatted assertion message
//! directly. `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// The random source handed to strategies.
pub type TestRng = StdRng;

/// How a generated case ended.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// The case was rejected by `prop_assume!` and does not count.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Test-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one `#[test]` expanded by [`proptest!`].
pub struct TestRunner {
    target: u32,
    ran: u32,
    attempts: u32,
    rng: TestRng,
}

impl TestRunner {
    /// A runner seeded deterministically from the test's name.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            target: config.cases,
            ran: 0,
            attempts: 0,
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// The case generator's random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Records a case outcome; returns `true` when the test is done.
    ///
    /// # Panics
    ///
    /// Panics (failing the test) when the outcome is a [`TestCaseError::Fail`].
    pub fn finish_case(&mut self, outcome: Result<(), TestCaseError>) -> bool {
        self.attempts += 1;
        match outcome {
            Ok(()) => self.ran += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!("proptest case failed: {msg}"),
        }
        self.ran >= self.target || self.attempts >= self.target.saturating_mul(20) + 100
    }
}

/// A generator of arbitrary values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value.
    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] adapter.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A uniform choice among boxed strategies — built by [`prop_oneof!`].
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// A choice over the given non-empty option set.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical arbitrary-value strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Sizes accepted by the collection strategies: an exact `usize` or a
/// `Range<usize>`.
pub trait SizeRange {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A `Vec` of values from `element`, sized by `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The strategy behind [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; duplicates are retried a
    /// bounded number of times, so the final size may fall below the drawn
    /// target when the value space is small.
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// The strategy behind [`btree_set`].
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 10 + 10 {
                attempts += 1;
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// `Some` of the inner strategy half of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy behind [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::` namespace (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Uniform choice among the listed strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property-test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (it does not count toward the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            // The `#[test]` attribute is the caller's, forwarded via $meta
            // (proptest convention is to write it inside the macro).
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                loop {
                    let outcome = {
                        let rng = runner.rng();
                        $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                        (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        })()
                    };
                    if runner.finish_case(outcome) {
                        break;
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(5), "t");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(5), "t");
        let sa: Vec<u32> = (0..5).map(|_| (0u32..100).generate(a.rng())).collect();
        let sb: Vec<u32> = (0..5).map(|_| (0u32..100).generate(b.rng())).collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u16..8, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 8);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            e in prop_oneof![Just(1u8), Just(2u8)],
            t in (0u32..4, any::<bool>()).prop_map(|(n, b)| (n, b)),
        ) {
            prop_assert!(e == 1u8 || e == 2u8);
            prop_assert!(t.0 < 4);
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
