#![warn(missing_docs)]
//! Durable snapshots of BayesCrowd run state.
//!
//! A crowd run spans hours or days of human latency, and every answered
//! task is money already spent — a process restart must not discard paid
//! answers or retrained state. This crate is the persistence container for
//! that state: a **versioned, checksummed JSON-lines document** with a
//! hand-rolled writer and parser in the style of `bc-obs`'s trace sink, and
//! no dependencies.
//!
//! The crate is deliberately generic: it knows nothing about datasets,
//! c-tables, or platforms. Domain state is encoded into the [`Value`] tree
//! by the framework's session layer and stored here as named *sections*.
//!
//! # Document layout
//!
//! ```text
//! {"format":"bc-snapshot","version":1,"fingerprint":"<fnv1a64 hex>"}
//! {"section":"config","data":{...}}
//! {"section":"dataset","data":{...}}
//! ...
//! {"sections":9,"checksum":"<fnv1a64 hex>"}
//! ```
//!
//! * The **header** names the format, its version, and a fingerprint of the
//!   run identity (dataset + configuration) used to reject a checkpoint
//!   against the wrong run.
//! * Each **section** line carries one named [`Value`] payload.
//! * The **footer** closes the document with the section count and an
//!   FNV-1a 64 checksum of every preceding byte. A crash mid-write leaves
//!   the footer missing or stale, so torn checkpoints are detected instead
//!   of resumed from.
//!
//! Serialization is canonical: map entries keep their insertion order,
//! floats print in shortest round-trip form, and integers are kept apart
//! from floats — so `serialize → parse → re-serialize` is byte-identical
//! (pinned by test).

mod doc;
mod error;
mod value;

pub use doc::{fnv1a64, Snapshot, SnapshotWriter, FORMAT_NAME, FORMAT_VERSION};
pub use error::SnapshotError;
pub use value::Value;
