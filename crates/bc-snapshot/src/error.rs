//! Snapshot errors.

use std::fmt;

/// Everything that can go wrong writing, parsing, or decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// A line of the document is not what the format promises.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The header names a different format.
    UnsupportedFormat(String),
    /// The header's format version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The footer checksum does not match the document bytes — a torn
    /// write or a corrupted file.
    ChecksumMismatch {
        /// Checksum declared by the footer.
        declared: String,
        /// Checksum of the bytes actually read.
        actual: String,
    },
    /// The footer's section count disagrees with the sections present.
    SectionCountMismatch {
        /// Count declared by the footer.
        declared: usize,
        /// Sections actually read.
        actual: usize,
    },
    /// A section the decoder needs is absent.
    MissingSection(String),
    /// A section parsed but its contents do not decode to the expected
    /// domain state (wrong shape, out-of-range value, wrong fingerprint,
    /// unsupported platform, ...).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::Malformed { line, reason } => {
                write!(f, "malformed snapshot at line {line}: {reason}")
            }
            SnapshotError::UnsupportedFormat(found) => {
                write!(f, "not a bc-snapshot document (format {found:?})")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot version {v} is newer than this reader")
            }
            SnapshotError::ChecksumMismatch { declared, actual } => write!(
                f,
                "snapshot checksum mismatch (footer {declared}, bytes {actual}) — torn write or corruption"
            ),
            SnapshotError::SectionCountMismatch { declared, actual } => write!(
                f,
                "snapshot declares {declared} sections but contains {actual}"
            ),
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing the {name:?} section")
            }
            SnapshotError::Invalid(reason) => write!(f, "invalid snapshot state: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
