//! The generic value tree snapshots are built from, with a canonical JSON
//! writer and a matching parser.
//!
//! Two departures from a stock JSON model keep round-trips exact:
//!
//! * **Integers and floats are distinct variants.** Counters (budgets,
//!   RNG words, masks) must not detour through `f64` and lose precision;
//!   a number token is an [`Value::Int`] unless it contains `.`, `e`, or
//!   `E`.
//! * **Floats print in shortest round-trip form** (Rust's `{:?}`), so the
//!   exact bit pattern survives `write → parse → write` and the output is
//!   byte-stable. Non-finite floats print as `NaN`/`inf`/`-inf` and parse
//!   back — snapshots must be total even for degenerate state.

/// A dynamically typed snapshot value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent/none.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer, wide enough for `u64` counters and RNG words.
    Int(i128),
    /// IEEE-754 double, round-tripped exactly.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    List(Vec<Value>),
    /// Ordered key→value map (insertion order is preserved and is part of
    /// the canonical byte representation).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A map from borrowed keys — the ergonomic constructor for encoders.
    pub fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer as a `u64`, if this is one and it fits.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|i| u64::try_from(i).ok())
    }

    /// The integer as a `usize`, if this is one and it fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|i| usize::try_from(i).ok())
    }

    /// The integer as a `u16`, if this is one and it fits.
    pub fn as_u16(&self) -> Option<u16> {
        self.as_int().and_then(|i| u16::try_from(i).ok())
    }

    /// The float, if this is one. Integers do not coerce — the two are
    /// distinct on the wire.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// The entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks `key` up in a map (first match; canonical documents never
    /// duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Serializes to compact canonical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                out.push_str(&format!("{f:?}"));
            }
            Value::Str(s) => escape_into(s, out),
            Value::List(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_json(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one canonical JSON value (the payload of a document line).
    /// Returns a human-readable reason on failure; the document layer
    /// attaches the line number.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.map(),
            Some(b'[') => self.list(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-inf") => {
                self.pos += 4;
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number tokens are ascii");
        if is_float {
            token
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad float {token:?}: {e}"))
        } else {
            token
                .parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer {token:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid utf-8 in string".to_string())?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("\\u escape is not a scalar value")?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err("unknown escape".into()),
                    }
                    self.pos += 1;
                }
                Some((i, c)) => {
                    out.push(c);
                    self.pos += i + c.len_utf8();
                }
            }
        }
    }

    fn list(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::List(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::List(xs));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn map(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        let json = v.to_json();
        let back = Value::parse(&json).unwrap_or_else(|e| panic!("unparseable {json}: {e}"));
        assert_eq!(back.to_json(), json, "re-serialization must be identical");
        back
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-7),
            Value::Int(u64::MAX as i128),
            Value::Float(0.1 + 0.2),
            Value::Float(-1.5e-300),
            Value::Str("hello \"world\"\n\\ tab\t".into()),
            Value::Str("unicode: αβγ 🦀".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn floats_survive_bit_exactly() {
        let exact = 1.0 / 3.0;
        match round_trip(&Value::Float(exact)) {
            Value::Float(f) => assert_eq!(f.to_bits(), exact.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_stay_representable() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(round_trip(&Value::Float(f)), Value::Float(f));
        }
        // NaN != NaN, so compare the serialized form instead.
        let json = Value::Float(f64::NAN).to_json();
        assert_eq!(json, "NaN");
        assert_eq!(Value::parse(&json).unwrap().to_json(), "NaN");
    }

    #[test]
    fn integers_do_not_detour_through_floats() {
        // 2^63 + 1 is not representable as f64; the Int variant must keep
        // every bit (RNG state words take the full u64 range).
        let big = (1i128 << 63) + 1;
        assert_eq!(round_trip(&Value::Int(big)), Value::Int(big));
        assert_eq!(
            Value::parse("9223372036854775809").unwrap().as_int(),
            Some(big)
        );
    }

    #[test]
    fn nesting_and_order_are_preserved() {
        let v = Value::obj(vec![
            ("z", Value::List(vec![Value::Int(1), Value::Null])),
            ("a", Value::obj(vec![("inner", Value::Float(2.5))])),
            ("empty_list", Value::List(vec![])),
            ("empty_map", Value::Map(vec![])),
        ]);
        let back = round_trip(&v);
        assert_eq!(back, v);
        // Insertion order, not sorted order, is canonical.
        assert!(back.to_json().starts_with("{\"z\":"));
        assert_eq!(
            back.get("a").and_then(|a| a.get("inner")),
            Some(&Value::Float(2.5))
        );
    }

    #[test]
    fn accessors_are_typed() {
        let v = Value::obj(vec![("n", Value::Int(42)), ("f", Value::Float(1.0))]);
        assert_eq!(v.get("n").unwrap().as_usize(), Some(42));
        assert_eq!(v.get("n").unwrap().as_u16(), Some(42));
        assert_eq!(v.get("n").unwrap().as_f64(), None, "no int→float coercion");
        assert_eq!(v.get("f").unwrap().as_int(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "01a",
            "1.2.3",
            "[1] trailing",
            "{\"k\":\"\\q\"}",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
