//! The framed snapshot document: header, named sections, checksummed
//! footer.

use crate::error::SnapshotError;
use crate::value::Value;
use std::io::{Read, Write};

/// The format name every document's header must carry.
pub const FORMAT_NAME: &str = "bc-snapshot";

/// The newest document version this crate writes and understands. Older
/// readers refuse newer documents; the version only moves when the layout
/// itself changes (section shapes are the domain layer's business).
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit, the checksum of the footer (and the fingerprint hash the
/// domain layer uses). Small, dependency-free, and plenty for detecting
/// torn writes — snapshots are not an integrity boundary against attackers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn header_value(fingerprint: &str) -> Value {
    Value::obj(vec![
        ("format", Value::Str(FORMAT_NAME.into())),
        ("version", Value::Int(FORMAT_VERSION as i128)),
        ("fingerprint", Value::Str(fingerprint.into())),
    ])
}

fn footer_value(sections: usize, checksum: u64) -> Value {
    Value::obj(vec![
        ("sections", Value::Int(sections as i128)),
        ("checksum", Value::Str(format!("{checksum:016x}"))),
    ])
}

/// Streams one snapshot document to a writer, hashing as it goes.
///
/// Mirrors `bc-obs`'s `JsonLinesSink`: one JSON object per line, written
/// eagerly. The footer — and with it a parseable document — only exists
/// once [`SnapshotWriter::finish`] runs; a crash mid-write therefore leaves
/// a document that [`Snapshot::parse`] rejects instead of half-resumes.
pub struct SnapshotWriter<W: Write> {
    inner: W,
    hash: u64,
    bytes: usize,
    sections: usize,
}

impl<W: Write> SnapshotWriter<W> {
    /// Starts a document by writing its header line.
    pub fn new(inner: W, fingerprint: &str) -> Result<SnapshotWriter<W>, SnapshotError> {
        let mut w = SnapshotWriter {
            inner,
            hash: 0xcbf2_9ce4_8422_2325,
            bytes: 0,
            sections: 0,
        };
        w.write_line(&header_value(fingerprint).to_json())?;
        Ok(w)
    }

    fn write_line(&mut self, line: &str) -> Result<(), SnapshotError> {
        self.inner.write_all(line.as_bytes())?;
        self.inner.write_all(b"\n")?;
        for &b in line.as_bytes().iter().chain(b"\n") {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.bytes += line.len() + 1;
        Ok(())
    }

    /// Appends one named section.
    pub fn section(&mut self, name: &str, data: Value) -> Result<(), SnapshotError> {
        let line = Value::obj(vec![("section", Value::Str(name.into())), ("data", data)]);
        self.write_line(&line.to_json())?;
        self.sections += 1;
        Ok(())
    }

    /// Writes the footer, flushes, and returns the total bytes written.
    pub fn finish(mut self) -> Result<usize, SnapshotError> {
        let footer = footer_value(self.sections, self.hash).to_json();
        self.inner.write_all(footer.as_bytes())?;
        self.inner.write_all(b"\n")?;
        self.inner.flush()?;
        Ok(self.bytes + footer.len() + 1)
    }
}

/// A parsed snapshot document: the header fingerprint plus its sections,
/// in document order.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    fingerprint: String,
    sections: Vec<(String, Value)>,
}

impl Snapshot {
    /// Builds a document in memory (the write-side counterpart used by
    /// re-serialization tests and by [`Snapshot::write_to`]).
    pub fn new(fingerprint: String, sections: Vec<(String, Value)>) -> Snapshot {
        Snapshot {
            fingerprint,
            sections,
        }
    }

    /// The header's run fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// All sections, in document order.
    pub fn sections(&self) -> &[(String, Value)] {
        &self.sections
    }

    /// The named section's payload.
    pub fn section(&self, name: &str) -> Result<&Value, SnapshotError> {
        self.sections
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v))
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }

    /// Reads and validates one complete document: header, every section,
    /// and a footer whose section count and checksum match the bytes read.
    pub fn parse(mut reader: impl Read) -> Result<Snapshot, SnapshotError> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;

        let mut fingerprint: Option<String> = None;
        let mut sections: Vec<(String, Value)> = Vec::new();
        let mut footer: Option<(usize, String, u64)> = None; // declared count, checksum, hash-so-far
        let mut hash = 0xcbf2_9ce4_8422_2325u64;

        for (idx, line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let malformed = |reason: String| SnapshotError::Malformed {
                line: line_no,
                reason,
            };
            if footer.is_some() {
                return Err(malformed("content after the footer".into()));
            }
            let value = Value::parse(line).map_err(malformed)?;
            if line_no == 1 {
                let format = value
                    .get("format")
                    .and_then(Value::as_str)
                    .ok_or_else(|| malformed("header lacks a format name".into()))?;
                if format != FORMAT_NAME {
                    return Err(SnapshotError::UnsupportedFormat(format.to_string()));
                }
                let version = value
                    .get("version")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| malformed("header lacks a version".into()))?;
                if version as u32 > FORMAT_VERSION {
                    return Err(SnapshotError::UnsupportedVersion(version as u32));
                }
                let fp = value
                    .get("fingerprint")
                    .and_then(Value::as_str)
                    .ok_or_else(|| malformed("header lacks a fingerprint".into()))?;
                fingerprint = Some(fp.to_string());
            } else if let Some(name) = value.get("section").and_then(Value::as_str) {
                let data = value
                    .get("data")
                    .ok_or_else(|| malformed("section line lacks data".into()))?;
                sections.push((name.to_string(), data.clone()));
            } else if let Some(declared) = value.get("sections").and_then(Value::as_usize) {
                let checksum = value
                    .get("checksum")
                    .and_then(Value::as_str)
                    .ok_or_else(|| malformed("footer lacks a checksum".into()))?;
                footer = Some((declared, checksum.to_string(), hash));
                continue; // the footer itself is not hashed
            } else {
                return Err(malformed("neither section nor footer".into()));
            }
            for &b in line.as_bytes().iter().chain(b"\n") {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }

        let fingerprint = fingerprint.ok_or(SnapshotError::Malformed {
            line: 1,
            reason: "empty document".into(),
        })?;
        let (declared, checksum, hashed) = footer.ok_or(SnapshotError::Malformed {
            line: text.lines().count().max(1),
            reason: "no footer — torn write?".into(),
        })?;
        if declared != sections.len() {
            return Err(SnapshotError::SectionCountMismatch {
                declared,
                actual: sections.len(),
            });
        }
        let actual = format!("{hashed:016x}");
        if checksum != actual {
            return Err(SnapshotError::ChecksumMismatch {
                declared: checksum,
                actual,
            });
        }
        Ok(Snapshot {
            fingerprint,
            sections,
        })
    }

    /// Re-serializes the document. For a document produced by
    /// [`SnapshotWriter`], the output is byte-identical to the original
    /// (pinned by test) — parsing is lossless and serialization canonical.
    pub fn write_to(&self, out: impl Write) -> Result<usize, SnapshotError> {
        let mut w = SnapshotWriter::new(out, &self.fingerprint)?;
        for (name, data) in &self.sections {
            w.section(name, data.clone())?;
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = SnapshotWriter::new(&mut buf, "00deadbeef00cafe").unwrap();
        w.section(
            "config",
            Value::obj(vec![
                ("budget", Value::Int(20)),
                ("alpha", Value::Float(0.01)),
            ]),
        )
        .unwrap();
        w.section(
            "pending",
            Value::List(vec![Value::obj(vec![("attempts", Value::Int(1))])]),
        )
        .unwrap();
        w.finish().unwrap();
        buf
    }

    #[test]
    fn write_parse_round_trip() {
        let bytes = sample_bytes();
        let snap = Snapshot::parse(&bytes[..]).unwrap();
        assert_eq!(snap.fingerprint(), "00deadbeef00cafe");
        assert_eq!(snap.sections().len(), 2);
        assert_eq!(
            snap.section("config")
                .unwrap()
                .get("budget")
                .unwrap()
                .as_usize(),
            Some(20)
        );
        assert!(matches!(
            snap.section("nope"),
            Err(SnapshotError::MissingSection(_))
        ));
    }

    #[test]
    fn reserialization_is_byte_identical() {
        let bytes = sample_bytes();
        let snap = Snapshot::parse(&bytes[..]).unwrap();
        let mut again = Vec::new();
        let n = snap.write_to(&mut again).unwrap();
        assert_eq!(n, again.len());
        assert_eq!(again, bytes);
    }

    #[test]
    fn torn_writes_are_rejected() {
        let bytes = sample_bytes();
        // Missing footer (the crash-mid-write shape).
        let cut = bytes.len() - 2;
        assert!(matches!(
            Snapshot::parse(&bytes[..cut]),
            Err(SnapshotError::Malformed { .. })
        ));
        // A flipped byte inside a section breaks the checksum (if it even
        // parses).
        let mut corrupt = bytes.clone();
        let i = corrupt.iter().position(|&b| b == b'2').unwrap();
        corrupt[i] = b'3';
        assert!(Snapshot::parse(&corrupt[..]).is_err());
    }

    #[test]
    fn foreign_and_future_documents_are_refused() {
        let other = b"{\"format\":\"other\",\"version\":1,\"fingerprint\":\"x\"}\n";
        assert!(matches!(
            Snapshot::parse(&other[..]),
            Err(SnapshotError::UnsupportedFormat(_))
        ));
        let future = format!(
            "{{\"format\":\"bc-snapshot\",\"version\":{},\"fingerprint\":\"x\"}}\n",
            FORMAT_VERSION + 1
        );
        assert!(matches!(
            Snapshot::parse(future.as_bytes()),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn section_count_must_match() {
        let bytes = sample_bytes();
        let text = String::from_utf8(bytes).unwrap();
        // Drop one section line but keep the (now stale) footer.
        let lines: Vec<&str> = text.lines().collect();
        let tampered = format!("{}\n{}\n{}\n", lines[0], lines[2], lines[3]);
        // Either the checksum or the count catches it — both are wrong.
        assert!(Snapshot::parse(tampered.as_bytes()).is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
