//! The exhaustive possible-worlds oracle.
//!
//! A possible world of an incomplete dataset is one completion: every
//! missing cell `Var(o, a)` replaced by a value from its domain. Under the
//! pipeline's independence assumption the probability of a world is the
//! product of the per-cell pmf masses ([`bc_bayes::joint`]), and the *true*
//! probability that object `o` answers the skyline query is the total
//! weight of the worlds in which it does.
//!
//! This module computes that number by brute force — dominance tests per
//! world, no c-table, no CNF, no solver — so it can stand as ground truth
//! against the whole `bc-ctable`/`bc-solver` pipeline. It also evaluates
//! the pipeline's own conditions per world ([`CTable::eval_world`]), which
//! pins down exactly where the two semantics are allowed to differ: in
//! worlds with within-column ties, where the paper's strict-inequality CNF
//! encoding approximates (see `tests/possible_worlds.rs`). In every
//! tie-free world the two must agree object-for-object, and
//! [`WorldReport::tie_free_mismatch`] reports the first world where they
//! don't.

use bc_bayes::joint::JointAssignments;
use bc_bayes::Pmf;
use bc_ctable::CTable;
use bc_data::skyline::skyline_bnl;
use bc_data::{AttrId, Dataset, Direction, ObjectId, Value, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by world enumeration.
#[derive(Clone, Debug, PartialEq)]
pub enum OracleError {
    /// The instance has more completions than the configured cap.
    TooManyWorlds {
        /// Worlds the enumeration would need.
        states: u128,
        /// The configured cap.
        limit: u128,
    },
    /// A missing cell has no distribution.
    MissingDistribution(VarId),
    /// The dataset rejected a completion value (pmf wider than the domain).
    InvalidWorld(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooManyWorlds { states, limit } => {
                write!(f, "instance has {states} possible worlds (limit {limit})")
            }
            OracleError::MissingDistribution(v) => {
                write!(f, "missing cell {v} has no distribution")
            }
            OracleError::InvalidWorld(msg) => write!(f, "invalid completion: {msg}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A tie-free world in which a condition's truth disagreed with actual
/// skyline membership — a genuine c-table construction bug.
#[derive(Clone, Debug, PartialEq)]
pub struct TieFreeMismatch {
    /// The object whose condition lied.
    pub object: ObjectId,
    /// The completion, as `(variable, value)` pairs.
    pub world: Vec<(VarId, Value)>,
    /// What the condition evaluated to in that world.
    pub condition_holds: bool,
    /// Whether the object is actually in that world's skyline.
    pub in_skyline: bool,
}

/// What the oracle computed for one instance.
#[derive(Clone, Debug)]
pub struct WorldReport {
    /// Number of enumerated completions.
    pub n_worlds: u128,
    /// Per-object weighted frequency of skyline membership over all worlds
    /// (standard dominance semantics, ties included). Index = object id.
    pub skyline: Vec<f64>,
    /// Per-object weighted frequency of `φ(o)` holding over all worlds —
    /// present when a c-table was supplied. This is the exact quantity
    /// every solver computes, so solvers are compared against it.
    pub condition: Option<Vec<f64>>,
    /// Total weight of tie-free worlds (1.0 when no completion can collide
    /// with an observed value).
    pub tie_free_weight: f64,
    /// First tie-free world where condition truth and skyline membership
    /// disagreed, if any. `None` is the correctness contract.
    pub tie_free_mismatch: Option<TieFreeMismatch>,
}

/// The exhaustive oracle: enumeration with an explicit world cap.
#[derive(Clone, Copy, Debug)]
pub struct PossibleWorlds {
    /// Maximum number of completions to enumerate.
    pub max_worlds: u128,
}

impl Default for PossibleWorlds {
    fn default() -> Self {
        PossibleWorlds {
            max_worlds: 1 << 20,
        }
    }
}

impl PossibleWorlds {
    /// An oracle with the default world cap (`2^20`).
    pub fn new() -> PossibleWorlds {
        PossibleWorlds::default()
    }

    /// An oracle with an explicit cap.
    pub fn with_limit(max_worlds: u128) -> PossibleWorlds {
        PossibleWorlds { max_worlds }
    }

    /// Walks every completion of `data`, weighting by `pmfs`, and invokes
    /// `visit(world, weight)` per world. The `world` is the completed
    /// dataset; the weights over all calls sum to 1.
    pub fn for_each_world(
        &self,
        data: &Dataset,
        pmfs: &BTreeMap<VarId, Pmf>,
        mut visit: impl FnMut(&Dataset, f64) -> Result<(), OracleError>,
    ) -> Result<u128, OracleError> {
        let missing = data.missing_vars();
        let vars: Vec<(VarId, Pmf)> = missing
            .iter()
            .map(|&v| {
                pmfs.get(&v)
                    .cloned()
                    .map(|p| (v, p))
                    .ok_or(OracleError::MissingDistribution(v))
            })
            .collect::<Result<_, _>>()?;
        let joint = JointAssignments::new(vars, self.max_worlds).map_err(|e| {
            OracleError::TooManyWorlds {
                states: e.states,
                limit: e.limit,
            }
        })?;
        let n_worlds = joint.n_states();
        let mut world = data.clone();
        for (assignment, weight) in joint {
            for &(v, value) in &assignment {
                world
                    .set(v.object, v.attr, Some(value))
                    .map_err(|e| OracleError::InvalidWorld(e.to_string()))?;
            }
            visit(&world, weight)?;
        }
        Ok(n_worlds)
    }

    /// The full oracle pass: skyline probabilities (and, when `ctable` is
    /// given, condition probabilities plus the tie-free agreement check).
    pub fn report(
        &self,
        data: &Dataset,
        pmfs: &BTreeMap<VarId, Pmf>,
        ctable: Option<&CTable>,
    ) -> Result<WorldReport, OracleError> {
        let n = data.n_objects();
        let mut skyline = vec![0.0; n];
        let mut condition = ctable.map(|_| vec![0.0; n]);
        let mut tie_free_weight = 0.0;
        let mut tie_free_mismatch = None;
        let missing = data.missing_vars();

        let n_worlds = self.for_each_world(data, pmfs, |world, weight| {
            let sky = skyline_bnl(world).map_err(|e| OracleError::InvalidWorld(e.to_string()))?;
            let mut in_sky = vec![false; n];
            for &o in &sky {
                in_sky[o.index()] = true;
                skyline[o.index()] += weight;
            }
            let tie_free = !has_column_tie(world);
            if tie_free {
                tie_free_weight += weight;
            }
            if let (Some(ct), Some(freqs)) = (ctable, condition.as_mut()) {
                let lookup = |v: VarId| world.get(v.object, v.attr).expect("world is complete");
                let holds = ct.eval_world(lookup);
                for (i, &h) in holds.iter().enumerate() {
                    if h {
                        freqs[i] += weight;
                    }
                    if tie_free && h != in_sky[i] && tie_free_mismatch.is_none() {
                        tie_free_mismatch = Some(TieFreeMismatch {
                            object: ObjectId(i as u32),
                            world: missing
                                .iter()
                                .map(|&v| (v, world.get(v.object, v.attr).unwrap()))
                                .collect(),
                            condition_holds: h,
                            in_skyline: in_sky[i],
                        });
                    }
                }
            }
            Ok(())
        })?;

        Ok(WorldReport {
            n_worlds,
            skyline,
            condition,
            tie_free_weight,
            tie_free_mismatch,
        })
    }

    /// Skyline probabilities under *mixed preference directions*, computed
    /// directly from directional dominance — no reflection involved. The
    /// reflection metamorphic test compares this against the standard
    /// pipeline run on [`bc_data::normalize_directions`]-reflected data
    /// with [`Pmf::reflected`] distributions.
    pub fn skyline_with_directions(
        &self,
        data: &Dataset,
        pmfs: &BTreeMap<VarId, Pmf>,
        directions: &[Direction],
    ) -> Result<Vec<f64>, OracleError> {
        let n = data.n_objects();
        let mut skyline = vec![0.0; n];
        self.for_each_world(data, pmfs, |world, weight| {
            for o in world.objects() {
                if !world
                    .objects()
                    .any(|p| p != o && dominates_directional(world, p, o, directions))
                {
                    skyline[o.index()] += weight;
                }
            }
            Ok(())
        })?;
        Ok(skyline)
    }
}

/// Whether any attribute column of a (complete) world holds the same value
/// twice. The CNF encoding is exact only on tie-free worlds.
fn has_column_tie(world: &Dataset) -> bool {
    world.attrs().any(|a| {
        let mut seen = vec![false; world.domain(a).cardinality() as usize];
        world.objects().any(|o| {
            let v = world.get(o, a).expect("world is complete") as usize;
            std::mem::replace(&mut seen[v], true)
        })
    })
}

/// Directional dominance: `p` dominates `o` iff `p` is at least as good on
/// every attribute (per that attribute's direction) and strictly better on
/// at least one.
fn dominates_directional(world: &Dataset, p: ObjectId, o: ObjectId, dirs: &[Direction]) -> bool {
    let mut strict = false;
    for (i, &dir) in dirs.iter().enumerate() {
        let a = AttrId(i as u16);
        let pv = world.get(p, a).expect("world is complete");
        let ov = world.get(o, a).expect("world is complete");
        let (better, worse) = match dir {
            Direction::Maximize => (pv > ov, pv < ov),
            Direction::Minimize => (pv < ov, pv > ov),
        };
        if worse {
            return false;
        }
        if better {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
    use bc_data::domain::uniform_domains;

    /// The two-object, one-missing-cell instance is solvable by hand:
    /// o0 = (2, ?), o1 = (1, 1), domains 0..3, uniform pmf.
    fn tiny() -> (Dataset, BTreeMap<VarId, Pmf>) {
        let mut data = Dataset::from_complete_rows(
            "tiny",
            uniform_domains(2, 4).unwrap(),
            vec![vec![2, 0], vec![1, 1]],
        )
        .unwrap();
        data.set(ObjectId(0), AttrId(1), None).unwrap();
        let pmfs = [(VarId::new(0, 1), Pmf::uniform(4))].into_iter().collect();
        (data, pmfs)
    }

    #[test]
    fn hand_checked_probabilities() {
        let (data, pmfs) = tiny();
        let ct = build_ctable(
            &data,
            &CTableConfig {
                alpha: 1.0,
                strategy: DominatorStrategy::FastIndex,
            },
        );
        let report = PossibleWorlds::new()
            .report(&data, &pmfs, Some(&ct))
            .unwrap();
        assert_eq!(report.n_worlds, 4);
        // o0 has the higher first attribute: never dominated, always in.
        assert!((report.skyline[0] - 1.0).abs() < 1e-12);
        // o1 is dominated exactly when Var(o0,a1) ≥ 1 (3 of 4 worlds).
        assert!((report.skyline[1] - 0.25).abs() < 1e-12);
        // No observed value can collide in a column: a0 column is (2, 1),
        // tie-free; a1 column ties when the missing cell lands on 1.
        assert!((report.tie_free_weight - 0.75).abs() < 1e-12);
        assert_eq!(report.tie_free_mismatch, None);
        let cond = report.condition.unwrap();
        assert!((cond[0] - 1.0).abs() < 1e-12);
        // φ(o1) = Var(o0,a1) < 1 — strict, so the tie world counts against.
        assert!((cond[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn directional_matches_reflection() {
        let (data, pmfs) = tiny();
        let dirs = [Direction::Maximize, Direction::Minimize];
        let direct = PossibleWorlds::new()
            .skyline_with_directions(&data, &pmfs, &dirs)
            .unwrap();
        let reflected = bc_data::normalize_directions(&data, &dirs).unwrap();
        let rpmfs: BTreeMap<VarId, Pmf> = pmfs
            .iter()
            .map(|(v, p)| match dirs[v.attr.index()] {
                Direction::Minimize => (*v, p.reflected()),
                Direction::Maximize => (*v, p.clone()),
            })
            .collect();
        let via_reflection = PossibleWorlds::new()
            .report(&reflected, &rpmfs, None)
            .unwrap();
        for (o, (&a, &b)) in direct.iter().zip(&via_reflection.skyline).enumerate() {
            assert!((a - b).abs() < 1e-12, "object {o}: {a} vs {b}");
        }
    }

    #[test]
    fn world_cap_is_enforced() {
        let (data, pmfs) = tiny();
        let err = PossibleWorlds::with_limit(3)
            .report(&data, &pmfs, None)
            .unwrap_err();
        assert_eq!(
            err,
            OracleError::TooManyWorlds {
                states: 4,
                limit: 3
            }
        );
    }

    #[test]
    fn missing_distribution_is_reported() {
        let (data, _) = tiny();
        let err = PossibleWorlds::new()
            .report(&data, &BTreeMap::new(), None)
            .unwrap_err();
        assert_eq!(err, OracleError::MissingDistribution(VarId::new(0, 1)));
    }
}
