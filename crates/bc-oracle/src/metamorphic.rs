//! Metamorphic invariants over whole runs.
//!
//! The differential harness ([`crate::diff`]) checks a *static* instance;
//! the checks here perturb an instance or drive a full crowdsourcing run
//! and assert relations that must hold regardless of the numbers involved:
//!
//! * [`conditioning_decomposes`] — the law of total probability across
//!   answer propagation: conditioning the c-table and the pmfs on each
//!   possible answer to a cell and mixing back by the prior reproduces the
//!   unconditioned probability exactly. This is the statement that
//!   constraint pruning/propagation preserves weighted model counts.
//! * [`reflection_preserves_skyline`] — reflecting minimize-direction
//!   attributes ([`bc_data::normalize_directions`] on values,
//!   [`Pmf::reflected`] on distributions) preserves every skyline
//!   probability, and the reflected instance still passes the full
//!   differential check.
//! * [`session_invariants`] — drives a live [`Session`] round by round:
//!   open expressions never increase, decided conditions never revert, and
//!   after every round the session's own per-object probabilities equal an
//!   exhaustive possible-worlds evaluation of its current c-table under
//!   its current posterior.
//! * [`resume_preserves_probabilities`] — checkpointing at a round and
//!   resuming in a fresh session preserves every per-object probability,
//!   at the resume point and at the end of the run.
//!
//! Every function returns `Err(String)` with a human-readable account of
//! the first violated invariant — suitable both for test assertions and
//! the fuzz binary's failure report.

use crate::diff::{check_instance, exact_ctable, DiffConfig};
use crate::gen::Instance;
use crate::prob_close;
use crate::worlds::PossibleWorlds;
use bayescrowd::{BayesCrowd, BayesCrowdConfig, Session};
use bc_bayes::Pmf;
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_ctable::{Condition, ConstraintStore, Operand, Relation};
use bc_data::{normalize_directions, Direction, ObjectId, VarId};
use bc_solver::{NaiveSolver, Solver, VarDists};
use std::collections::{BTreeMap, BTreeSet};

/// Checks, for every missing cell, that conditioning on each possible
/// answer and mixing by the prior reproduces the unconditioned skyline
/// probability of every object: `Pr(φ) = Σ_v Pr(var = v) · Pr(φ | var = v)`,
/// where the conditional runs through the *production* propagation path
/// ([`ConstraintStore::record`] + [`bc_ctable::CTable::propagate`] +
/// [`Pmf::conditioned`]). Returns the number of (cell, value) pairs
/// exercised.
pub fn conditioning_decomposes(inst: &Instance, eps: f64) -> Result<usize, String> {
    let ctable = exact_ctable(&inst.data);
    let naive = NaiveSolver::default();
    let dists = inst.dists();
    let prior: Vec<f64> = inst
        .data
        .objects()
        .map(|o| naive.probability(ctable.condition(o), &dists))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: prior probability failed: {e}", inst.name))?;

    let mut exercised = 0;
    for &var in &inst.data.missing_vars() {
        let pmf = &inst.pmfs[&var];
        let mut mixed = vec![0.0; inst.data.n_objects()];
        for v in pmf.support() {
            exercised += 1;
            let mut store = ConstraintStore::new(&inst.data);
            store.record(var, Operand::Const(v), Relation::Eq);
            let mut conditioned = ctable.clone();
            conditioned.propagate(&store);
            let mut map = BTreeMap::new();
            for (&w, base) in &inst.pmfs {
                if let Some(p) = base.conditioned(store.mask(w)) {
                    map.insert(w, p);
                }
            }
            let cond_dists = VarDists::new(map);
            for o in inst.data.objects() {
                let p = naive
                    .probability(conditioned.condition(o), &cond_dists)
                    .map_err(|e| format!("{}: conditional on {var}={v} failed: {e}", inst.name))?;
                mixed[o.index()] += pmf.p(v) * p;
            }
        }
        for o in inst.data.objects() {
            if !prob_close(mixed[o.index()], prior[o.index()], eps) {
                return Err(format!(
                    "{}: conditioning on {var} does not decompose for object {o}: \
                     mixed {} vs prior {}",
                    inst.name,
                    mixed[o.index()],
                    prior[o.index()]
                ));
            }
        }
    }
    Ok(exercised)
}

/// `inst` with minimize-direction attributes reflected: values through
/// [`normalize_directions`], distributions through [`Pmf::reflected`] (the
/// matching pushforward — only pmfs of reflected attributes change).
pub fn reflected_instance(inst: &Instance, dirs: &[Direction]) -> Result<Instance, String> {
    let data = normalize_directions(&inst.data, dirs)
        .map_err(|e| format!("{}: reflection failed: {e}", inst.name))?;
    let pmfs: BTreeMap<VarId, Pmf> = inst
        .pmfs
        .iter()
        .map(|(v, p)| {
            let p = match dirs[v.attr.index()] {
                Direction::Minimize => p.reflected(),
                Direction::Maximize => p.clone(),
            };
            (*v, p)
        })
        .collect();
    Ok(Instance {
        name: format!("{}-reflected", inst.name),
        seed: inst.seed,
        data,
        pmfs,
    })
}

/// Checks that skyline probabilities under mixed preference directions are
/// invariant under the reflection the pipeline actually performs: the
/// directional possible-worlds oracle on the original instance must equal
/// the plain (maximize-everything) oracle on the reflected instance, and
/// the reflected instance must pass the full differential check.
pub fn reflection_preserves_skyline(
    inst: &Instance,
    dirs: &[Direction],
    cfg: &DiffConfig,
) -> Result<(), String> {
    let worlds = PossibleWorlds::with_limit(cfg.max_worlds);
    let direct = worlds
        .skyline_with_directions(&inst.data, &inst.pmfs, dirs)
        .map_err(|e| format!("{}: directional oracle failed: {e}", inst.name))?;
    let reflected = reflected_instance(inst, dirs)?;
    let via_reflection = worlds
        .report(&reflected.data, &reflected.pmfs, None)
        .map_err(|e| format!("{}: reflected oracle failed: {e}", reflected.name))?;
    for o in inst.data.objects() {
        let (a, b) = (direct[o.index()], via_reflection.skyline[o.index()]);
        if !prob_close(a, b, cfg.eps) {
            return Err(format!(
                "{}: reflection changes skyline probability of {o}: {a} vs {b}",
                inst.name
            ));
        }
    }
    check_instance(&reflected, cfg).map_err(|d| d.to_string())?;
    Ok(())
}

/// A completion of `inst` to serve as the crowd's ground truth — each
/// missing cell sampled once from its pmf, deterministically from `seed`.
pub fn sample_ground_truth(inst: &Instance, seed: u64) -> bc_data::Dataset {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut complete = inst.data.clone();
    for (v, pmf) in &inst.pmfs {
        complete
            .set(v.object, v.attr, Some(pmf.sample(&mut rng)))
            .expect("sampled value is in-domain");
    }
    complete
}

fn oracle_config() -> BayesCrowdConfig {
    BayesCrowdConfig {
        budget: 10_000,
        latency: 1_000,
        alpha: 1.0, // exactness requires no pruning
        ..Default::default()
    }
}

/// What [`session_invariants`] covered.
#[derive(Clone, Copy, Debug)]
pub struct SessionTrace {
    /// Crowdsourcing rounds executed.
    pub rounds: usize,
    /// Per-object probability values compared against the oracle.
    pub prob_checks: usize,
}

/// Compares every probability the session currently reports against an
/// exhaustive possible-worlds evaluation of its *current* c-table under
/// its *current* posterior. `n` is the number of objects.
fn check_session_against_worlds(
    session: &mut Session,
    inst: &Instance,
    eps: f64,
    round: usize,
) -> Result<usize, String> {
    let probs = session
        .object_probabilities()
        .map_err(|e| format!("{}: round {round}: probabilities failed: {e}", inst.name))?;
    let pmfs: BTreeMap<VarId, Pmf> = session
        .dists()
        .iter()
        .map(|(v, p)| (*v, p.clone()))
        .collect();
    let n = inst.data.n_objects();
    let mut freq = vec![0.0; n];
    let ctable = session.ctable();
    PossibleWorlds::new()
        .for_each_world(&inst.data, &pmfs, |world, weight| {
            let lookup = |v: VarId| world.get(v.object, v.attr).expect("world is complete");
            for (i, h) in ctable.eval_world(lookup).into_iter().enumerate() {
                if h {
                    freq[i] += weight;
                }
            }
            Ok(())
        })
        .map_err(|e| {
            format!(
                "{}: round {round}: world enumeration failed: {e}",
                inst.name
            )
        })?;
    for (o, p) in &probs {
        if !prob_close(*p, freq[o.index()], eps) {
            return Err(format!(
                "{}: round {round}: session says Pr({o}) = {p}, possible worlds say {}",
                inst.name,
                freq[o.index()]
            ));
        }
    }
    Ok(n)
}

/// Drives a full crowdsourced run over `inst` (perfect workers answering
/// from a pmf-sampled ground truth) and checks, after every round:
/// open expression count never increases, decided conditions never revert,
/// and the session's per-object probabilities match the possible-worlds
/// oracle on its current state.
pub fn session_invariants(inst: &Instance, seed: u64, eps: f64) -> Result<SessionTrace, String> {
    let truth = GroundTruthOracle::new(sample_ground_truth(inst, seed));
    let mut platform = SimulatedPlatform::new(truth, 1.0, seed);
    let mut session = BayesCrowd::new(oracle_config())
        .session(&inst.data, &mut platform)
        .map_err(|e| format!("{}: session start failed: {e}", inst.name))?;

    let mut prev_open = usize::MAX;
    let mut decided_true = BTreeSet::new();
    let mut decided_false = BTreeSet::new();
    let mut trace = SessionTrace {
        rounds: 0,
        prob_checks: 0,
    };
    loop {
        let round = session.round();
        let open = session.open_exprs();
        if open > prev_open {
            return Err(format!(
                "{}: round {round}: open expressions grew from {prev_open} to {open}",
                inst.name
            ));
        }
        prev_open = open;
        for (o, cond) in session.ctable().iter() {
            let reverted = match cond {
                Condition::True => {
                    decided_true.insert(o);
                    decided_false.contains(&o)
                }
                Condition::False => {
                    decided_false.insert(o);
                    decided_true.contains(&o)
                }
                Condition::Cnf(_) => decided_true.contains(&o) || decided_false.contains(&o),
            };
            if reverted {
                return Err(format!(
                    "{}: round {round}: object {o} reverted to {cond:?} after being decided",
                    inst.name
                ));
            }
        }
        trace.prob_checks += check_session_against_worlds(&mut session, inst, eps, round)?;

        let more = session
            .step()
            .map_err(|e| format!("{}: round {round}: step failed: {e}", inst.name))?;
        trace.rounds += 1;
        if !more {
            break;
        }
    }
    check_session_against_worlds(&mut session, inst, eps, usize::MAX)?;
    Ok(trace)
}

fn probs_of(
    session: &mut Session,
    inst: &Instance,
    what: &str,
) -> Result<BTreeMap<ObjectId, f64>, String> {
    session
        .object_probabilities()
        .map_err(|e| format!("{}: {what}: probabilities failed: {e}", inst.name))
}

fn same_probs(
    a: &BTreeMap<ObjectId, f64>,
    b: &BTreeMap<ObjectId, f64>,
    eps: f64,
    inst: &Instance,
    what: &str,
) -> Result<(), String> {
    for (o, pa) in a {
        let pb = b[o];
        if !prob_close(*pa, pb, eps) {
            return Err(format!(
                "{}: {what}: Pr({o}) diverged: {pa} (uninterrupted) vs {pb} (resumed)",
                inst.name
            ));
        }
    }
    Ok(())
}

/// Runs `inst` to completion once uninterrupted, once checkpointed at
/// round `resume_at` and resumed in a fresh session (and platform), and
/// checks that every per-object probability — at the resume point and at
/// the end — is identical, along with the reported answer set.
pub fn resume_preserves_probabilities(
    inst: &Instance,
    resume_at: usize,
    seed: u64,
    eps: f64,
) -> Result<(), String> {
    let complete = sample_ground_truth(inst, seed);
    let framework = BayesCrowd::new(oracle_config());

    let mut platform_a =
        SimulatedPlatform::new(GroundTruthOracle::new(complete.clone()), 1.0, seed);
    let mut session = framework
        .session(&inst.data, &mut platform_a)
        .map_err(|e| format!("{}: session start failed: {e}", inst.name))?;
    for _ in 0..resume_at {
        if session.is_finished() {
            break;
        }
        session
            .step()
            .map_err(|e| format!("{}: step failed: {e}", inst.name))?;
    }
    let mut checkpoint = Vec::new();
    session
        .checkpoint(&mut checkpoint)
        .map_err(|e| format!("{}: checkpoint failed: {e}", inst.name))?;
    let probs_at_k = probs_of(&mut session, inst, "at checkpoint")?;
    while session
        .step()
        .map_err(|e| format!("{}: step failed: {e}", inst.name))?
    {}
    let final_a = probs_of(&mut session, inst, "uninterrupted end")?;
    let report_a = session
        .finalize()
        .map_err(|e| format!("{}: finalize failed: {e}", inst.name))?;

    let mut platform_b = SimulatedPlatform::new(GroundTruthOracle::new(complete), 1.0, seed);
    let mut resumed = Session::resume(checkpoint.as_slice(), &mut platform_b)
        .map_err(|e| format!("{}: resume failed: {e}", inst.name))?;
    let probs_resumed = probs_of(&mut resumed, inst, "after resume")?;
    same_probs(&probs_at_k, &probs_resumed, eps, inst, "resume point")?;
    while resumed
        .step()
        .map_err(|e| format!("{}: resumed step failed: {e}", inst.name))?
    {}
    let final_b = probs_of(&mut resumed, inst, "resumed end")?;
    same_probs(&final_a, &final_b, eps, inst, "final state")?;
    let report_b = resumed
        .finalize()
        .map_err(|e| format!("{}: resumed finalize failed: {e}", inst.name))?;
    if report_a.result != report_b.result {
        return Err(format!(
            "{}: answer sets diverge after resume: {:?} vs {:?}",
            inst.name, report_a.result, report_b.result
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_instance, GenConfig};

    #[test]
    fn conditioning_decomposes_on_random_instances() {
        for seed in [2u64, 5, 8, 13] {
            let inst = random_instance(seed, &GenConfig::default());
            conditioning_decomposes(&inst, 1e-9).unwrap();
        }
    }

    #[test]
    fn reflection_invariance_on_random_instances() {
        let cfg = DiffConfig::default();
        for seed in [1u64, 4, 9] {
            let inst = random_instance(seed, &GenConfig::default());
            let d = inst.data.n_attrs();
            // Alternate directions so at least one attribute is minimized.
            let dirs: Vec<Direction> = (0..d)
                .map(|i| {
                    if i % 2 == 0 {
                        Direction::Minimize
                    } else {
                        Direction::Maximize
                    }
                })
                .collect();
            reflection_preserves_skyline(&inst, &dirs, &cfg).unwrap();
        }
    }

    #[test]
    fn sessions_stay_consistent_with_the_oracle() {
        for seed in [3u64, 7] {
            let inst = random_instance(seed, &GenConfig::default());
            let trace = session_invariants(&inst, seed, 1e-9).unwrap();
            assert!(trace.rounds >= 1);
            assert!(trace.prob_checks >= inst.data.n_objects());
        }
    }

    #[test]
    fn resume_is_transparent_to_probabilities() {
        let inst = random_instance(6, &GenConfig::default());
        resume_preserves_probabilities(&inst, 1, 6, 1e-12).unwrap();
    }
}
