#![warn(missing_docs)]
//! Differential correctness oracle for BayesCrowd.
//!
//! The system's answer quality rests on one claim: ADPLL model counting
//! over c-table conditions equals the true skyline-membership probability
//! under the learned per-cell distributions (the paper's Theorems). This
//! crate checks that claim end to end, on instances small enough to verify
//! exhaustively:
//!
//! * [`worlds`] — the **possible-worlds oracle**: enumerates every
//!   completion of a small incomplete dataset, weights each world by the
//!   per-cell pmfs ([`bc_bayes::joint`]), and computes exact per-object
//!   skyline and condition probabilities *without* touching the solver
//!   pipeline,
//! * [`gen`] — deterministic random instance generation (seed in,
//!   instance out),
//! * [`diff`] — the **differential harness**: runs one instance through
//!   ADPLL, naive enumeration, weighted ApproxCount, and Monte Carlo, and
//!   reports the first divergence from the oracle with a greedily minimized
//!   instance,
//! * [`replay`] — serializes instances and divergences as checksummed
//!   [`bc_snapshot`] documents, so a fuzz failure replays bit-identically
//!   on another machine, and manages the committed seed corpus,
//! * [`corpus`] — the handcrafted regression instances folded in from the
//!   recorded `*.proptest-regressions` cases, plus the generator seeds of
//!   the committed random corpus,
//! * [`metamorphic`] — run-level invariants: constraint propagation
//!   preserves model counts, preference-direction reflection preserves
//!   skyline probabilities, certain answers grow monotonically, and
//!   checkpoint/resume preserves oracle-checked probabilities at any round.
//!
//! The `oracle-fuzz` binary wires it all into CI: it replays the committed
//! corpus, then a fixed-seed stream of fresh instances, and on the first
//! divergence writes a minimized `.bcsnap` repro artifact and exits
//! nonzero.

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod metamorphic;
pub mod replay;
pub mod worlds;

pub use corpus::{regression_instances, GENERATED_SEEDS};
pub use diff::{check_instance, minimize_divergence, DiffConfig, Divergence, InstanceSummary};
pub use gen::{random_instance, GenConfig, Instance};
pub use replay::{load_corpus, load_instance, save_divergence, save_instance};
pub use worlds::{OracleError, PossibleWorlds, WorldReport};

/// Whether two probabilities agree within `eps` — the one comparison rule
/// shared by the test suite and the differential harness, replacing the
/// ad-hoc `(a - b).abs() < ...` scattered through the tests. NaN never
/// agrees with anything (an `abs() < eps` comparison would silently pass a
/// NaN pair through a `!(..)`-style rewrite; this helper pins the
/// semantics).
pub fn prob_close(a: f64, b: f64, eps: f64) -> bool {
    a.is_finite() && b.is_finite() && (a - b).abs() <= eps
}

/// Panics unless `prob_close(a, b, eps)`, with a message carrying both
/// values, their difference, and the tolerance. Extra format arguments are
/// appended as context:
///
/// ```should_panic
/// bc_oracle::assert_prob_close!(0.5, 0.25, 1e-9, "object {}", 3);
/// ```
#[macro_export]
macro_rules! assert_prob_close {
    ($a:expr, $b:expr, $eps:expr) => {
        $crate::assert_prob_close!($a, $b, $eps, "probabilities differ")
    };
    ($a:expr, $b:expr, $eps:expr, $($ctx:tt)+) => {{
        let (a, b, eps): (f64, f64, f64) = ($a, $b, $eps);
        assert!(
            $crate::prob_close(a, b, eps),
            "{}: {} vs {} (|Δ| = {:e} > eps {:e})",
            format_args!($($ctx)+),
            a,
            b,
            (a - b).abs(),
            eps,
        );
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prob_close_semantics() {
        assert!(crate::prob_close(0.5, 0.5 + 1e-12, 1e-9));
        assert!(!crate::prob_close(0.5, 0.6, 1e-9));
        assert!(!crate::prob_close(f64::NAN, f64::NAN, 1.0));
        assert!(!crate::prob_close(0.0, f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn assert_macro_passes_and_formats() {
        assert_prob_close!(0.25, 0.25, 0.0);
        assert_prob_close!(0.25, 0.2500001, 1e-3, "object {}", 7);
        let err = std::panic::catch_unwind(|| assert_prob_close!(0.1, 0.9, 1e-9)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("0.1 vs 0.9"), "{msg}");
    }
}
