//! Deterministic differential fuzz driver — the CI entry point.
//!
//! ```text
//! oracle-fuzz [--corpus DIR] [--seed N] [--cases N] [--artifact PATH]
//!             [--metamorphic-every N] [--write-seed SEED [SEED ...]]
//! ```
//!
//! Replays every committed corpus instance, then `--cases` fresh random
//! instances from the deterministic seed stream `seed, seed+1, ...`,
//! through the differential harness (every solver vs the possible-worlds
//! oracle). Every `--metamorphic-every`-th instance additionally runs the
//! run-level metamorphic suite. On the first divergence the driver
//! greedily minimizes the failing instance, writes it (with the divergence
//! record) to `--artifact`, prints the replay instructions, and exits 1 —
//! CI uploads the artifact, and `--corpus` gains a regression seed.
//!
//! `--write-seed` regenerates corpus entries from explicit generator
//! seeds: used once to create the committed corpus, and again whenever the
//! generator or format changes.

use bc_oracle::{
    check_instance, load_corpus, metamorphic, minimize_divergence, random_instance,
    regression_instances, save_divergence, save_instance, DiffConfig, Divergence, GenConfig,
    Instance,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    corpus: PathBuf,
    seed: u64,
    cases: u64,
    artifact: PathBuf,
    metamorphic_every: u64,
    write_seeds: Vec<u64>,
    write_regressions: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            corpus: PathBuf::from("crates/bc-oracle/corpus"),
            seed: 0xbc0de,
            cases: 200,
            artifact: PathBuf::from("target/oracle-divergence.bcsnap"),
            metamorphic_every: 20,
            write_seeds: Vec::new(),
            write_regressions: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")?),
            "--artifact" => args.artifact = PathBuf::from(value("--artifact")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--metamorphic-every" => {
                args.metamorphic_every = value("--metamorphic-every")?
                    .parse()
                    .map_err(|e| format!("--metamorphic-every: {e}"))?
            }
            "--write-seed" => {
                let s: u64 = value("--write-seed")?
                    .parse()
                    .map_err(|e| format!("--write-seed: {e}"))?;
                args.write_seeds.push(s);
            }
            "--write-regressions" => args.write_regressions = true,
            "--help" | "-h" => {
                println!(
                    "oracle-fuzz [--corpus DIR] [--seed N] [--cases N] [--artifact PATH] \
                     [--metamorphic-every N] [--write-seed SEED]... [--write-regressions]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Runs one instance through the differential harness and (when `deep`)
/// the metamorphic suite. Returns the first divergence.
fn fuzz_one(inst: &Instance, cfg: &DiffConfig, deep: bool) -> Result<(), Box<Divergence>> {
    check_instance(inst, cfg)?;
    if deep {
        // Metamorphic failures have no solver/object coordinates; wrap
        // them as a pseudo-divergence so the one artifact path covers both.
        let wrap = |detail: String| {
            Box::new(Divergence {
                instance: inst.clone(),
                solver: "metamorphic".into(),
                object: bc_data::ObjectId(0),
                got: f64::NAN,
                want: f64::NAN,
                tolerance: 0.0,
                detail,
            })
        };
        metamorphic::conditioning_decomposes(inst, cfg.eps).map_err(&wrap)?;
        if inst.data.n_attrs() >= 2 {
            let dirs: Vec<bc_data::Direction> = (0..inst.data.n_attrs())
                .map(|i| {
                    if i % 2 == 1 {
                        bc_data::Direction::Minimize
                    } else {
                        bc_data::Direction::Maximize
                    }
                })
                .collect();
            metamorphic::reflection_preserves_skyline(inst, &dirs, cfg).map_err(&wrap)?;
        }
        metamorphic::session_invariants(inst, inst.seed ^ 0xfeed, cfg.eps).map_err(&wrap)?;
    }
    Ok(())
}

fn report_failure(args: &Args, cfg: &DiffConfig, div: Box<Divergence>) -> ExitCode {
    eprintln!("DIVERGENCE: {div}");
    eprintln!("minimizing...");
    let minimized = minimize_divergence(div, cfg);
    eprintln!("minimized: {minimized}");
    if let Some(dir) = args.artifact.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create artifact directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    match std::fs::File::create(&args.artifact)
        .map_err(bc_snapshot::SnapshotError::Io)
        .and_then(|f| save_divergence(&minimized, f))
    {
        Ok(()) => {
            eprintln!(
                "repro artifact written to {} — replay by copying it into {} and re-running",
                args.artifact.display(),
                args.corpus.display()
            );
        }
        Err(e) => eprintln!("could not write repro artifact: {e}"),
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("oracle-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = DiffConfig::default();
    let gen_cfg = GenConfig::default();

    if !args.write_seeds.is_empty() || args.write_regressions {
        if let Err(e) = std::fs::create_dir_all(&args.corpus) {
            eprintln!("cannot create corpus directory: {e}");
            return ExitCode::FAILURE;
        }
        let mut to_write: Vec<(String, Instance)> = args
            .write_seeds
            .iter()
            .map(|&seed| {
                let inst = random_instance(seed, &gen_cfg);
                (format!("gen-{seed:08}.bcsnap"), inst)
            })
            .collect();
        if args.write_regressions {
            to_write.extend(
                regression_instances()
                    .into_iter()
                    .map(|inst| (format!("{}.bcsnap", inst.name), inst)),
            );
        }
        for (file, inst) in to_write {
            let path = args.corpus.join(file);
            let write = std::fs::File::create(&path)
                .map_err(bc_snapshot::SnapshotError::Io)
                .and_then(|f| save_instance(&inst, f));
            match write {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let corpus = match load_corpus(&args.corpus) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "oracle-fuzz: {} corpus instances + {} fresh (seed {:#x})",
        corpus.len(),
        args.cases,
        args.seed
    );

    for (path, inst) in &corpus {
        // Corpus entries are regressions or handcrafted edge cases: always
        // run the full metamorphic suite on them.
        if let Err(div) = fuzz_one(inst, &cfg, true) {
            eprintln!("corpus instance {} diverged", path.display());
            return report_failure(&args, &cfg, div);
        }
    }

    let mut checked = corpus.len() as u64;
    for i in 0..args.cases {
        let inst = random_instance(args.seed.wrapping_add(i), &gen_cfg);
        let deep = args.metamorphic_every > 0 && i % args.metamorphic_every == 0;
        if let Err(div) = fuzz_one(&inst, &cfg, deep) {
            return report_failure(&args, &cfg, div);
        }
        checked += 1;
        if (i + 1) % 50 == 0 {
            println!("  {}/{} fresh instances ok", i + 1, args.cases);
        }
    }
    println!("oracle-fuzz: {checked} instances, no divergence");
    ExitCode::SUCCESS
}
