//! Instance and divergence serialization — the fuzz corpus format.
//!
//! Instances are stored as [`bc_snapshot`] documents (checksummed,
//! versioned JSON-lines), fingerprint `bc-oracle/instance@1`, with
//! sections:
//!
//! * `meta` — `{name, seed}`,
//! * `dataset` — per-attribute domain cardinalities plus rows (missing
//!   cells as `null`),
//! * `pmfs` — one `{object, attr, probs}` record per missing cell,
//! * `divergence` (optional, written by [`save_divergence`]) — which
//!   solver diverged on which object, with the numbers involved.
//!
//! A file replays bit-identically on any machine: floats round-trip in
//! shortest form and the document layer checksums the bytes, so a corpus
//! entry either reproduces the original instance exactly or fails loudly.
//! [`load_corpus`] reads every `*.bcsnap` in a directory in name order —
//! the committed seed corpus and the CI artifact path both go through it.

use crate::diff::Divergence;
use crate::gen::Instance;
use bc_bayes::Pmf;
use bc_data::{Dataset, Domain, Value as CellValue, VarId};
use bc_snapshot::{Snapshot, SnapshotError, SnapshotWriter, Value};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Corpus document fingerprint (bump on breaking format change).
pub const INSTANCE_FINGERPRINT: &str = "bc-oracle/instance@1";

fn encode_instance(inst: &Instance) -> Vec<(&'static str, Value)> {
    let cards: Vec<Value> = inst
        .data
        .domains()
        .iter()
        .map(|d| Value::Int(d.cardinality() as i128))
        .collect();
    let rows: Vec<Value> = inst
        .data
        .objects()
        .map(|o| {
            Value::List(
                inst.data
                    .row(o)
                    .iter()
                    .map(|c| match c {
                        Some(v) => Value::Int(*v as i128),
                        None => Value::Null,
                    })
                    .collect(),
            )
        })
        .collect();
    let pmfs: Vec<Value> = inst
        .pmfs
        .iter()
        .map(|(v, pmf)| {
            Value::obj(vec![
                ("object", Value::Int(v.object.0 as i128)),
                ("attr", Value::Int(v.attr.0 as i128)),
                (
                    "probs",
                    Value::List(pmf.probs().iter().map(|&p| Value::Float(p)).collect()),
                ),
            ])
        })
        .collect();
    vec![
        (
            "meta",
            Value::obj(vec![
                ("name", Value::Str(inst.name.clone())),
                ("seed", Value::Int(inst.seed as i128)),
            ]),
        ),
        (
            "dataset",
            Value::obj(vec![
                ("cards", Value::List(cards)),
                ("rows", Value::List(rows)),
            ]),
        ),
        ("pmfs", Value::List(pmfs)),
    ]
}

/// Writes `inst` as a corpus document.
pub fn save_instance(inst: &Instance, out: impl Write) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, INSTANCE_FINGERPRINT)?;
    for (name, value) in encode_instance(inst) {
        w.section(name, value)?;
    }
    w.finish()?;
    Ok(())
}

/// Writes a divergence as a corpus document: the (minimized) instance plus
/// a `divergence` section describing what failed — the CI repro artifact.
pub fn save_divergence(div: &Divergence, out: impl Write) -> Result<(), SnapshotError> {
    let mut w = SnapshotWriter::new(out, INSTANCE_FINGERPRINT)?;
    for (name, value) in encode_instance(&div.instance) {
        w.section(name, value)?;
    }
    w.section(
        "divergence",
        Value::obj(vec![
            ("solver", Value::Str(div.solver.clone())),
            ("object", Value::Int(div.object.0 as i128)),
            ("got", Value::Float(div.got)),
            ("want", Value::Float(div.want)),
            ("tolerance", Value::Float(div.tolerance)),
            ("detail", Value::Str(div.detail.clone())),
        ]),
    )?;
    w.finish()?;
    Ok(())
}

fn invalid(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid(msg.into())
}

/// Reads an instance document back (a `divergence` section, if present, is
/// ignored — the instance alone is what replays).
pub fn load_instance(input: impl Read) -> Result<Instance, SnapshotError> {
    let snap = Snapshot::parse(input)?;
    if snap.fingerprint() != INSTANCE_FINGERPRINT {
        return Err(invalid(format!(
            "fingerprint {:?} is not {INSTANCE_FINGERPRINT:?}",
            snap.fingerprint()
        )));
    }

    let meta = snap.section("meta")?;
    let name = meta
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| invalid("meta.name missing"))?
        .to_string();
    let seed = meta
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or_else(|| invalid("meta.seed missing"))?;

    let dataset = snap.section("dataset")?;
    let cards = dataset
        .get("cards")
        .and_then(Value::as_list)
        .ok_or_else(|| invalid("dataset.cards missing"))?;
    let domains: Vec<Domain> = cards
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let card = c
                .as_u16()
                .ok_or_else(|| invalid(format!("dataset.cards[{i}] not a u16")))?;
            Domain::new(format!("a{i}"), card).map_err(|e| invalid(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let rows = dataset
        .get("rows")
        .and_then(Value::as_list)
        .ok_or_else(|| invalid("dataset.rows missing"))?
        .iter()
        .map(|row| {
            row.as_list()
                .ok_or_else(|| invalid("dataset row not a list"))?
                .iter()
                .map(|c| match c {
                    Value::Null => Ok(None),
                    other => other
                        .as_u16()
                        .map(Some)
                        .ok_or_else(|| invalid("cell not a u16 or null")),
                })
                .collect::<Result<Vec<Option<CellValue>>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let data =
        Dataset::from_rows(name.clone(), domains, rows).map_err(|e| invalid(e.to_string()))?;

    let mut pmfs = BTreeMap::new();
    for (i, rec) in snap
        .section("pmfs")?
        .as_list()
        .ok_or_else(|| invalid("pmfs not a list"))?
        .iter()
        .enumerate()
    {
        let object = rec
            .get("object")
            .and_then(Value::as_u64)
            .ok_or_else(|| invalid(format!("pmfs[{i}].object missing")))?;
        let attr = rec
            .get("attr")
            .and_then(Value::as_u16)
            .ok_or_else(|| invalid(format!("pmfs[{i}].attr missing")))?;
        let probs: Vec<f64> = rec
            .get("probs")
            .and_then(Value::as_list)
            .ok_or_else(|| invalid(format!("pmfs[{i}].probs missing")))?
            .iter()
            .map(|p| {
                p.as_f64()
                    .ok_or_else(|| invalid(format!("pmfs[{i}] prob not a float")))
            })
            .collect::<Result<_, _>>()?;
        pmfs.insert(VarId::new(object as u32, attr), Pmf::from_probs(probs));
    }

    let missing = data.missing_vars();
    let keys: Vec<VarId> = pmfs.keys().copied().collect();
    if keys != missing {
        return Err(invalid(format!(
            "pmf keys {keys:?} do not match missing cells {missing:?}"
        )));
    }
    for (v, pmf) in &pmfs {
        let card = data.domain(v.attr).cardinality() as usize;
        if pmf.card() != card {
            return Err(invalid(format!(
                "pmf of {v} has {} entries, domain has {card}",
                pmf.card()
            )));
        }
    }

    Ok(Instance {
        name,
        seed,
        data,
        pmfs,
    })
}

/// Loads every `*.bcsnap` under `dir`, in file-name order. A missing
/// directory is an empty corpus; an unreadable or malformed file is an
/// error (a corrupt corpus entry must fail the run, not silently shrink
/// coverage).
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, Instance)>, SnapshotError> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .collect::<Result<Vec<_>, _>>()
            .map_err(SnapshotError::Io)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "bcsnap"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let file = std::fs::File::open(&p).map_err(SnapshotError::Io)?;
            let inst = load_instance(std::io::BufReader::new(file))
                .map_err(|e| invalid(format!("{}: {e}", p.display())))?;
            Ok((p, inst))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_instance, GenConfig};
    use bc_data::ObjectId;

    fn roundtrip(inst: &Instance) -> Instance {
        let mut buf = Vec::new();
        save_instance(inst, &mut buf).unwrap();
        load_instance(buf.as_slice()).unwrap()
    }

    #[test]
    fn instances_roundtrip_exactly() {
        for seed in [0, 7, 99, 1234] {
            let inst = random_instance(seed, &GenConfig::default());
            let back = roundtrip(&inst);
            assert_eq!(back.name, inst.name);
            assert_eq!(back.seed, inst.seed);
            assert_eq!(back.data.complete_rows(), inst.data.complete_rows());
            assert_eq!(back.data.missing_vars(), inst.data.missing_vars());
            for (v, pmf) in &inst.pmfs {
                // Bit-exact float round-trip, not approximate.
                assert_eq!(back.pmfs[v].probs(), pmf.probs());
            }
        }
    }

    #[test]
    fn divergence_docs_replay_as_instances() {
        let inst = random_instance(5, &GenConfig::default());
        let div = Divergence {
            instance: inst.clone(),
            solver: "adpll".into(),
            object: ObjectId(1),
            got: 0.25,
            want: 0.75,
            tolerance: 1e-9,
            detail: "test".into(),
        };
        let mut buf = Vec::new();
        save_divergence(&div, &mut buf).unwrap();
        let back = load_instance(buf.as_slice()).unwrap();
        assert_eq!(back.data.complete_rows(), inst.data.complete_rows());
    }

    #[test]
    fn mismatched_pmfs_are_rejected() {
        let mut inst = random_instance(11, &GenConfig::default());
        // Drop one pmf so keys no longer match missing cells (skip the
        // instance if it happens to have none).
        if let Some(v) = inst.data.missing_vars().first().copied() {
            inst.pmfs.remove(&v);
            let mut buf = Vec::new();
            save_instance(&inst, &mut buf).unwrap();
            let err = load_instance(buf.as_slice()).unwrap_err();
            assert!(matches!(err, SnapshotError::Invalid(_)), "{err}");
        }
    }

    #[test]
    fn corpus_loading_is_ordered_and_total() {
        let dir = std::env::temp_dir().join("bc-oracle-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seed in [3u64, 1, 2] {
            let inst = random_instance(seed, &GenConfig::default());
            let file = std::fs::File::create(dir.join(format!("seed-{seed}.bcsnap"))).unwrap();
            save_instance(&inst, file).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let corpus = load_corpus(&dir).unwrap();
        assert_eq!(corpus.len(), 3);
        let seeds: Vec<u64> = corpus.iter().map(|(_, i)| i.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        assert!(load_corpus(&dir.join("does-not-exist")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
