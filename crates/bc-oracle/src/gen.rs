//! Deterministic random instance generation.
//!
//! One `u64` seed fully determines an instance — dataset shape, observed
//! values, which cells are missing, and the per-cell pmfs — so a failing
//! fuzz case is reproducible from its seed alone, and the committed seed
//! corpus ([`crate::replay`]) stays byte-stable across machines.
//!
//! The default shape matches the acceptance envelope of the differential
//! harness: ≤ 8 objects, ≤ 3 attributes, domain cardinality ≤ 4, and ≤ 3
//! missing cells, so a full possible-worlds enumeration never exceeds
//! `4^3 = 64` worlds.

use bc_bayes::Pmf;
use bc_data::domain::uniform_domains;
use bc_data::{AttrId, Dataset, ObjectId, Value, VarId};
use bc_solver::VarDists;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Shape envelope for generated instances.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Fewest objects to generate.
    pub min_objects: usize,
    /// Most objects to generate.
    pub max_objects: usize,
    /// Most attributes to generate (at least 1).
    pub max_attrs: usize,
    /// Largest domain cardinality (at least 2).
    pub max_card: u16,
    /// Most missing cells.
    pub max_missing: usize,
    /// Probability that a missing cell gets a skewed (non-uniform) pmf.
    pub skew_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_objects: 2,
            max_objects: 8,
            max_attrs: 3,
            max_card: 4,
            max_missing: 3,
            skew_prob: 0.5,
        }
    }
}

/// One self-contained fuzz instance: an incomplete dataset plus the pmf of
/// every missing cell.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Display/corpus name (`gen-<seed>` for generated instances).
    pub name: String,
    /// The seed that produced it (0 for handcrafted instances).
    pub seed: u64,
    /// The incomplete dataset.
    pub data: Dataset,
    /// Distribution of each missing cell. Keys are exactly
    /// `data.missing_vars()`.
    pub pmfs: BTreeMap<VarId, Pmf>,
}

impl Instance {
    /// The pmfs in the form the solvers take.
    pub fn dists(&self) -> VarDists {
        VarDists::new(self.pmfs.clone())
    }

    /// Number of possible worlds (product of pmf cardinalities).
    pub fn n_worlds(&self) -> u128 {
        self.pmfs.values().map(|p| p.card() as u128).product()
    }
}

/// Generates the instance determined by `seed` within `cfg`'s envelope.
pub fn random_instance(seed: u64, cfg: &GenConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(cfg.min_objects..=cfg.max_objects.max(cfg.min_objects));
    let d = rng.gen_range(1..=cfg.max_attrs.max(1));
    let card = rng.gen_range(2..=cfg.max_card.max(2));

    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0..card)).collect())
        .collect();
    let domains = uniform_domains(d, card).expect("valid domain shape");
    let mut data = Dataset::from_complete_rows(format!("gen-{seed}"), domains, rows)
        .expect("generated rows are in-domain");

    let mut cells: Vec<(u32, u16)> = (0..n as u32)
        .flat_map(|o| (0..d as u16).map(move |a| (o, a)))
        .collect();
    cells.shuffle(&mut rng);
    let n_missing = rng.gen_range(0..=cfg.max_missing.min(cells.len()));
    let mut pmfs = BTreeMap::new();
    for &(o, a) in cells.iter().take(n_missing) {
        data.set(ObjectId(o), AttrId(a), None)
            .expect("blanking an in-range cell");
        let pmf = if rng.gen_bool(cfg.skew_prob) {
            let weights: Vec<f64> = (0..card).map(|_| rng.gen_range(0.05..1.0)).collect();
            Pmf::from_weights(weights)
        } else {
            Pmf::uniform(card as usize)
        };
        pmfs.insert(VarId::new(o, a), pmf);
    }

    Instance {
        name: format!("gen-{seed}"),
        seed,
        data,
        pmfs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = random_instance(42, &cfg);
        let b = random_instance(42, &cfg);
        assert_eq!(a.data.complete_rows(), b.data.complete_rows());
        assert_eq!(a.data.missing_vars(), b.data.missing_vars());
        for (v, p) in &a.pmfs {
            assert_eq!(p.probs(), b.pmfs[v].probs());
        }
        let c = random_instance(43, &cfg);
        assert!(
            a.data.complete_rows() != c.data.complete_rows()
                || a.data.missing_vars() != c.data.missing_vars()
        );
    }

    #[test]
    fn instances_respect_the_envelope() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let inst = random_instance(seed, &cfg);
            assert!(inst.data.n_objects() >= cfg.min_objects);
            assert!(inst.data.n_objects() <= cfg.max_objects);
            assert!(inst.data.n_attrs() >= 1 && inst.data.n_attrs() <= cfg.max_attrs);
            assert!(inst.data.n_missing() <= cfg.max_missing);
            assert_eq!(
                inst.data.missing_vars(),
                inst.pmfs.keys().copied().collect::<Vec<_>>()
            );
            assert!(inst.n_worlds() <= (cfg.max_card as u128).pow(cfg.max_missing as u32));
            for pmf in inst.pmfs.values() {
                let total: f64 = pmf.probs().iter().sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
    }
}
