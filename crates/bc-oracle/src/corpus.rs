//! Handcrafted seed-corpus instances.
//!
//! Two families live here:
//!
//! * **Regression-derived** instances, folded in from the shrunk cases the
//!   proptest suites recorded in `tests/*.proptest-regressions`. The
//!   vendored proptest stand-in does not replay those files, so the shapes
//!   they pinned are preserved twice: as explicit unit tests next to the
//!   original suites, and as corpus documents the fuzz driver replays with
//!   the full metamorphic suite on every CI run.
//! * The constructors themselves, exposed so the committed `corpus/*.bcsnap`
//!   files can be verified against them — a drifted or corrupted corpus
//!   entry fails the crate's tests, not just silently weakens the fuzzer.
//!
//! Regenerate the files with
//! `cargo run -p bc-oracle --bin oracle-fuzz -- --write-regressions`.

use crate::gen::Instance;
use bc_bayes::Pmf;
use bc_data::domain::uniform_domains;
use bc_data::{Dataset, VarId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The shrunk case from `tests/solver_equivalence.proptest-regressions`:
/// five single-attribute objects, *every* cell missing, one skewed pmf.
/// The recorded condition `(Var(o1, a0) < 4)` compares against the domain
/// cardinality itself — a constant at the boundary, where `pr_lt` must
/// saturate at exactly 1.0. An all-missing single-attribute dataset makes
/// every object's skyline condition range over the same five-variable pool
/// the original property test drew from.
pub fn reg_boundary_const() -> Instance {
    let domains = uniform_domains(1, 4).expect("valid shape");
    let rows = vec![vec![None]; 5];
    let data = Dataset::from_rows("reg-boundary-const", domains, rows).expect("valid rows");
    let mut pmfs = BTreeMap::new();
    for o in 0..5u32 {
        let pmf = if o == 1 {
            // The exact probabilities proptest shrank to.
            Pmf::from_probs(vec![
                0.5093092101391585,
                0.00743283030467129,
                0.3598544550106761,
                0.12340350454549417,
            ])
        } else {
            Pmf::uniform(4)
        };
        pmfs.insert(VarId::new(o, 0), pmf);
    }
    Instance {
        name: "reg-boundary-const".into(),
        seed: 0,
        data,
        pmfs,
    }
}

/// Tie-free dataset whose columns are permutations — the same generator
/// `tests/end_to_end.rs` uses, reproduced here so the corpus entry is
/// byte-identical to the shape the recorded regression ran on.
fn permutation_dataset(n: usize, d: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<u16>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut col: Vec<u16> = (0..n as u16).collect();
        col.shuffle(&mut rng);
        cols.push(col);
    }
    let rows: Vec<Vec<u16>> = (0..n)
        .map(|i| (0..d).map(|j| cols[j][i]).collect())
        .collect();
    Dataset::from_complete_rows("perm", uniform_domains(d, n as u16).unwrap(), rows).unwrap()
}

/// The shrunk case from `tests/end_to_end.proptest-regressions`
/// (`n = 10, seed = 1709`, the `crowdsky_is_exact_with_perfect_workers`
/// property), cut down to oracle size: the first five objects of the same
/// permutation dataset, two cells blanked with uniform priors over the
/// full 10-value domain. 100 possible worlds — exhaustively checkable
/// while keeping the permutation structure and wide domain of the
/// original failure.
pub fn reg_crowdsky_1709() -> Instance {
    let mut data = permutation_dataset(10, 4, 1709).truncated(5);
    let mut pmfs = BTreeMap::new();
    for (o, a) in [(0u32, 1u16), (3, 0)] {
        data.set(bc_data::ObjectId(o), bc_data::AttrId(a), None)
            .expect("cell in range");
        pmfs.insert(VarId::new(o, a), Pmf::uniform(10));
    }
    Instance {
        name: "reg-crowdsky-1709".into(),
        seed: 1709,
        data,
        pmfs,
    }
}

/// Every handcrafted regression instance, in corpus file-name order.
pub fn regression_instances() -> Vec<Instance> {
    vec![reg_boundary_const(), reg_crowdsky_1709()]
}

/// Generator seeds for the committed random part of the corpus — shapes
/// that exercised interesting paths (multiple missing cells on one object,
/// single-attribute data, zero missing cells).
pub const GENERATED_SEEDS: [u64; 6] = [3, 12, 17, 42, 99, 2024];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{check_instance, DiffConfig};
    use crate::gen::{random_instance, GenConfig};
    use crate::replay::load_corpus;
    use std::path::Path;

    #[test]
    fn regression_instances_pass_the_harness() {
        let cfg = DiffConfig::default();
        for inst in regression_instances() {
            check_instance(&inst, &cfg).unwrap_or_else(|d| panic!("{d}"));
        }
    }

    /// The committed corpus files decode to exactly the instances the
    /// constructors (and generator seeds) describe — no silent drift.
    #[test]
    fn committed_corpus_matches_the_constructors() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
        let corpus = load_corpus(&dir).unwrap();
        let mut expected: Vec<Instance> = regression_instances();
        expected.extend(
            GENERATED_SEEDS
                .iter()
                .map(|&s| random_instance(s, &GenConfig::default())),
        );
        assert_eq!(
            corpus.len(),
            expected.len(),
            "corpus dir {} out of sync — regenerate with oracle-fuzz \
             --write-regressions / --write-seed",
            dir.display()
        );
        let by_name = |i: &Instance| i.name.clone();
        let mut exp_sorted = expected;
        exp_sorted.sort_by_key(by_name);
        let mut got_sorted: Vec<Instance> = corpus.into_iter().map(|(_, i)| i).collect();
        got_sorted.sort_by_key(by_name);
        for (got, want) in got_sorted.iter().zip(&exp_sorted) {
            assert_eq!(got.name, want.name);
            assert_eq!(got.seed, want.seed);
            assert_eq!(got.data.complete_rows(), want.data.complete_rows());
            assert_eq!(got.data.missing_vars(), want.data.missing_vars());
            for (v, pmf) in &want.pmfs {
                assert_eq!(
                    got.pmfs[v].probs(),
                    pmf.probs(),
                    "{}: pmf of {v}",
                    want.name
                );
            }
        }
    }
}
