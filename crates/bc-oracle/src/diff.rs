//! The differential harness: every solver against the oracle, first
//! divergence minimized into a replayable repro.
//!
//! For one [`Instance`] the harness builds the c-table exactly the way the
//! production pipeline does with pruning disabled (`alpha = 1.0`, so no
//! condition is dropped for having low probability — exactness requires
//! comparing the *full* conditions), asks the possible-worlds oracle for
//! the true per-object condition probabilities, and then checks:
//!
//! * **c-table construction** — in every tie-free world, `φ(o)` must equal
//!   actual skyline membership ([`crate::worlds::WorldReport`]),
//! * **ADPLL**, **naive enumeration**, **ApproxCount** — must match the
//!   oracle to [`DiffConfig::eps`] (ApproxCount falls back to exact
//!   enumeration below its cutoff, which every in-envelope instance is),
//! * **naive model counts** — [`bc_solver::ModelCount`] internals must be
//!   coherent (satisfying ≤ states, weight = probability),
//! * **Monte Carlo** — must land within `mc_sigma` binomial standard
//!   errors of the oracle (plus a small floor for `p ≈ 0, 1`).
//!
//! On the first failure the harness returns a [`Divergence`];
//! [`minimize_divergence`] then greedily shrinks the instance — dropping
//! objects, then filling missing cells with their modal value — as long as
//! *some* divergence survives, which is the form worth committing to the
//! seed corpus.

use crate::gen::Instance;
use crate::worlds::PossibleWorlds;
use crate::{prob_close, OracleError};
use bc_bayes::Pmf;
use bc_ctable::{build_ctable, CTable, CTableConfig, DominatorStrategy};
use bc_data::{Dataset, ObjectId, VarId};
use bc_solver::{AdpllSolver, ApproxCountSolver, MonteCarloSolver, NaiveSolver, Solver};
use std::collections::BTreeMap;
use std::fmt;

/// Tolerances and budgets for one differential check.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Absolute tolerance for the exact solvers.
    pub eps: f64,
    /// Monte-Carlo sample count per condition.
    pub mc_samples: u32,
    /// Monte-Carlo acceptance band, in binomial standard errors.
    pub mc_sigma: f64,
    /// Base seed for the Monte-Carlo estimator.
    pub mc_seed: u64,
    /// Possible-worlds enumeration cap.
    pub max_worlds: u128,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            eps: 1e-9,
            mc_samples: 20_000,
            mc_sigma: 3.0,
            mc_seed: 0xd1ff,
            max_worlds: 1 << 20,
        }
    }
}

/// What an instance looked like when every solver agreed.
#[derive(Clone, Debug)]
pub struct InstanceSummary {
    /// Instance name.
    pub name: String,
    /// Objects in the dataset.
    pub n_objects: usize,
    /// Worlds the oracle enumerated.
    pub n_worlds: u128,
    /// The oracle's per-object condition probabilities.
    pub oracle: Vec<f64>,
}

/// One solver disagreeing with the oracle on one object.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The instance that produced it.
    pub instance: Instance,
    /// Which check failed (`"ctable"`, `"adpll"`, `"naive"`,
    /// `"naive-count"`, `"approxcount"`, `"montecarlo"`, `"oracle"`).
    pub solver: String,
    /// The object whose probability diverged.
    pub object: ObjectId,
    /// What the solver produced.
    pub got: f64,
    /// What the oracle says.
    pub want: f64,
    /// The tolerance that was exceeded.
    pub tolerance: f64,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: solver `{}` on object {} got {} want {} (tolerance {:e}): {}",
            self.instance.name,
            self.solver,
            self.object,
            self.got,
            self.want,
            self.tolerance,
            self.detail
        )
    }
}

/// The pipeline's c-table for an instance, built with pruning disabled.
pub fn exact_ctable(data: &Dataset) -> CTable {
    build_ctable(
        data,
        &CTableConfig {
            alpha: 1.0,
            strategy: DominatorStrategy::FastIndex,
        },
    )
}

/// Sample count of the `attempt`-th Monte-Carlo estimate (4× per retry).
fn mc_samples_at(cfg: &DiffConfig, attempt: u32) -> u32 {
    cfg.mc_samples.saturating_mul(4u32.saturating_pow(attempt))
}

fn oracle_failure(inst: &Instance, err: OracleError) -> Box<Divergence> {
    Box::new(Divergence {
        instance: inst.clone(),
        solver: "oracle".into(),
        object: ObjectId(0),
        got: f64::NAN,
        want: f64::NAN,
        tolerance: 0.0,
        detail: err.to_string(),
    })
}

/// Runs one instance through every solver and the oracle. `Ok` means they
/// all agreed; `Err` carries the first divergence (boxed — it owns a full
/// copy of the instance).
pub fn check_instance(
    inst: &Instance,
    cfg: &DiffConfig,
) -> Result<InstanceSummary, Box<Divergence>> {
    let ctable = exact_ctable(&inst.data);
    let report = PossibleWorlds::with_limit(cfg.max_worlds)
        .report(&inst.data, &inst.pmfs, Some(&ctable))
        .map_err(|e| oracle_failure(inst, e))?;
    let oracle = report.condition.clone().expect("ctable was supplied");

    if let Some(m) = &report.tie_free_mismatch {
        return Err(Box::new(Divergence {
            instance: inst.clone(),
            solver: "ctable".into(),
            object: m.object,
            got: if m.condition_holds { 1.0 } else { 0.0 },
            want: if m.in_skyline { 1.0 } else { 0.0 },
            tolerance: 0.0,
            detail: format!(
                "condition disagrees with skyline membership in tie-free world {:?}",
                m.world
            ),
        }));
    }

    let dists = inst.dists();
    let adpll = AdpllSolver::new();
    let naive = NaiveSolver::default();
    let approx = ApproxCountSolver::new(64, cfg.mc_seed ^ inst.seed);
    let mc = MonteCarloSolver::new(cfg.mc_samples, cfg.mc_seed ^ inst.seed.rotate_left(17));
    let mc_retry = MonteCarloSolver::new(
        mc_samples_at(cfg, 1),
        cfg.mc_seed ^ inst.seed.rotate_left(41) ^ 0x5eed_5eed,
    );

    let diverge = |solver: &str, o: ObjectId, got: f64, want: f64, tol: f64, detail: String| {
        Box::new(Divergence {
            instance: inst.clone(),
            solver: solver.into(),
            object: o,
            got,
            want,
            tolerance: tol,
            detail,
        })
    };

    for o in inst.data.objects() {
        let cond = ctable.condition(o);
        let want = oracle[o.index()];

        for (name, got) in [
            ("adpll", adpll.probability(cond, &dists)),
            ("naive", naive.probability(cond, &dists)),
            ("approxcount", approx.probability(cond, &dists)),
        ] {
            let got = got.map_err(|e| {
                diverge(
                    name,
                    o,
                    f64::NAN,
                    want,
                    cfg.eps,
                    format!("solver error: {e}"),
                )
            })?;
            if !prob_close(got, want, cfg.eps) {
                return Err(diverge(
                    name,
                    o,
                    got,
                    want,
                    cfg.eps,
                    "exact mismatch".into(),
                ));
            }
        }

        let count = naive.count_models(cond, &dists).map_err(|e| {
            diverge(
                "naive-count",
                o,
                f64::NAN,
                want,
                cfg.eps,
                format!("solver error: {e}"),
            )
        })?;
        if count.satisfying > count.states || !prob_close(count.weight, want, cfg.eps) {
            return Err(diverge(
                "naive-count",
                o,
                count.weight,
                want,
                cfg.eps,
                format!(
                    "model count incoherent: {}/{} states satisfying",
                    count.satisfying, count.states
                ),
            ));
        }

        // Monte Carlo is a *statistical* check: a correct estimator still
        // strays past any fixed band occasionally (this suite makes
        // thousands of comparisons, so 3σ excursions are expected, not
        // exceptional). A breach therefore triggers one retry with an
        // independent seed and 4× the samples: an unbiased estimator
        // passes the tighter retry with overwhelming probability
        // (~7·10⁻⁶ combined false-alarm rate per comparison), while a
        // genuinely biased solver fails both. The band is `mc_sigma`
        // binomial standard errors plus a small floor that keeps it
        // non-degenerate at p ∈ {0, 1}; the clamp guards against `want`
        // sitting an ulp outside [0, 1] from accumulation.
        let p = want.clamp(0.0, 1.0);
        let mut verdict = Ok(());
        for (attempt, solver) in [(0u32, &mc), (1, &mc_retry)] {
            let samples = mc_samples_at(cfg, attempt);
            let got = solver.probability(cond, &dists).map_err(|e| {
                diverge(
                    "montecarlo",
                    o,
                    f64::NAN,
                    want,
                    0.0,
                    format!("solver error: {e}"),
                )
            })?;
            let sigma = (p * (1.0 - p) / samples as f64).sqrt();
            let tol = cfg.mc_sigma * sigma + 3.0 / samples as f64;
            if prob_close(got, want, tol) {
                verdict = Ok(());
                break;
            }
            verdict = Err(diverge(
                "montecarlo",
                o,
                got,
                want,
                tol,
                format!(
                    "outside {}σ sampling band on {} independent estimates",
                    cfg.mc_sigma,
                    attempt + 1
                ),
            ));
        }
        verdict?;
    }

    Ok(InstanceSummary {
        name: inst.name.clone(),
        n_objects: inst.data.n_objects(),
        n_worlds: report.n_worlds,
        oracle,
    })
}

/// `inst` without object `o` (variable ids re-point at the shifted rows).
fn drop_object(inst: &Instance, o: ObjectId) -> Instance {
    let rows: Vec<Vec<Option<u16>>> = inst
        .data
        .objects()
        .filter(|&p| p != o)
        .map(|p| inst.data.row(p).to_vec())
        .collect();
    let data = Dataset::from_rows(
        format!("{}-drop{}", inst.name, o.index()),
        inst.data.domains().to_vec(),
        rows,
    )
    .expect("dropping a row preserves validity");
    let pmfs: BTreeMap<VarId, Pmf> = inst
        .pmfs
        .iter()
        .filter(|(v, _)| v.object != o)
        .map(|(v, p)| {
            let shifted = if v.object.0 > o.0 {
                VarId::new(v.object.0 - 1, v.attr.0)
            } else {
                *v
            };
            (shifted, p.clone())
        })
        .collect();
    Instance {
        name: data.name().to_string(),
        seed: inst.seed,
        data,
        pmfs,
    }
}

/// `inst` with missing cell `v` pinned to their pmf's modal value.
fn fill_cell(inst: &Instance, v: VarId) -> Instance {
    let mut data = inst.data.clone();
    data.set(v.object, v.attr, Some(inst.pmfs[&v].mode()))
        .expect("mode is in-domain");
    let mut pmfs = inst.pmfs.clone();
    pmfs.remove(&v);
    Instance {
        name: format!(
            "{}-fill-o{}a{}",
            inst.name,
            v.object.index(),
            v.attr.index()
        ),
        seed: inst.seed,
        data,
        pmfs,
    }
}

/// Greedily shrinks a diverging instance: repeatedly drop an object or
/// pin a missing cell to its modal value, keeping any change that still
/// produces *a* divergence (not necessarily the identical one). Returns
/// the divergence of the smallest still-failing instance.
pub fn minimize_divergence(div: Box<Divergence>, cfg: &DiffConfig) -> Box<Divergence> {
    let mut best = div;
    loop {
        let inst = best.instance.clone();
        let mut shrunk = None;
        for o in inst.data.objects() {
            if inst.data.n_objects() <= 2 {
                break;
            }
            if let Err(d) = check_instance(&drop_object(&inst, o), cfg) {
                shrunk = Some(d);
                break;
            }
        }
        if shrunk.is_none() {
            for v in inst.data.missing_vars() {
                if let Err(d) = check_instance(&fill_cell(&inst, v), cfg) {
                    shrunk = Some(d);
                    break;
                }
            }
        }
        match shrunk {
            Some(d) => best = d,
            None => return best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_instance, GenConfig};
    use bc_ctable::Condition;

    #[test]
    fn random_instances_agree() {
        let cfg = DiffConfig::default();
        for seed in 0..25 {
            let inst = random_instance(seed, &GenConfig::default());
            let summary = check_instance(&inst, &cfg).unwrap_or_else(|d| panic!("{d}"));
            assert_eq!(summary.oracle.len(), inst.data.n_objects());
            assert!(summary.n_worlds >= 1);
        }
    }

    #[test]
    fn a_seeded_divergence_is_caught_and_minimized() {
        // Sabotage a healthy instance by flipping one object's condition,
        // then confirm the harness flags it and minimization keeps failing.
        let inst = random_instance(3, &GenConfig::default());
        let cfg = DiffConfig::default();
        let ctable = exact_ctable(&inst.data);
        // Find an object whose condition is certain, flip it, and check
        // via a manual oracle comparison that "ctable"/solver catches it.
        let report = PossibleWorlds::new()
            .report(&inst.data, &inst.pmfs, Some(&ctable))
            .unwrap();
        let oracle = report.condition.unwrap();

        // Build a fake divergence directly (solver disagreement is hard to
        // fabricate without patching a solver) and minimize it: the
        // minimizer must return it unchanged when no shrink reproduces.
        let div = Box::new(Divergence {
            instance: inst.clone(),
            solver: "adpll".into(),
            object: ObjectId(0),
            got: 0.0,
            want: oracle[0],
            tolerance: cfg.eps,
            detail: "fabricated".into(),
        });
        let out = minimize_divergence(div, &cfg);
        // The fabricated divergence does not reproduce, so nothing shrinks.
        assert_eq!(out.instance.data.n_objects(), inst.data.n_objects());
        assert_eq!(out.detail, "fabricated");

        // Sanity: flipping a condition to a constant breaks the tie-free
        // agreement check on a complete-certain object.
        let mut bad = ctable.clone();
        let o = inst
            .data
            .objects()
            .find(|&o| matches!(bad.condition(o), Condition::True | Condition::Cnf(_)))
            .unwrap();
        bad.set_condition(o, Condition::False);
        let bad_report = PossibleWorlds::new()
            .report(&inst.data, &inst.pmfs, Some(&bad))
            .unwrap();
        let bad_oracle = bad_report.condition.unwrap();
        assert!(bad_oracle[o.index()] < oracle[o.index()] + 1e-12);
    }
}
