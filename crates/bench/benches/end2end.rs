//! End-to-end Criterion bench: full BayesCrowd runs per strategy, and the
//! CrowdSky baseline, on small instances of the paper's workloads.

use bayescrowd::{BayesCrowdConfig, TaskStrategy};
use bc_bench::experiments::run_bayescrowd;
use bc_bench::Workload;
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdsky::{CrowdSky, CrowdSkyConfig};

fn bench_bayescrowd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayescrowd_end2end");
    group.sample_size(10);
    let w = Workload::nba(400, 0.1, 42);
    for (name, strategy) in [
        ("fbs", TaskStrategy::Fbs),
        ("ubs", TaskStrategy::Ubs),
        ("hhs", TaskStrategy::Hhs { m: 15 }),
    ] {
        let config = BayesCrowdConfig {
            budget: 30,
            strategy,
            ..BayesCrowdConfig::nba_defaults()
        };
        group.bench_with_input(BenchmarkId::new("nba", name), &w, |b, w| {
            b.iter(|| run_bayescrowd(w, &config, 1.0, 7))
        });
    }
    group.finish();
}

fn bench_crowdsky(c: &mut Criterion) {
    let mut group = c.benchmark_group("crowdsky_end2end");
    group.sample_size(10);
    let w = Workload::nba_masked(400, 42);
    group.bench_with_input(BenchmarkId::new("nba_masked", 400), &w, |b, w| {
        b.iter(|| {
            let oracle = GroundTruthOracle::new(w.complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
            CrowdSky::new(CrowdSkyConfig { round_size: 20 }).run(&w.incomplete, &mut platform)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bayescrowd, bench_crowdsky);
criterion_main!(benches);
