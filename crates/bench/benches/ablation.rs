//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * ADPLL's most-frequent-variable branching vs naive first-variable
//!   branching,
//! * Bayesian-network conditionals vs uniform priors,
//! * conflict-free batching on/off,
//! * crowd-answer constraint propagation on/off.

use bayescrowd::{BayesCrowdConfig, TaskStrategy};
use bc_bayes::{MissingValueModel, ModelConfig};
use bc_bench::experiments::run_bayescrowd;
use bc_bench::Workload;
use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
use bc_solver::{AdpllSolver, BranchHeuristic, Solver, VarDists};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_branch_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_branch_heuristic");
    group.sample_size(10);
    let w = Workload::nba(600, 0.15, 42);
    let ct = build_ctable(
        &w.incomplete,
        &CTableConfig {
            alpha: 0.01,
            strategy: DominatorStrategy::FastIndex,
        },
    );
    let model = MissingValueModel::learn(&w.incomplete, &ModelConfig::default());
    let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
    let open = ct.open_objects();

    for (name, heuristic, caching) in [
        ("most_frequent", BranchHeuristic::MostFrequent, true),
        (
            "most_frequent_nocache",
            BranchHeuristic::MostFrequent,
            false,
        ),
        ("first_var", BranchHeuristic::First, true),
    ] {
        group.bench_with_input(BenchmarkId::new(name, open.len()), &open, |b, open| {
            b.iter(|| {
                let solver = AdpllSolver::with_heuristic(heuristic).with_caching(caching);
                let mut total = 0.0;
                for &o in open.iter() {
                    total += solver
                        .probability(ct.condition(o), &dists)
                        .expect("ADPLL always succeeds");
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_framework_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_framework");
    group.sample_size(10);
    let w = Workload::nba(400, 0.1, 42);
    let base = BayesCrowdConfig {
        budget: 30,
        strategy: TaskStrategy::Hhs { m: 15 },
        ..BayesCrowdConfig::nba_defaults()
    };

    let variants: Vec<(&str, BayesCrowdConfig)> = vec![
        ("default", base.clone()),
        (
            "uniform_prior",
            BayesCrowdConfig {
                model: ModelConfig {
                    uniform_prior: true,
                    ..ModelConfig::default()
                },
                ..base.clone()
            },
        ),
        (
            "no_conflict_avoidance",
            BayesCrowdConfig {
                conflict_free: false,
                ..base.clone()
            },
        ),
        (
            "no_propagation",
            BayesCrowdConfig {
                propagate_answers: false,
                ..base.clone()
            },
        ),
        (
            "random_object_ranking",
            BayesCrowdConfig {
                ranking: bayescrowd::ObjectRanking::Random { seed: 1 },
                ..base.clone()
            },
        ),
    ];
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new(name, 400), &w, |b, w| {
            b.iter(|| run_bayescrowd(w, &config, 1.0, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_branch_heuristic, bench_framework_ablations);
criterion_main!(benches);
