//! Criterion bench for Figure 3: probability computation over the open
//! conditions of an initial c-table — ADPLL vs Naive vs Monte-Carlo.

use bc_bayes::{MissingValueModel, ModelConfig};
use bc_bench::Workload;
use bc_ctable::{build_ctable, CTable, CTableConfig, DominatorStrategy};
use bc_solver::{AdpllSolver, ApproxCountSolver, MonteCarloSolver, NaiveSolver, Solver, VarDists};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn setup(rate: f64) -> (CTable, VarDists, Vec<bc_data::ObjectId>) {
    let w = Workload::nba(600, rate, 42);
    let ct = build_ctable(
        &w.incomplete,
        &CTableConfig {
            alpha: 0.01,
            strategy: DominatorStrategy::FastIndex,
        },
    );
    let model = MissingValueModel::learn(&w.incomplete, &ModelConfig::default());
    let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
    let open = ct.open_objects();
    (ct, dists, open)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("probability_computation");
    group.sample_size(10);

    for rate in [0.05, 0.1, 0.15] {
        let (ct, dists, open) = setup(rate);
        let solvers: Vec<(&str, Box<dyn Solver>)> = vec![
            ("adpll", Box::new(AdpllSolver::new())),
            (
                "adpll_nocache",
                Box::new(AdpllSolver::new().with_caching(false)),
            ),
            ("naive", Box::new(NaiveSolver::with_limit(5_000_000))),
            ("approxcount", Box::new(ApproxCountSolver::new(1_000, 7))),
            ("montecarlo", Box::new(MonteCarloSolver::new(2_000, 7))),
        ];
        for (name, solver) in solvers {
            group.bench_with_input(
                BenchmarkId::new(name, format!("rate_{rate}")),
                &(&ct, &dists, &open),
                |b, (ct, dists, open)| {
                    b.iter(|| {
                        let mut total = 0.0;
                        for &o in open.iter() {
                            total += solver.probability(ct.condition(o), dists).unwrap_or(0.5);
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
