//! Criterion bench for Figure 2: c-table construction, Get-CTable (sorted
//! bitset index) vs the pairwise Baseline, across missing rates and sizes.

use bc_bench::Workload;
use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ctable(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctable_construction");
    group.sample_size(10);

    for rate in [0.05, 0.1, 0.2] {
        let w = Workload::nba(800, rate, 42);
        for (name, strategy) in [
            ("get_ctable", DominatorStrategy::FastIndex),
            ("baseline", DominatorStrategy::Baseline),
        ] {
            let cfg = CTableConfig {
                alpha: 0.01,
                strategy,
            };
            group.bench_with_input(
                BenchmarkId::new(name, format!("rate_{rate}")),
                &w,
                |b, w| b.iter(|| build_ctable(&w.incomplete, &cfg)),
            );
        }
    }

    for n in [250usize, 500, 1000] {
        let w = Workload::nba(n, 0.1, 42);
        for (name, strategy) in [
            ("get_ctable", DominatorStrategy::FastIndex),
            ("baseline", DominatorStrategy::Baseline),
        ] {
            let cfg = CTableConfig {
                alpha: 0.01,
                strategy,
            };
            group.bench_with_input(BenchmarkId::new(name, format!("n_{n}")), &w, |b, w| {
                b.iter(|| build_ctable(&w.incomplete, &cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ctable);
criterion_main!(benches);
