//! Experimental workloads mirroring the paper's two datasets.

use bc_bayes::synthetic::adult_like;
use bc_data::generators::nba::nba_like;
use bc_data::missing::{inject_mcar, mask_attributes};
use bc_data::{AttrId, Dataset};
use rand::SeedableRng;

/// Experiment scale. The paper runs NBA at 10,000 × 11 and Synthetic at
/// 100,000 × 9; the default harness scale keeps the same shapes at sizes
/// that finish in minutes on a laptop.
#[derive(Clone, Debug)]
pub struct Scale {
    /// NBA-like dataset cardinality.
    pub nba_n: usize,
    /// Synthetic dataset cardinality.
    pub syn_n: usize,
    /// Cardinality sweep of the CrowdSky comparison (Figure 4).
    pub fig4_cards: Vec<usize>,
    /// Cardinality sweep of Figure 11.
    pub fig11_cards: Vec<usize>,
    /// Default budget on the NBA workload (the paper uses 50).
    pub nba_budget: usize,
    /// Pruning threshold α on NBA (the paper uses 0.003 at 10k records;
    /// smaller scales need a larger α to keep the same absolute
    /// dominator-set threshold).
    pub nba_alpha: f64,
    /// Pruning threshold α on Synthetic (the paper uses 0.01 at 100k).
    pub syn_alpha: f64,
    /// Default budget on the Synthetic workload (the paper uses 1000 at
    /// 100k records; the small scale keeps it proportional).
    pub syn_budget: usize,
}

impl Scale {
    /// Laptop-friendly defaults.
    pub fn small() -> Scale {
        Scale {
            nba_n: 1_200,
            syn_n: 2_500,
            fig4_cards: vec![250, 500, 1_000, 2_000],
            fig11_cards: vec![1_000, 2_000, 4_000, 8_000],
            nba_budget: 50,
            syn_budget: 400,
            nba_alpha: 0.01,
            syn_alpha: 0.01,
        }
    }

    /// The paper's sizes (expect long runtimes, especially the pairwise
    /// baseline and CrowdSky at 10k+).
    pub fn paper() -> Scale {
        Scale {
            nba_n: 10_000,
            syn_n: 100_000,
            fig4_cards: vec![2_000, 4_000, 6_000, 8_000, 10_000],
            fig11_cards: vec![25_000, 50_000, 75_000, 100_000, 125_000],
            nba_budget: 50,
            syn_budget: 1_000,
            nba_alpha: 0.003,
            syn_alpha: 0.01,
        }
    }
}

/// A complete dataset plus its incomplete version under some injection.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, e.g. `NBA` or `Synthetic`.
    pub name: String,
    /// The hidden complete data (the crowd oracle and ground truth).
    pub complete: Dataset,
    /// What the machine sees.
    pub incomplete: Dataset,
}

impl Workload {
    /// The NBA-like workload with MCAR missing values.
    pub fn nba(n: usize, missing_rate: f64, seed: u64) -> Workload {
        let complete = nba_like(n, seed);
        let (incomplete, _) = inject_mcar(&complete, missing_rate, seed.wrapping_add(1));
        Workload {
            name: "NBA".into(),
            complete,
            incomplete,
        }
    }

    /// The Synthetic workload: sampled from the Adult-like Bayesian network,
    /// with MCAR missing values.
    pub fn synthetic(n: usize, missing_rate: f64, seed: u64) -> Workload {
        let bn = adult_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let complete = bn
            .sample_dataset("Synthetic", n, &mut rng)
            .expect("sampling a valid network always succeeds");
        let (incomplete, _) = inject_mcar(&complete, missing_rate, seed.wrapping_add(1));
        Workload {
            name: "Synthetic".into(),
            complete,
            incomplete,
        }
    }

    /// The CrowdSky-comparison workload (Section 7.3): NBA with the last two
    /// attributes entirely missing and the rest complete.
    pub fn nba_masked(n: usize, seed: u64) -> Workload {
        let complete = nba_like(n, seed);
        let d = complete.n_attrs() as u16;
        let incomplete = mask_attributes(&complete, &[AttrId(d - 2), AttrId(d - 1)]);
        Workload {
            name: "NBA-masked".into(),
            complete,
            incomplete,
        }
    }

    /// Same underlying data at a smaller cardinality.
    pub fn truncated(&self, n: usize) -> Workload {
        Workload {
            name: self.name.clone(),
            complete: self.complete.truncated(n),
            incomplete: self.incomplete.truncated(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nba_shape_and_rate() {
        let w = Workload::nba(300, 0.1, 5);
        assert_eq!(w.incomplete.n_objects(), 300);
        assert_eq!(w.incomplete.n_attrs(), 11);
        assert!((w.incomplete.missing_rate() - 0.1).abs() < 0.01);
        assert!(w.complete.is_complete());
    }

    #[test]
    fn synthetic_shape() {
        let w = Workload::synthetic(200, 0.15, 5);
        assert_eq!(w.incomplete.n_attrs(), 9);
        assert!((w.incomplete.missing_rate() - 0.15).abs() < 0.01);
    }

    #[test]
    fn masked_workload_has_two_crowd_attributes() {
        let w = Workload::nba_masked(100, 5);
        let (obs, crowd) = crowdsky::layers::split_attributes(&w.incomplete);
        assert_eq!(obs.len(), 9);
        assert_eq!(crowd.len(), 2);
    }

    #[test]
    fn truncation_is_consistent() {
        let w = Workload::nba(100, 0.1, 5).truncated(40);
        assert_eq!(w.complete.n_objects(), 40);
        assert_eq!(w.incomplete.n_objects(), 40);
    }
}
