#![warn(missing_docs)]
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section 7).
//!
//! * [`workloads`] — the two experimental datasets (NBA-like and the
//!   Adult-BN Synthetic) at configurable scale, with MCAR or
//!   attribute-masking missing-value injection,
//! * [`rows`] — a tiny result-table model with text and JSON output,
//! * [`experiments`] — one function per paper figure/table (`fig2` …
//!   `fig11`, `table6`), each returning the series the paper plots,
//! * [`perf`] — the fixed-matrix performance suite behind the `perf`
//!   binary, its `BENCH.json` document model, and the noise-aware
//!   [`perf::diff`] comparison behind the `perfdiff` regression gate, and
//! * the `figures` binary — the command-line entry point
//!   (`cargo run --release -p bc-bench --bin figures -- all`).

pub mod experiments;
pub mod perf;
pub mod rows;
pub mod workloads;

pub use perf::{BenchDoc, BenchRecord, MetricSummary, PerfOptions, PerfScale};
pub use rows::{print_rows, rows_to_json_pretty, Row};
pub use workloads::{Scale, Workload};
