//! A small result-table model shared by every experiment.
//!
//! JSON output is hand-rolled (and hand-parsed for the round-trip test)
//! because the build environment has no registry access for `serde`.

use std::collections::BTreeMap;

/// One measured point of one series of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Experiment id (`fig2`, `table6`, …).
    pub experiment: String,
    /// Series label (e.g. `NBA/Get-CTable` or `Synthetic/BayesCrowd-HHS`).
    pub series: String,
    /// Name of the swept parameter (`missing_rate`, `budget`, …).
    pub x_name: String,
    /// Value of the swept parameter.
    pub x: f64,
    /// Measured metrics (`time_ms`, `f1`, `tasks`, `rounds`, …).
    pub metrics: BTreeMap<String, f64>,
}

impl Row {
    /// Builds a row from metric pairs.
    pub fn new(
        experiment: &str,
        series: impl Into<String>,
        x_name: &str,
        x: f64,
        metrics: &[(&str, f64)],
    ) -> Row {
        Row {
            experiment: experiment.into(),
            series: series.into(),
            x_name: x_name.into(),
            x,
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// Serializes the row as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| format!("{}: {:?}", json_string(k), v))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"experiment\": {}, \"series\": {}, \"x_name\": {}, \"x\": {:?}, \"metrics\": {{{metrics}}}}}",
            json_string(&self.experiment),
            json_string(&self.series),
            json_string(&self.x_name),
            self.x,
        )
    }

    /// Parses a row from the JSON shape produced by [`Row::to_json`].
    ///
    /// Field order is free, unknown fields are rejected; this is a
    /// round-trip check for our own output, not a general JSON parser.
    pub fn from_json(s: &str) -> Option<Row> {
        let mut p = JsonCursor::new(s);
        let mut experiment = None;
        let mut series = None;
        let mut x_name = None;
        let mut x = None;
        let mut metrics = None;
        p.expect('{')?;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "experiment" => experiment = Some(p.string()?),
                "series" => series = Some(p.string()?),
                "x_name" => x_name = Some(p.string()?),
                "x" => x = Some(p.number()?),
                "metrics" => {
                    let mut map = BTreeMap::new();
                    p.expect('{')?;
                    if !p.try_expect('}') {
                        loop {
                            let k = p.string()?;
                            p.expect(':')?;
                            map.insert(k, p.number()?);
                            if !p.try_expect(',') {
                                break;
                            }
                        }
                        p.expect('}')?;
                    }
                    metrics = Some(map);
                }
                _ => return None,
            }
            if !p.try_expect(',') {
                break;
            }
        }
        p.expect('}')?;
        Some(Row {
            experiment: experiment?,
            series: series?,
            x_name: x_name?,
            x: x?,
            metrics: metrics?,
        })
    }
}

/// Serializes rows as a pretty-printed JSON array (one row object per line).
pub fn rows_to_json_pretty(rows: &[Row]) -> String {
    if rows.is_empty() {
        return "[]".into();
    }
    let body = rows
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n]")
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal cursor over the JSON subset [`Row::to_json`] emits.
struct JsonCursor<'a> {
    rest: &'a str,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> JsonCursor<'a> {
        JsonCursor { rest: s }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn expect(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        self.rest = self.rest.strip_prefix(c)?;
        Some(())
    }

    fn try_expect(&mut self, c: char) -> bool {
        self.expect(c).is_some()
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let (i, c) = chars.next()?;
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Some(out);
                }
                '\\' => match chars.next()?.1 {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        let (num, rest) = self.rest.split_at(end);
        self.rest = rest;
        num.parse().ok()
    }
}

/// Pretty-prints rows as one aligned text table per experiment.
pub fn print_rows(rows: &[Row]) {
    let mut by_exp: BTreeMap<&str, Vec<&Row>> = BTreeMap::new();
    for r in rows {
        by_exp.entry(&r.experiment).or_default().push(r);
    }
    for (exp, rows) in by_exp {
        println!("\n== {exp} ==");
        // Collect the union of metric names for the header.
        let mut metric_names: Vec<&str> = Vec::new();
        for r in &rows {
            for k in r.metrics.keys() {
                if !metric_names.contains(&k.as_str()) {
                    metric_names.push(k);
                }
            }
        }
        let x_name = rows.first().map(|r| r.x_name.as_str()).unwrap_or("x");
        print!("{:<34} {:>12}", "series", x_name);
        for m in &metric_names {
            print!(" {m:>12}");
        }
        println!();
        for r in &rows {
            print!("{:<34} {:>12.4}", r.series, r.x);
            for m in &metric_names {
                match r.metrics.get(*m) {
                    Some(v) => print!(" {v:>12.4}"),
                    None => print!(" {:>12}", "-"),
                }
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_construction() {
        let r = Row::new(
            "fig2",
            "NBA/Get-CTable",
            "missing_rate",
            0.1,
            &[("time_ms", 12.5)],
        );
        assert_eq!(r.metrics["time_ms"], 12.5);
        assert_eq!(r.experiment, "fig2");
    }

    #[test]
    fn rows_serialize_to_json() {
        let r = Row::new(
            "fig3",
            "NBA/ADPLL",
            "missing_rate",
            0.05,
            &[("time_ms", 1.0)],
        );
        let s = r.to_json();
        assert!(s.contains("fig3"));
        let back = Row::from_json(&s).unwrap();
        assert_eq!(back.series, "NBA/ADPLL");
        assert_eq!(back, r);
    }

    #[test]
    fn json_round_trips_escapes_and_empty_metrics() {
        let r = Row::new("t", "a\"b\\c\nd", "x", -1.5e-3, &[]);
        let back = Row::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let arr = rows_to_json_pretty(&[r.clone(), r]);
        assert!(arr.starts_with("[\n") && arr.ends_with("\n]"));
        assert_eq!(rows_to_json_pretty(&[]), "[]");
    }

    #[test]
    fn print_does_not_panic_on_heterogeneous_metrics() {
        let rows = vec![
            Row::new("figX", "a", "x", 1.0, &[("m1", 1.0)]),
            Row::new("figX", "b", "x", 2.0, &[("m2", 2.0)]),
        ];
        print_rows(&rows);
    }
}
