//! A small result-table model shared by every experiment.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured point of one series of one experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Row {
    /// Experiment id (`fig2`, `table6`, …).
    pub experiment: String,
    /// Series label (e.g. `NBA/Get-CTable` or `Synthetic/BayesCrowd-HHS`).
    pub series: String,
    /// Name of the swept parameter (`missing_rate`, `budget`, …).
    pub x_name: String,
    /// Value of the swept parameter.
    pub x: f64,
    /// Measured metrics (`time_ms`, `f1`, `tasks`, `rounds`, …).
    pub metrics: BTreeMap<String, f64>,
}

impl Row {
    /// Builds a row from metric pairs.
    pub fn new(
        experiment: &str,
        series: impl Into<String>,
        x_name: &str,
        x: f64,
        metrics: &[(&str, f64)],
    ) -> Row {
        Row {
            experiment: experiment.into(),
            series: series.into(),
            x_name: x_name.into(),
            x,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// Pretty-prints rows as one aligned text table per experiment.
pub fn print_rows(rows: &[Row]) {
    let mut by_exp: BTreeMap<&str, Vec<&Row>> = BTreeMap::new();
    for r in rows {
        by_exp.entry(&r.experiment).or_default().push(r);
    }
    for (exp, rows) in by_exp {
        println!("\n== {exp} ==");
        // Collect the union of metric names for the header.
        let mut metric_names: Vec<&str> = Vec::new();
        for r in &rows {
            for k in r.metrics.keys() {
                if !metric_names.contains(&k.as_str()) {
                    metric_names.push(k);
                }
            }
        }
        let x_name = rows.first().map(|r| r.x_name.as_str()).unwrap_or("x");
        print!("{:<34} {:>12}", "series", x_name);
        for m in &metric_names {
            print!(" {m:>12}");
        }
        println!();
        for r in &rows {
            print!("{:<34} {:>12.4}", r.series, r.x);
            for m in &metric_names {
                match r.metrics.get(*m) {
                    Some(v) => print!(" {v:>12.4}"),
                    None => print!(" {:>12}", "-"),
                }
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_construction() {
        let r = Row::new("fig2", "NBA/Get-CTable", "missing_rate", 0.1, &[("time_ms", 12.5)]);
        assert_eq!(r.metrics["time_ms"], 12.5);
        assert_eq!(r.experiment, "fig2");
    }

    #[test]
    fn rows_serialize_to_json() {
        let r = Row::new("fig3", "NBA/ADPLL", "missing_rate", 0.05, &[("time_ms", 1.0)]);
        let s = serde_json::to_string(&r).unwrap();
        assert!(s.contains("fig3"));
        let back: Row = serde_json::from_str(&s).unwrap();
        assert_eq!(back.series, "NBA/ADPLL");
    }

    #[test]
    fn print_does_not_panic_on_heterogeneous_metrics() {
        let rows = vec![
            Row::new("figX", "a", "x", 1.0, &[("m1", 1.0)]),
            Row::new("figX", "b", "x", 2.0, &[("m2", 2.0)]),
        ];
        print_rows(&rows);
    }
}
