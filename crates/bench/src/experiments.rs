//! One function per figure/table of the paper's evaluation (Section 7).
//!
//! Every function returns the series the corresponding plot shows, as
//! [`Row`]s; the `figures` binary prints them and can dump JSON. Absolute
//! numbers will differ from the paper (different hardware, language, and —
//! for the datasets — a synthetic stand-in), but the *shapes* the paper
//! argues from are asserted in `tests/` and documented in `EXPERIMENTS.md`.

use crate::rows::Row;
use crate::workloads::{Scale, Workload};
use bayescrowd::{BayesCrowd, BayesCrowdConfig, RunReport, TaskStrategy};
use bc_bayes::{MissingValueModel, ModelConfig};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_ctable::{build_ctable, CTableConfig, DominatorStrategy};
use bc_solver::{AdpllSolver, ApproxCountSolver, MonteCarloSolver, NaiveSolver, Solver, VarDists};
use crowdsky::{CrowdSky, CrowdSkyConfig};
use std::time::Instant;

const MISSING_RATES: [f64; 4] = [0.05, 0.1, 0.15, 0.2];

/// Paper-default configuration for a named workload.
pub fn default_config(workload: &str, scale: &Scale) -> BayesCrowdConfig {
    let mut cfg = if workload.starts_with("NBA") {
        BayesCrowdConfig {
            budget: scale.nba_budget,
            alpha: scale.nba_alpha,
            ..BayesCrowdConfig::nba_defaults()
        }
    } else {
        BayesCrowdConfig {
            budget: scale.syn_budget,
            latency: 10,
            alpha: scale.syn_alpha,
            strategy: TaskStrategy::Hhs { m: 50 },
            ..BayesCrowdConfig::default()
        }
    };
    cfg.parallel = true;
    cfg
}

/// The three strategy variants the paper compares, with its per-dataset `m`.
pub fn strategies(workload: &str) -> Vec<(&'static str, TaskStrategy)> {
    let m = if workload.starts_with("NBA") { 15 } else { 50 };
    vec![
        ("FBS", TaskStrategy::Fbs),
        ("UBS", TaskStrategy::Ubs),
        ("HHS", TaskStrategy::Hhs { m }),
    ]
}

/// Runs BayesCrowd on a workload with a fresh platform.
pub fn run_bayescrowd(
    w: &Workload,
    config: &BayesCrowdConfig,
    worker_accuracy: f64,
    seed: u64,
) -> RunReport {
    let oracle = GroundTruthOracle::new(w.complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, worker_accuracy, seed);
    BayesCrowd::new(config.clone()).run(&w.incomplete, &mut platform)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn report_metrics(r: &RunReport) -> Vec<(&'static str, f64)> {
    vec![
        ("time_ms", ms(r.total_time)),
        ("f1", r.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)),
        ("tasks", r.crowd.tasks_posted as f64),
        ("rounds", r.crowd.rounds as f64),
    ]
}

/// Figure 2: c-table construction time, Get-CTable vs Baseline, vs missing
/// rate, on both datasets.
pub fn fig2(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, n, alpha) in [
        ("NBA", scale.nba_n, scale.nba_alpha),
        ("Synthetic", scale.syn_n, scale.syn_alpha),
    ] {
        for rate in MISSING_RATES {
            let w = if name == "NBA" {
                Workload::nba(n, rate, 42)
            } else {
                Workload::synthetic(n, rate, 42)
            };
            for (algo, strategy) in [
                ("Get-CTable", DominatorStrategy::FastIndex),
                ("Baseline", DominatorStrategy::Baseline),
            ] {
                let cfg = CTableConfig { alpha, strategy };
                let t = Instant::now();
                let ct = build_ctable(&w.incomplete, &cfg);
                let elapsed = ms(t.elapsed());
                rows.push(Row::new(
                    "fig2",
                    format!("{name}/{algo}"),
                    "missing_rate",
                    rate,
                    &[
                        ("time_ms", elapsed),
                        ("open_objects", ct.open_objects().len() as f64),
                    ],
                ));
                eprintln!("fig2 {name}/{algo} rate={rate}: {elapsed:.1} ms");
            }
        }
    }
    rows
}

/// Figure 3: total probability-computation time over the initial c-table's
/// open conditions, ADPLL vs Naive (plus the Monte-Carlo stand-in for
/// ApproxCount), vs missing rate.
pub fn fig3(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, n, alpha) in [
        ("NBA", scale.nba_n, scale.nba_alpha),
        ("Synthetic", scale.syn_n, scale.syn_alpha),
    ] {
        for rate in MISSING_RATES {
            let w = if name == "NBA" {
                Workload::nba(n, rate, 43)
            } else {
                Workload::synthetic(n, rate, 43)
            };
            let ct = build_ctable(
                &w.incomplete,
                &CTableConfig {
                    alpha,
                    strategy: DominatorStrategy::FastIndex,
                },
            );
            let model = MissingValueModel::learn(&w.incomplete, &ModelConfig::default());
            let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
            let open = ct.open_objects();

            let solvers: Vec<(&str, Box<dyn Solver>)> = vec![
                ("ADPLL", Box::new(AdpllSolver::new())),
                ("Naive", Box::new(NaiveSolver::with_limit(20_000_000))),
                ("ApproxCount", Box::new(ApproxCountSolver::new(1_000, 7))),
                ("MonteCarlo", Box::new(MonteCarloSolver::new(2_000, 7))),
            ];
            for (sname, solver) in solvers {
                let t = Instant::now();
                let mut skipped = 0usize;
                for &o in &open {
                    if solver.probability(ct.condition(o), &dists).is_err() {
                        skipped += 1;
                    }
                }
                let elapsed = ms(t.elapsed());
                rows.push(Row::new(
                    "fig3",
                    format!("{name}/{sname}"),
                    "missing_rate",
                    rate,
                    &[
                        ("time_ms", elapsed),
                        ("conditions", open.len() as f64),
                        ("skipped", skipped as f64),
                    ],
                ));
                eprintln!(
                    "fig3 {name}/{sname} rate={rate}: {elapsed:.1} ms ({} conds, {skipped} skipped)",
                    open.len()
                );
            }
        }
    }
    rows
}

/// Figure 4: comparison with CrowdSky on the masked-NBA workload across
/// cardinalities — (a) execution time, (b) #tasks, (c) #rounds.
pub fn fig4(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let full = Workload::nba_masked(*scale.fig4_cards.last().unwrap_or(&1_000), 44);
    for &n in &scale.fig4_cards {
        let w = full.truncated(n);

        // CrowdSky, 20 tasks per round.
        let oracle = GroundTruthOracle::new(w.complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 45);
        let cs = CrowdSky::new(CrowdSkyConfig { round_size: 20 }).run(&w.incomplete, &mut platform);
        rows.push(Row::new(
            "fig4",
            "CrowdSky",
            "cardinality",
            n as f64,
            &[
                ("time_ms", ms(cs.total_time)),
                ("tasks", cs.crowd.tasks_posted as f64),
                ("rounds", cs.crowd.rounds as f64),
                ("f1", cs.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)),
            ],
        ));
        eprintln!(
            "fig4 CrowdSky n={n}: {:.1} ms, {} tasks, {} rounds",
            ms(cs.total_time),
            cs.crowd.tasks_posted,
            cs.crowd.rounds
        );

        // BayesCrowd without budget constraint, 20 tasks per round.
        for (sname, strategy) in strategies("NBA") {
            let budget = 1_000_000;
            let config = BayesCrowdConfig {
                budget,
                latency: budget / 20,
                strategy,
                alpha: scale.nba_alpha,
                parallel: true,
                ..BayesCrowdConfig::nba_defaults()
            };
            let r = run_bayescrowd(&w, &config, 1.0, 46);
            rows.push(Row::new(
                "fig4",
                format!("BayesCrowd-{sname}"),
                "cardinality",
                n as f64,
                &[
                    ("time_ms", ms(r.total_time)),
                    ("tasks", r.crowd.tasks_posted as f64),
                    ("rounds", r.crowd.rounds as f64),
                    ("f1", r.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)),
                ],
            ));
            eprintln!(
                "fig4 BayesCrowd-{sname} n={n}: {:.1} ms, {} tasks, {} rounds",
                ms(r.total_time),
                r.crowd.tasks_posted,
                r.crowd.rounds
            );
        }
    }
    rows
}

/// Shared sweep driver for Figures 5–11: runs the three strategies on a
/// workload while one configuration knob varies.
fn sweep(
    experiment: &str,
    w: &Workload,
    scale: &Scale,
    x_name: &str,
    xs: &[f64],
    worker_accuracy: f64,
    mut tweak: impl FnMut(&mut BayesCrowdConfig, f64),
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &x in xs {
        for (sname, strategy) in strategies(&w.name) {
            let mut config = default_config(&w.name, scale);
            config.strategy = strategy;
            tweak(&mut config, x);
            let r = run_bayescrowd(w, &config, worker_accuracy, 47);
            rows.push(Row::new(
                experiment,
                format!("{}/BayesCrowd-{sname}", w.name),
                x_name,
                x,
                &report_metrics(&r),
            ));
            eprintln!(
                "{experiment} {}/{sname} {x_name}={x}: {}",
                w.name,
                r.summary()
            );
        }
    }
    rows
}

/// Figure 5: effect of the budget `B` (time and F1).
pub fn fig5(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let nba = Workload::nba(scale.nba_n, 0.1, 48);
    let budgets: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|f| (f * scale.nba_budget as f64).round())
        .collect();
    rows.extend(sweep(
        "fig5",
        &nba,
        scale,
        "budget",
        &budgets,
        1.0,
        |c, x| {
            c.budget = x as usize;
        },
    ));
    let syn = Workload::synthetic(scale.syn_n, 0.1, 48);
    let budgets: Vec<f64> = [0.25, 0.5, 1.0, 2.0]
        .iter()
        .map(|f| (f * scale.syn_budget as f64).round())
        .collect();
    rows.extend(sweep(
        "fig5",
        &syn,
        scale,
        "budget",
        &budgets,
        1.0,
        |c, x| {
            c.budget = x as usize;
        },
    ));
    rows
}

/// Figure 6: effect of the missing rate (time and F1).
pub fn fig6(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for rate in MISSING_RATES {
        let nba = Workload::nba(scale.nba_n, rate, 49);
        rows.extend(sweep(
            "fig6",
            &nba,
            scale,
            "missing_rate",
            &[rate],
            1.0,
            |_, _| {},
        ));
        let syn = Workload::synthetic(scale.syn_n, rate, 49);
        rows.extend(sweep(
            "fig6",
            &syn,
            scale,
            "missing_rate",
            &[rate],
            1.0,
            |_, _| {},
        ));
    }
    rows
}

/// Figure 7: effect of HHS's lookahead parameter `m` (FBS and UBS shown as
/// flat references).
pub fn fig7(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, w) in [
        ("NBA", Workload::nba(scale.nba_n, 0.1, 50)),
        ("Synthetic", Workload::synthetic(scale.syn_n, 0.1, 50)),
    ] {
        for m in [1usize, 5, 15, 30, 60] {
            let mut config = default_config(name, scale);
            config.strategy = TaskStrategy::Hhs { m };
            let r = run_bayescrowd(&w, &config, 1.0, 51);
            rows.push(Row::new(
                "fig7",
                format!("{name}/BayesCrowd-HHS"),
                "m",
                m as f64,
                &report_metrics(&r),
            ));
            eprintln!("fig7 {name}/HHS m={m}: {}", r.summary());
        }
        for (sname, strategy) in [("FBS", TaskStrategy::Fbs), ("UBS", TaskStrategy::Ubs)] {
            let mut config = default_config(name, scale);
            config.strategy = strategy;
            let r = run_bayescrowd(&w, &config, 1.0, 51);
            rows.push(Row::new(
                "fig7",
                format!("{name}/BayesCrowd-{sname}"),
                "m",
                0.0,
                &report_metrics(&r),
            ));
            eprintln!("fig7 {name}/{sname}: {}", r.summary());
        }
    }
    rows
}

/// Figure 8: effect of the pruning threshold `α` (time and F1).
pub fn fig8(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let nba = Workload::nba(scale.nba_n, 0.1, 52);
    rows.extend(sweep(
        "fig8",
        &nba,
        scale,
        "alpha",
        &[0.001, 0.003, 0.005, 0.01],
        1.0,
        |c, x| c.alpha = x,
    ));
    let syn = Workload::synthetic(scale.syn_n, 0.1, 52);
    rows.extend(sweep(
        "fig8",
        &syn,
        scale,
        "alpha",
        &[0.001, 0.003, 0.005, 0.01],
        1.0,
        |c, x| c.alpha = x,
    ));
    rows
}

/// Figure 9: effect of worker accuracy (time and F1).
pub fn fig9(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    for acc in [0.7, 0.8, 0.9, 1.0] {
        let nba = Workload::nba(scale.nba_n, 0.1, 53);
        rows.extend(sweep(
            "fig9",
            &nba,
            scale,
            "worker_accuracy",
            &[acc],
            acc,
            |_, _| {},
        ));
        let syn = Workload::synthetic(scale.syn_n, 0.1, 53);
        rows.extend(sweep(
            "fig9",
            &syn,
            scale,
            "worker_accuracy",
            &[acc],
            acc,
            |_, _| {},
        ));
    }
    rows
}

/// Figure 10: effect of the latency constraint `L` (Synthetic only, as in
/// the paper).
pub fn fig10(scale: &Scale) -> Vec<Row> {
    let syn = Workload::synthetic(scale.syn_n, 0.1, 54);
    sweep(
        "fig10",
        &syn,
        scale,
        "latency",
        &[2.0, 5.0, 10.0, 20.0],
        1.0,
        |c, x| c.latency = x as usize,
    )
}

/// Figure 11: effect of the dataset cardinality (Synthetic).
pub fn fig11(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let max_n = *scale.fig11_cards.last().unwrap_or(&1_000);
    let full = Workload::synthetic(max_n, 0.1, 55);
    for &n in &scale.fig11_cards {
        let w = full.truncated(n);
        rows.extend(sweep(
            "fig11",
            &w,
            scale,
            "cardinality",
            &[n as f64],
            1.0,
            |_, _| {},
        ));
    }
    rows
}

/// Table 6: the live-AMT practicality study, simulated with high-accuracy
/// (0.95) workers on the NBA defaults.
pub fn table6(scale: &Scale) -> Vec<Row> {
    let w = Workload::nba(scale.nba_n, 0.1, 56);
    let mut rows = Vec::new();
    for (sname, strategy) in strategies("NBA") {
        let mut config = default_config("NBA", scale);
        config.strategy = strategy;
        // Average over a few simulated AMT sessions.
        let mut f1 = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let r = run_bayescrowd(&w, &config, 0.95, 57 + seed);
            f1 += r.accuracy.map(|a| a.f1).unwrap_or(0.0);
        }
        f1 /= runs as f64;
        rows.push(Row::new(
            "table6",
            format!("BayesCrowd-{sname}"),
            "worker_accuracy",
            0.95,
            &[("f1", f1)],
        ));
        eprintln!("table6 {sname}: f1={f1:.3}");
    }
    rows
}

/// Extension experiment A (beyond the paper): quality of the learned
/// missing-value distributions — Bayesian network on listwise-complete
/// rows, EM over all rows, and the uniform prior — measured directly as
/// the mean log-likelihood (bits) of the *hidden true value* under each
/// model's pmf. Higher is better; uniform scores exactly −log₂(card).
pub fn ext_model(scale: &Scale) -> Vec<Row> {
    use bc_bayes::em::EmConfig;
    use bc_bayes::{MissingValueModel, ModelConfig};
    let mut rows = Vec::new();
    for rate in [0.1, 0.2, 0.3] {
        let n = scale.nba_n;
        let w = Workload::nba(n, rate, 60);
        let variants: Vec<(&str, ModelConfig)> = vec![
            ("listwise", ModelConfig::default()),
            (
                "em",
                ModelConfig {
                    em: Some(EmConfig::default()),
                    ..Default::default()
                },
            ),
            (
                "uniform",
                ModelConfig {
                    uniform_prior: true,
                    ..Default::default()
                },
            ),
        ];
        for (name, model_cfg) in variants {
            let t = Instant::now();
            let model = MissingValueModel::learn(&w.incomplete, &model_cfg);
            let mut ll = 0.0;
            let mut count = 0usize;
            for (var, pmf) in model.pmfs() {
                let truth = w
                    .complete
                    .get(var.object, var.attr)
                    .expect("oracle data is complete");
                ll += pmf.p(truth).max(1e-12).log2();
                count += 1;
            }
            ll /= count.max(1) as f64;
            rows.push(Row::new(
                "ext_model",
                format!("NBA/{name}"),
                "missing_rate",
                rate,
                &[("mean_log2_likelihood", ll), ("time_ms", ms(t.elapsed()))],
            ));
            eprintln!("ext_model {name} rate={rate}: mean log2-lik {ll:.3}");
        }
    }
    rows
}

/// Extension experiment B: entropy-guided object selection vs random —
/// the value of the paper's step (i).
pub fn ext_ranking(scale: &Scale) -> Vec<Row> {
    use bayescrowd::ObjectRanking;
    let mut rows = Vec::new();
    let w = Workload::synthetic(scale.syn_n, 0.1, 61);
    for (name, ranking) in [
        ("entropy", ObjectRanking::Entropy),
        ("random", ObjectRanking::Random { seed: 9 }),
    ] {
        let mut f1 = 0.0;
        let runs = 3;
        for seed in 0..runs {
            let config = BayesCrowdConfig {
                ranking,
                ..default_config("Synthetic", scale)
            };
            let r = run_bayescrowd(&w, &config, 1.0, 62 + seed);
            f1 += r.accuracy.map(|a| a.f1).unwrap_or(0.0);
        }
        f1 /= runs as f64;
        rows.push(Row::new(
            "ext_ranking",
            format!("Synthetic/{name}"),
            "budget",
            scale.syn_budget as f64,
            &[("f1", f1)],
        ));
        eprintln!("ext_ranking {name}: f1={f1:.3}");
    }
    rows
}

/// Extension experiment C: the three crowd approaches head to head on the
/// same MCAR workload — BayesCrowd (comparison tasks, inference),
/// CrowdImpute (one unary task per missing cell, no inference), and, where
/// its observed/crowd split applies, CrowdSky — across worker accuracies.
pub fn ext_baselines(scale: &Scale) -> Vec<Row> {
    use crowdimpute::{CrowdImpute, CrowdImputeConfig};
    let mut rows = Vec::new();
    let n = scale.nba_n;
    let w = Workload::nba(n, 0.1, 63);
    for acc in [0.7, 0.85, 1.0] {
        // CrowdImpute: every missing cell is a unary task.
        let ci = CrowdImpute::new(CrowdImputeConfig {
            worker_accuracy: acc,
            seed: 64,
            ..Default::default()
        })
        .run(&w.incomplete, &GroundTruthOracle::new(w.complete.clone()));
        rows.push(Row::new(
            "ext_baselines",
            "CrowdImpute",
            "worker_accuracy",
            acc,
            &[
                ("f1", ci.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)),
                ("tasks", ci.tasks_posted as f64),
                ("rounds", ci.rounds as f64),
                ("time_ms", ms(ci.total_time)),
            ],
        ));
        eprintln!(
            "ext_baselines CrowdImpute acc={acc}: f1={:.3} tasks={}",
            ci.accuracy.map(|a| a.f1).unwrap_or(f64::NAN),
            ci.tasks_posted
        );

        // CrowdImpute at BayesCrowd's budget: only `nba_budget` unary
        // questions, machine-mode imputation for the rest — the
        // equal-spend comparison.
        let ci_b = CrowdImpute::new(CrowdImputeConfig {
            budget: Some(scale.nba_budget),
            worker_accuracy: acc,
            seed: 64,
            ..Default::default()
        })
        .run(&w.incomplete, &GroundTruthOracle::new(w.complete.clone()));
        rows.push(Row::new(
            "ext_baselines",
            "CrowdImpute-matched-budget",
            "worker_accuracy",
            acc,
            &[
                ("f1", ci_b.accuracy.map(|a| a.f1).unwrap_or(f64::NAN)),
                ("tasks", ci_b.tasks_posted as f64),
                ("rounds", ci_b.rounds as f64),
                ("time_ms", ms(ci_b.total_time)),
            ],
        ));
        eprintln!(
            "ext_baselines CrowdImpute-matched acc={acc}: f1={:.3} tasks={}",
            ci_b.accuracy.map(|a| a.f1).unwrap_or(f64::NAN),
            ci_b.tasks_posted
        );

        // BayesCrowd at the same *task count* as its own default budget —
        // a fraction of CrowdImpute's.
        let config = default_config("NBA", scale);
        let r = run_bayescrowd(&w, &config, acc, 65);
        rows.push(Row::new(
            "ext_baselines",
            "BayesCrowd-HHS",
            "worker_accuracy",
            acc,
            &report_metrics(&r),
        ));
        eprintln!(
            "ext_baselines BayesCrowd acc={acc}: f1={:.3} tasks={}",
            r.accuracy.map(|a| a.f1).unwrap_or(f64::NAN),
            r.crowd.tasks_posted
        );
    }
    rows
}

/// Extension experiment D: robustness under platform faults. Sweeps the
/// task-expiry probability on a faulty platform (with mild attrition) and
/// compares the default retry policy against fire-and-forget posting —
/// the F1 each salvages and the degradation counters the run reports.
pub fn ext_faults(scale: &Scale) -> Vec<Row> {
    use bayescrowd::RetryPolicy;
    use bc_crowd::{FaultConfig, FaultyPlatform};
    let mut rows = Vec::new();
    let w = Workload::nba(scale.nba_n, 0.1, 66);
    for expiry in [0.0, 0.15, 0.3, 0.45] {
        for (name, retry) in [
            ("retry", RetryPolicy::default()),
            ("no-retry", RetryPolicy::none()),
        ] {
            let config = BayesCrowdConfig {
                retry,
                ..default_config("NBA", scale)
            };
            let faults = FaultConfig {
                expiry_prob: expiry,
                attrition: 0.02,
                ..FaultConfig::default()
            };
            let oracle = GroundTruthOracle::new(w.complete.clone());
            let mut platform =
                FaultyPlatform::new(SimulatedPlatform::new(oracle, 1.0, 67), faults, 68);
            let r = BayesCrowd::new(config).run(&w.incomplete, &mut platform);
            let mut metrics = report_metrics(&r);
            metrics.push(("tasks_expired", r.tasks_expired as f64));
            metrics.push(("tasks_retried", r.tasks_retried as f64));
            metrics.push(("degraded", r.degraded as u8 as f64));
            rows.push(Row::new(
                "ext_faults",
                format!("NBA/{name}"),
                "expiry_prob",
                expiry,
                &metrics,
            ));
            eprintln!("ext_faults {name} expiry={expiry}: {}", r.summary());
        }
    }
    rows
}

/// Extension experiment E: where a run's wall-clock goes — per-phase
/// timings from the observability layer, vs missing rate, per workload.
pub fn ext_phases(scale: &Scale) -> Vec<Row> {
    use bayescrowd::prelude::{MetricsRecorder, RunPhase};
    let mut rows = Vec::new();
    for rate in [0.1, 0.2] {
        for (name, w) in [
            ("NBA", Workload::nba(scale.nba_n, rate, 60)),
            ("Synthetic", Workload::synthetic(scale.syn_n, rate, 60)),
        ] {
            let config = default_config(name, scale);
            let oracle = GroundTruthOracle::new(w.complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
            let mut metrics = MetricsRecorder::new();
            let report = BayesCrowd::new(config)
                .try_run(&w.incomplete, &mut platform, &mut metrics)
                .expect("the paper-default run succeeds");
            let mut cells: Vec<(&str, f64)> = RunPhase::ALL
                .iter()
                .map(|p| (p.name(), metrics.phase_nanos(*p) as f64 / 1e6))
                .collect();
            cells.push(("total_ms", ms(report.total_time)));
            cells.push(("evals", report.probability_evals as f64));
            rows.push(Row::new(
                "ext_phases",
                format!("{name}/phase_ms"),
                "missing_rate",
                rate,
                &cells,
            ));
            let split: Vec<String> = RunPhase::ALL
                .iter()
                .map(|p| format!("{}={:.1}ms", p.name(), metrics.phase_nanos(*p) as f64 / 1e6))
                .collect();
            eprintln!("ext_phases {name} rate={rate}: {}", split.join(" "));
        }
    }
    rows
}

/// Runs the paper-default NBA workload once with a JSON-lines trace sink
/// attached, writing every event to `path`. Returns the event count.
pub fn write_trace(scale: &Scale, path: &str) -> std::io::Result<u64> {
    use bayescrowd::prelude::JsonLinesSink;
    let w = Workload::nba(scale.nba_n, 0.1, 60);
    let config = default_config("NBA", scale);
    let oracle = GroundTruthOracle::new(w.complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 1.0, 42);
    let mut sink = JsonLinesSink::create(path)?;
    if let Err(e) = BayesCrowd::new(config).try_run(&w.incomplete, &mut platform, &mut sink) {
        eprintln!("traced run failed: {e}");
    }
    let n = sink.events_written();
    if let Some(e) = sink.io_error() {
        eprintln!("trace writer hit an I/O error: {e}");
    }
    Ok(n)
}

/// Runs every experiment.
pub fn all(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    rows.extend(fig2(scale));
    rows.extend(fig3(scale));
    rows.extend(fig4(scale));
    rows.extend(fig5(scale));
    rows.extend(fig6(scale));
    rows.extend(fig7(scale));
    rows.extend(fig8(scale));
    rows.extend(fig9(scale));
    rows.extend(fig10(scale));
    rows.extend(fig11(scale));
    rows.extend(table6(scale));
    rows.extend(ext_model(scale));
    rows.extend(ext_ranking(scale));
    rows.extend(ext_baselines(scale));
    rows.extend(ext_faults(scale));
    rows.extend(ext_phases(scale));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            nba_n: 150,
            syn_n: 200,
            fig4_cards: vec![60, 120],
            fig11_cards: vec![100, 200],
            nba_budget: 20,
            syn_budget: 30,
            nba_alpha: 0.15,
            syn_alpha: 0.15,
        }
    }

    #[test]
    fn fig2_produces_both_series_for_both_datasets() {
        let rows = fig2(&tiny_scale());
        assert_eq!(rows.len(), 2 * 4 * 2);
        assert!(rows.iter().any(|r| r.series == "NBA/Get-CTable"));
        assert!(rows.iter().any(|r| r.series == "Synthetic/Baseline"));
        for r in &rows {
            assert!(r.metrics["time_ms"] >= 0.0);
        }
    }

    #[test]
    fn fig4_covers_all_engines() {
        let rows = fig4(&tiny_scale());
        let series: std::collections::BTreeSet<&str> =
            rows.iter().map(|r| r.series.as_str()).collect();
        assert!(series.contains("CrowdSky"));
        assert!(series.contains("BayesCrowd-FBS"));
        assert!(series.contains("BayesCrowd-UBS"));
        assert!(series.contains("BayesCrowd-HHS"));
        // CrowdSky asks more tasks than every BayesCrowd variant at every
        // cardinality — the paper's headline claim.
        for &n in &tiny_scale().fig4_cards {
            let cs = rows
                .iter()
                .find(|r| r.series == "CrowdSky" && r.x == n as f64)
                .unwrap();
            for s in ["BayesCrowd-FBS", "BayesCrowd-UBS", "BayesCrowd-HHS"] {
                let bc = rows
                    .iter()
                    .find(|r| r.series == s && r.x == n as f64)
                    .unwrap();
                assert!(
                    cs.metrics["tasks"] > bc.metrics["tasks"],
                    "{s} at n={n}: CrowdSky {} vs {}",
                    cs.metrics["tasks"],
                    bc.metrics["tasks"]
                );
            }
        }
    }

    #[test]
    fn table6_reports_high_f1_for_all_strategies() {
        let rows = table6(&tiny_scale());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.metrics["f1"] > 0.8,
                "{}: f1 = {}",
                r.series,
                r.metrics["f1"]
            );
        }
    }
}
