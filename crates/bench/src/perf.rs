//! Performance suite with a machine-readable regression document.
//!
//! [`run_suite`] drives a fixed workload matrix — both datasets × solver
//! kinds × task strategies — through full BayesCrowd runs with warmup and
//! repeated trials, summarizing every metric as median + MAD (median
//! absolute deviation), and packages the result as a versioned
//! [`BenchDoc`] serialized through the canonical [`bc_snapshot::Value`]
//! JSON writer (`BENCH.json`). [`diff`] compares two documents with
//! noise-aware thresholds and backs the `perfdiff` regression gate.
//!
//! Runs are sequential (`parallel = false`) on purpose: parallel batch
//! solving chunks work by the machine's core count, which makes
//! per-thread solver-cache counters machine-dependent. Sequential runs
//! keep every non-timing metric bit-for-bit reproducible, so `perfdiff`
//! can hold counters to tight thresholds and reserve the generous band
//! for wall-clock metrics only.

use crate::workloads::Workload;
use bayescrowd::{BayesCrowd, BayesCrowdConfig, RunError, SolverKind, TaskStrategy};
use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
use bc_obs::{Event, MetricsRecorder, RunPhase};
use bc_snapshot::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Document format version, bumped on any schema change.
pub const BENCH_VERSION: i128 = 1;

/// Workload sizes for the perf matrix. Smaller than the figure-harness
/// scales: the suite runs every matrix cell several times.
#[derive(Clone, Debug)]
pub struct PerfScale {
    /// Scale name recorded in the document (`tiny`, `small`, …).
    pub name: String,
    /// NBA-like dataset cardinality.
    pub nba_n: usize,
    /// Synthetic dataset cardinality.
    pub syn_n: usize,
    /// Task budget on NBA.
    pub nba_budget: usize,
    /// Task budget on Synthetic.
    pub syn_budget: usize,
}

impl PerfScale {
    /// CI smoke scale: seconds per trial even in debug builds.
    pub fn tiny() -> PerfScale {
        PerfScale {
            name: "tiny".into(),
            nba_n: 150,
            syn_n: 200,
            nba_budget: 8,
            syn_budget: 12,
        }
    }

    /// Local-machine scale: meaningful solver workloads, minutes overall.
    ///
    /// Sized to the worst cell of the matrix: the naive solver enumerates
    /// dominator-set assignments exhaustively, so its cost is exponential
    /// in the largest dominator set the workload produces. Cardinalities
    /// much past these make the `*/naive/*` cells effectively never
    /// terminate, which is the paper's point but not a usable benchmark.
    pub fn small() -> PerfScale {
        PerfScale {
            name: "small".into(),
            nba_n: 200,
            syn_n: 250,
            nba_budget: 15,
            syn_budget: 20,
        }
    }

    /// Looks a scale up by name.
    pub fn by_name(name: &str) -> Option<PerfScale> {
        match name {
            "tiny" => Some(PerfScale::tiny()),
            "small" => Some(PerfScale::small()),
            _ => None,
        }
    }
}

/// Options for [`run_suite`].
#[derive(Clone, Debug)]
pub struct PerfOptions {
    /// Workload sizes.
    pub scale: PerfScale,
    /// Measured trials per benchmark (median/MAD are taken over these).
    pub trials: usize,
    /// Unmeasured warmup runs per benchmark.
    pub warmup: usize,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            scale: PerfScale::small(),
            trials: 3,
            warmup: 1,
            filter: None,
        }
    }
}

/// Median + median-absolute-deviation summary of one metric's trials.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSummary {
    /// Median over trials.
    pub median: f64,
    /// Median absolute deviation from the median (0 for deterministic
    /// counters).
    pub mad: f64,
}

/// One benchmark's summarized metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, `dataset/solver/strategy`.
    pub name: String,
    /// Metric name → summary, sorted by name.
    pub metrics: BTreeMap<String, MetricSummary>,
}

/// A versioned BENCH.json document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// Scale name the suite ran at.
    pub scale: String,
    /// Measured trials per benchmark.
    pub trials: usize,
    /// Warmup runs per benchmark.
    pub warmup: usize,
    /// Environment fingerprint: `os`, `arch`, `git_rev`, `profile`.
    pub env: BTreeMap<String, String>,
    /// Per-benchmark records, in matrix order.
    pub benchmarks: Vec<BenchRecord>,
}

/// Median of a sample (0.0 when empty). Not `pub(crate)`: perfdiff's
/// tests and future suites want it too.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation from the median.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

fn summarize(trials: &[BTreeMap<String, f64>]) -> BTreeMap<String, MetricSummary> {
    let mut out = BTreeMap::new();
    let Some(first) = trials.first() else {
        return out;
    };
    for name in first.keys() {
        let samples: Vec<f64> = trials.iter().filter_map(|t| t.get(name)).copied().collect();
        out.insert(
            name.clone(),
            MetricSummary {
                median: median(&samples),
                mad: mad(&samples),
            },
        );
    }
    out
}

/// One cell of the benchmark matrix.
struct BenchCase {
    name: String,
    dataset: &'static str,
    solver: SolverKind,
    strategy: TaskStrategy,
}

fn matrix() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    for dataset in ["nba", "synthetic"] {
        let m = if dataset == "nba" { 15 } else { 50 };
        for (solver_name, solver) in [("adpll", SolverKind::Adpll), ("naive", SolverKind::Naive)] {
            for (strat_name, strategy) in [
                ("fbs", TaskStrategy::Fbs),
                ("ubs", TaskStrategy::Ubs),
                ("hhs", TaskStrategy::Hhs { m }),
            ] {
                cases.push(BenchCase {
                    name: format!("{dataset}/{solver_name}/{strat_name}"),
                    dataset,
                    solver,
                    strategy,
                });
            }
        }
    }
    cases
}

fn config_for(case: &BenchCase, scale: &PerfScale) -> BayesCrowdConfig {
    let mut cfg = if case.dataset == "nba" {
        BayesCrowdConfig {
            budget: scale.nba_budget,
            alpha: 0.01,
            ..BayesCrowdConfig::nba_defaults()
        }
    } else {
        BayesCrowdConfig {
            budget: scale.syn_budget,
            latency: 10,
            alpha: 0.01,
            ..BayesCrowdConfig::default()
        }
    };
    cfg.solver = case.solver;
    cfg.strategy = case.strategy;
    // Sequential on purpose — see the module docs: parallel chunking is
    // machine-dependent and would make the solver counters so too.
    cfg.parallel = false;
    cfg
}

fn workload_for(case: &BenchCase, scale: &PerfScale) -> Workload {
    if case.dataset == "nba" {
        Workload::nba(scale.nba_n, 0.1, 42)
    } else {
        Workload::synthetic(scale.syn_n, 0.1, 42)
    }
}

/// Runs one full BayesCrowd campaign and extracts the metric map from the
/// recorded event stream.
fn run_trial(
    workload: &Workload,
    config: &BayesCrowdConfig,
) -> Result<BTreeMap<String, f64>, String> {
    let oracle = GroundTruthOracle::new(workload.complete.clone());
    let mut platform = SimulatedPlatform::new(oracle, 0.95, 7);
    let mut rec = MetricsRecorder::new();
    match BayesCrowd::new(config.clone()).try_run(&workload.incomplete, &mut platform, &mut rec) {
        Ok(_) | Err(RunError::PlatformExhausted { .. }) => {}
        Err(e) => return Err(format!("run failed: {e}")),
    }
    Ok(collect_metrics(&rec))
}

fn collect_metrics(rec: &MetricsRecorder) -> BTreeMap<String, f64> {
    let c = rec.counters();
    let mut m = BTreeMap::new();
    m.insert("total_nanos".into(), rec.total_nanos() as f64);
    m.insert("unattributed_nanos".into(), rec.unattributed_nanos() as f64);
    for phase in RunPhase::ALL {
        m.insert(
            format!("{}_nanos", phase.name()),
            rec.phase_nanos(phase) as f64,
        );
    }
    m.insert("rounds".into(), c.rounds as f64);
    m.insert("tasks_posted".into(), c.posted as f64);
    m.insert("tasks_answered".into(), c.answered as f64);
    m.insert("probability_evals".into(), c.probability_evals as f64);
    m.insert("solver_calls".into(), c.solver_calls as f64);
    m.insert("solver_decisions".into(), c.solver_branches as f64);
    m.insert("solver_cache_hits".into(), c.solver_cache_hits as f64);
    m.insert("solver_cache_misses".into(), c.solver_cache_misses as f64);
    m.insert(
        "solver_component_splits".into(),
        c.solver_component_splits as f64,
    );
    m.insert(
        "solver_direct_components".into(),
        c.solver_direct_components as f64,
    );
    m.insert("solver_max_depth".into(), c.solver_max_depth as f64);
    m.insert("solver_fallbacks".into(), c.solver_fallbacks as f64);
    m.insert("conditions_decided".into(), c.conditions_decided as f64);
    for event in rec.events() {
        if let Event::CTableBuilt {
            candidates,
            bitset_words,
            ..
        } = event
        {
            m.insert("ctable_candidates".into(), *candidates as f64);
            m.insert("ctable_bitset_words".into(), *bitset_words as f64);
        }
    }
    m
}

/// Best-effort git revision without spawning a subprocess: follows
/// `.git/HEAD` through loose and packed refs.
pub fn git_rev(repo_root: &Path) -> String {
    let git = repo_root.join(".git");
    let Ok(head) = std::fs::read_to_string(git.join("HEAD")) else {
        return "unknown".into();
    };
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return head.to_string();
    };
    if let Ok(rev) = std::fs::read_to_string(git.join(refname)) {
        return rev.trim().to_string();
    }
    if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
        for line in packed.lines() {
            if let Some(rev) = line.strip_suffix(refname) {
                return rev.trim().to_string();
            }
        }
    }
    "unknown".into()
}

fn environment() -> BTreeMap<String, String> {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut env = BTreeMap::new();
    env.insert("os".into(), std::env::consts::OS.to_string());
    env.insert("arch".into(), std::env::consts::ARCH.to_string());
    env.insert("git_rev".into(), git_rev(&repo_root));
    env.insert(
        "profile".into(),
        if cfg!(debug_assertions) {
            "debug".into()
        } else {
            "release".into()
        },
    );
    env
}

/// Runs the full matrix and returns the summarized document. Progress
/// goes to stderr, one line per benchmark.
pub fn run_suite(opts: &PerfOptions) -> Result<BenchDoc, String> {
    if opts.trials == 0 {
        return Err("at least one trial is required".into());
    }
    let mut benchmarks = Vec::new();
    for case in matrix() {
        if let Some(f) = &opts.filter {
            if !case.name.contains(f.as_str()) {
                continue;
            }
        }
        let workload = workload_for(&case, &opts.scale);
        let config = config_for(&case, &opts.scale);
        for _ in 0..opts.warmup {
            run_trial(&workload, &config)?;
        }
        let mut trials = Vec::with_capacity(opts.trials);
        for _ in 0..opts.trials {
            trials.push(run_trial(&workload, &config)?);
        }
        let metrics = summarize(&trials);
        let total = metrics.get("total_nanos").map_or(0.0, |s| s.median);
        eprintln!("perf {}: total {:.1} ms median", case.name, total / 1e6);
        benchmarks.push(BenchRecord {
            name: case.name,
            metrics,
        });
    }
    Ok(BenchDoc {
        scale: opts.scale.name.clone(),
        trials: opts.trials,
        warmup: opts.warmup,
        env: environment(),
        benchmarks,
    })
}

impl BenchDoc {
    /// Serializes to the canonical [`Value`] tree.
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("bench_version", Value::Int(BENCH_VERSION)),
            ("scale", Value::Str(self.scale.clone())),
            ("trials", Value::Int(self.trials as i128)),
            ("warmup", Value::Int(self.warmup as i128)),
            (
                "env",
                Value::Map(
                    self.env
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "benchmarks",
                Value::List(
                    self.benchmarks
                        .iter()
                        .map(|b| {
                            Value::obj(vec![
                                ("name", Value::Str(b.name.clone())),
                                (
                                    "metrics",
                                    Value::Map(
                                        b.metrics
                                            .iter()
                                            .map(|(k, s)| {
                                                (
                                                    k.clone(),
                                                    Value::obj(vec![
                                                        ("median", Value::Float(s.median)),
                                                        ("mad", Value::Float(s.mad)),
                                                    ]),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Canonical JSON with a trailing newline; `parse` → `to_json` is
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json();
        s.push('\n');
        s
    }

    /// Parses a document produced by [`BenchDoc::to_json`].
    pub fn parse(input: &str) -> Result<BenchDoc, String> {
        let value = Value::parse(input.trim_end())?;
        let version = value
            .get("bench_version")
            .and_then(Value::as_int)
            .ok_or("missing bench_version")?;
        if version != BENCH_VERSION {
            return Err(format!("unsupported bench_version {version}"));
        }
        let str_field = |k: &str| -> Result<String, String> {
            Ok(value
                .get(k)
                .and_then(Value::as_str)
                .ok_or(format!("missing {k}"))?
                .to_string())
        };
        let usize_field = |k: &str| -> Result<usize, String> {
            value
                .get(k)
                .and_then(Value::as_usize)
                .ok_or(format!("missing {k}"))
        };
        let mut env = BTreeMap::new();
        for (k, v) in value
            .get("env")
            .and_then(Value::as_map)
            .ok_or("missing env")?
        {
            env.insert(
                k.clone(),
                v.as_str()
                    .ok_or(format!("env.{k} is not a string"))?
                    .to_string(),
            );
        }
        let mut benchmarks = Vec::new();
        for b in value
            .get("benchmarks")
            .and_then(Value::as_list)
            .ok_or("missing benchmarks")?
        {
            let name = b
                .get("name")
                .and_then(Value::as_str)
                .ok_or("benchmark missing name")?
                .to_string();
            let mut metrics = BTreeMap::new();
            for (k, v) in b
                .get("metrics")
                .and_then(Value::as_map)
                .ok_or("benchmark missing metrics")?
            {
                let median = v
                    .get("median")
                    .and_then(Value::as_f64)
                    .ok_or(format!("{name}.{k} missing median"))?;
                let mad = v
                    .get("mad")
                    .and_then(Value::as_f64)
                    .ok_or(format!("{name}.{k} missing mad"))?;
                metrics.insert(k.clone(), MetricSummary { median, mad });
            }
            benchmarks.push(BenchRecord { name, metrics });
        }
        Ok(BenchDoc {
            scale: str_field("scale")?,
            trials: usize_field("trials")?,
            warmup: usize_field("warmup")?,
            env,
            benchmarks,
        })
    }
}

/// One metric that moved past its threshold between two documents.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// Benchmark name.
    pub bench: String,
    /// Metric name.
    pub metric: String,
    /// Baseline median.
    pub old: f64,
    /// New median.
    pub new: f64,
    /// The largest new median that would have passed.
    pub allowed: f64,
}

/// Outcome of comparing two [`BenchDoc`]s.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Metrics that regressed beyond their noise threshold.
    pub regressions: Vec<DiffEntry>,
    /// Metrics that improved beyond the same threshold (informational).
    pub improvements: Vec<DiffEntry>,
    /// Benchmarks or metrics present in the baseline but absent from the
    /// new document — coverage loss is treated as a failure.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// True when nothing regressed and nothing went missing.
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// The increase over the baseline median that is still considered noise.
///
/// Wall-clock metrics (`*_nanos`) get a generous band — the committed
/// baseline usually comes from different hardware than CI — while
/// counters, which sequential runs make deterministic, are held tight.
pub fn allowed_increase(metric: &str, old: &MetricSummary) -> f64 {
    if metric.ends_with("_nanos") {
        (5.0 * old.mad).max(0.5 * old.median.abs()).max(5e7)
    } else {
        (4.0 * old.mad).max(0.15 * old.median.abs()).max(2.0)
    }
}

/// Compares `new` against the `old` baseline. Extra benchmarks or
/// metrics in `new` are ignored (they will enter the baseline when it is
/// regenerated); anything missing from `new` is flagged.
pub fn diff(old: &BenchDoc, new: &BenchDoc) -> DiffReport {
    let mut report = DiffReport::default();
    for old_bench in &old.benchmarks {
        let Some(new_bench) = new.benchmarks.iter().find(|b| b.name == old_bench.name) else {
            report.missing.push(old_bench.name.clone());
            continue;
        };
        for (metric, old_summary) in &old_bench.metrics {
            let Some(new_summary) = new_bench.metrics.get(metric) else {
                report.missing.push(format!("{}::{metric}", old_bench.name));
                continue;
            };
            let band = allowed_increase(metric, old_summary);
            let entry = DiffEntry {
                bench: old_bench.name.clone(),
                metric: metric.clone(),
                old: old_summary.median,
                new: new_summary.median,
                allowed: old_summary.median + band,
            };
            if new_summary.median > old_summary.median + band {
                report.regressions.push(entry);
            } else if new_summary.median < old_summary.median - band {
                report.improvements.push(entry);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> BenchDoc {
        let mut metrics = BTreeMap::new();
        metrics.insert(
            "solver_decisions".to_string(),
            MetricSummary {
                median: 420.0,
                mad: 0.0,
            },
        );
        metrics.insert(
            "total_nanos".to_string(),
            MetricSummary {
                median: 2.5e8,
                mad: 1.0e6,
            },
        );
        let mut env = BTreeMap::new();
        env.insert("os".to_string(), "linux".to_string());
        env.insert("arch".to_string(), "x86_64".to_string());
        env.insert("git_rev".to_string(), "deadbeef".to_string());
        env.insert("profile".to_string(), "release".to_string());
        BenchDoc {
            scale: "tiny".to_string(),
            trials: 3,
            warmup: 1,
            env,
            benchmarks: vec![BenchRecord {
                name: "nba/adpll/hhs".to_string(),
                metrics,
            }],
        }
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mad(&[10.0, 10.0, 10.0]), 0.0);
        assert_eq!(mad(&[1.0, 2.0, 9.0]), 1.0);
    }

    #[test]
    fn doc_round_trip_is_byte_identical() {
        let doc = sample_doc();
        let json = doc.to_json();
        let parsed = BenchDoc::parse(&json).expect("canonical JSON parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn parse_rejects_other_versions_and_junk() {
        assert!(BenchDoc::parse("{}").is_err());
        assert!(BenchDoc::parse("not json").is_err());
        let json = sample_doc().to_json();
        let other = json.replace("\"bench_version\":1,", "\"bench_version\":999,");
        assert_ne!(other, json, "version field not found to perturb");
        assert!(BenchDoc::parse(&other).is_err());
    }

    #[test]
    fn self_diff_is_clean_and_perturbation_is_caught() {
        let doc = sample_doc();
        assert!(diff(&doc, &doc).is_ok());

        // A doubled deterministic counter is a regression…
        let mut slow = doc.clone();
        slow.benchmarks[0]
            .metrics
            .get_mut("solver_decisions")
            .unwrap()
            .median = 840.0;
        let d = diff(&doc, &slow);
        assert!(!d.is_ok());
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].metric, "solver_decisions");

        // …while small counter jitter and moderate wall-clock noise are not.
        let mut noisy = doc.clone();
        noisy.benchmarks[0]
            .metrics
            .get_mut("solver_decisions")
            .unwrap()
            .median = 421.0;
        noisy.benchmarks[0]
            .metrics
            .get_mut("total_nanos")
            .unwrap()
            .median = 3.0e8;
        assert!(diff(&doc, &noisy).is_ok());

        // A vanished benchmark is coverage loss, not a pass.
        let mut gone = doc.clone();
        gone.benchmarks.clear();
        assert!(!diff(&doc, &gone).is_ok());
    }

    #[test]
    fn improvements_are_reported_but_pass() {
        let doc = sample_doc();
        let mut fast = doc.clone();
        fast.benchmarks[0]
            .metrics
            .get_mut("solver_decisions")
            .unwrap()
            .median = 100.0;
        let d = diff(&doc, &fast);
        assert!(d.is_ok());
        assert_eq!(d.improvements.len(), 1);
    }

    #[test]
    fn suite_smoke_run_produces_solver_counters() {
        // One matrix cell at a micro scale: asserts the full pipeline
        // (run → events → metrics → summary) end to end.
        let opts = PerfOptions {
            scale: PerfScale::tiny(),
            trials: 2,
            warmup: 0,
            filter: Some("nba/adpll/hhs".into()),
        };
        let doc = run_suite(&opts).expect("suite runs");
        assert_eq!(doc.benchmarks.len(), 1);
        let metrics = &doc.benchmarks[0].metrics;
        for key in [
            "total_nanos",
            "solver_decisions",
            "solver_cache_hits",
            "solver_cache_misses",
            "ctable_candidates",
            "rounds",
        ] {
            assert!(metrics.contains_key(key), "missing {key}");
        }
        // Sequential runs keep counters deterministic across trials.
        assert_eq!(metrics["solver_decisions"].mad, 0.0);
        assert!(metrics["rounds"].median >= 1.0);
        let json = doc.to_json();
        let reparsed = BenchDoc::parse(&json).unwrap();
        assert_eq!(reparsed.to_json(), json);
    }
}
