//! Regression gate over two BENCH.json documents.
//!
//! ```text
//! perfdiff BASELINE.json NEW.json
//! ```
//!
//! Exit codes: 0 — no regression; 1 — at least one metric regressed
//! beyond its noise threshold (or baseline coverage went missing);
//! 2 — usage or parse error.

use bc_bench::perf::{diff, BenchDoc};
use std::process::ExitCode;

fn load(path: &str) -> Result<BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: perfdiff BASELINE.json NEW.json");
        return ExitCode::from(2);
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if old.scale != new.scale {
        eprintln!(
            "warning: comparing scale {:?} against {:?} — thresholds assume like-for-like runs",
            old.scale, new.scale
        );
    }
    let report = diff(&old, &new);
    for entry in &report.improvements {
        println!(
            "improved  {}::{}  {:.1} -> {:.1}",
            entry.bench, entry.metric, entry.old, entry.new
        );
    }
    for name in &report.missing {
        println!("missing   {name} (present in baseline, absent in new)");
    }
    for entry in &report.regressions {
        println!(
            "REGRESSED {}::{}  {:.1} -> {:.1} (allowed up to {:.1})",
            entry.bench, entry.metric, entry.old, entry.new, entry.allowed
        );
    }
    if report.is_ok() {
        println!(
            "ok: {} benchmark(s) within thresholds, {} improvement(s)",
            old.benchmarks.len(),
            report.improvements.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} regression(s), {} missing",
            report.regressions.len(),
            report.missing.len()
        );
        ExitCode::FAILURE
    }
}
