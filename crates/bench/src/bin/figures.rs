//! Command-line entry point regenerating the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p bc-bench --bin figures -- all
//! cargo run --release -p bc-bench --bin figures -- fig4 fig5 --json out.json
//! cargo run --release -p bc-bench --bin figures -- all --scale paper
//! ```

use bc_bench::experiments;
use bc_bench::{print_rows, rows_to_json_pretty, Row, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: figures [all | fig2 .. fig11 | table6 | ext_model | ext_ranking | ext_baselines | ext_faults | ext_phases]... [--scale small|paper] [--json PATH] [--trace PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments_requested: Vec<String> = Vec::new();
    let mut scale = Scale::small();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("small") => scale = Scale::small(),
                    Some("paper") => scale = Scale::paper(),
                    _ => usage(),
                }
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            other if other.starts_with("--") => usage(),
            other => experiments_requested.push(other.to_string()),
        }
        i += 1;
    }
    // `--trace` alone is a valid invocation (one traced run, no tables).
    if experiments_requested.is_empty() && trace_path.is_none() {
        experiments_requested.push("all".into());
    }

    let mut rows: Vec<Row> = Vec::new();
    for exp in &experiments_requested {
        let produced = match exp.as_str() {
            "all" => experiments::all(&scale),
            "fig2" => experiments::fig2(&scale),
            "fig3" => experiments::fig3(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig5" => experiments::fig5(&scale),
            "fig6" => experiments::fig6(&scale),
            "fig7" => experiments::fig7(&scale),
            "fig8" => experiments::fig8(&scale),
            "fig9" => experiments::fig9(&scale),
            "fig10" => experiments::fig10(&scale),
            "fig11" => experiments::fig11(&scale),
            "table6" => experiments::table6(&scale),
            "ext_model" => experiments::ext_model(&scale),
            "ext_ranking" => experiments::ext_ranking(&scale),
            "ext_baselines" => experiments::ext_baselines(&scale),
            "ext_faults" => experiments::ext_faults(&scale),
            "ext_phases" => experiments::ext_phases(&scale),
            _ => usage(),
        };
        rows.extend(produced);
    }

    print_rows(&rows);

    if let Some(path) = json_path {
        let json = rows_to_json_pretty(&rows);
        std::fs::write(&path, json).expect("writing the JSON dump");
        eprintln!("wrote {path}");
    }
    if let Some(path) = trace_path {
        let n = experiments::write_trace(&scale, &path).expect("writing the trace");
        eprintln!("wrote {n} trace events to {path}");
    }
}
