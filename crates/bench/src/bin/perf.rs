//! Perf-suite entry point: runs the fixed benchmark matrix and writes a
//! BENCH.json regression document.
//!
//! ```text
//! cargo run --release -p bc-bench --bin perf -- --scale small --json BENCH.json
//! ```

use bc_bench::perf::{run_suite, PerfOptions, PerfScale};
use std::process::ExitCode;

const USAGE: &str = "usage: perf [--scale tiny|small] [--trials N] [--warmup N] \
                     [--filter SUBSTRING] [--json PATH]";

fn parse_args() -> Result<(PerfOptions, String), String> {
    let mut opts = PerfOptions::default();
    let mut json = "BENCH.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scale" => {
                let name = value("--scale")?;
                opts.scale = PerfScale::by_name(&name)
                    .ok_or(format!("unknown scale {name:?} (tiny or small)"))?;
            }
            "--trials" => {
                opts.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("bad --trials: {e}"))?;
            }
            "--warmup" => {
                opts.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?;
            }
            "--filter" => opts.filter = Some(value("--filter")?),
            "--json" => json = value("--json")?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok((opts, json))
}

fn main() -> ExitCode {
    let (opts, json_path) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "perf suite: scale {}, {} trial(s), {} warmup",
        opts.scale.name, opts.trials, opts.warmup
    );
    let doc = match run_suite(&opts) {
        Ok(doc) => doc,
        Err(msg) => {
            eprintln!("perf suite failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&json_path, doc.to_json()) {
        eprintln!("cannot write {json_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {json_path}: {} benchmark(s) at scale {} (git {})",
        doc.benchmarks.len(),
        doc.scale,
        doc.env.get("git_rev").map_or("unknown", String::as_str)
    );
    for bench in &doc.benchmarks {
        let total = bench.metrics.get("total_nanos");
        let decisions = bench.metrics.get("solver_decisions");
        println!(
            "  {:<24} total {:>9.1} ms ±{:<7.1} decisions {:>9.0}",
            bench.name,
            total.map_or(0.0, |s| s.median) / 1e6,
            total.map_or(0.0, |s| s.mad) / 1e6,
            decisions.map_or(0.0, |s| s.median),
        );
    }
    ExitCode::SUCCESS
}
