#![warn(missing_docs)]
//! Simulated crowdsourcing platform.
//!
//! Stands in for Amazon Mechanical Turk in the paper's experiments. A crowd
//! *task* is a triple-choice question — "is the (hidden) value larger than,
//! smaller than, or equal to the other operand?" — derived from one c-table
//! expression. Tasks are posted **in batches** (one batch per round; the
//! number of rounds is the paper's latency measure), each task is assigned
//! to several workers whose per-answer accuracy is configurable, and the
//! returned answers are combined by majority voting, exactly as in
//! Section 7's setup (3 workers per task, accuracy 1.0 by default).
//!
//! Beyond the fault-free simulator, the crate models a *realistic* market:
//! the [`CrowdPlatform`] trait reports per-task partial results
//! ([`TaskOutcome`]: answered, expired, or inconsistent), [`FaultyPlatform`]
//! decorates any platform with seeded fault injection (expiry, attrition,
//! spammers, stragglers, duplicates), and [`RetryPolicy`] describes how the
//! framework re-queues failed tasks under its budget and latency caps.

pub mod cost;
pub mod fault;
pub mod oracle;
pub mod platform;
pub mod pool;
pub mod retry;
pub mod state;
pub mod task;
pub mod unary;
pub mod vote;
pub mod worker;

pub use cost::CostModel;
pub use fault::{FaultConfig, FaultStats, FaultyPlatform, SpammerKind};
pub use oracle::GroundTruthOracle;
pub use platform::{CrowdPlatform, CrowdStats, SimulatedPlatform};
pub use pool::WorkerPool;
pub use retry::RetryPolicy;
pub use state::{PlatformState, PlatformStateError};
pub use task::{Task, TaskAnswer, TaskOutcome, TaskResult};
pub use unary::UnaryTask;
pub use vote::{majority_vote, vote_with_tie_break};
pub use worker::Worker;
