#![warn(missing_docs)]
//! Simulated crowdsourcing platform.
//!
//! Stands in for Amazon Mechanical Turk in the paper's experiments. A crowd
//! *task* is a triple-choice question — "is the (hidden) value larger than,
//! smaller than, or equal to the other operand?" — derived from one c-table
//! expression. Tasks are posted **in batches** (one batch per round; the
//! number of rounds is the paper's latency measure), each task is assigned
//! to several workers whose per-answer accuracy is configurable, and the
//! returned answers are combined by majority voting, exactly as in
//! Section 7's setup (3 workers per task, accuracy 1.0 by default).

pub mod cost;
pub mod oracle;
pub mod platform;
pub mod pool;
pub mod task;
pub mod unary;
pub mod vote;
pub mod worker;

pub use cost::CostModel;
pub use oracle::GroundTruthOracle;
pub use platform::{CrowdStats, SimulatedPlatform};
pub use pool::WorkerPool;
pub use task::{Task, TaskAnswer};
pub use unary::UnaryTask;
pub use worker::Worker;
