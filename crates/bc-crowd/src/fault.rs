//! Fault injection for crowd platforms.
//!
//! Real crowdsourcing markets misbehave in ways the paper's simulator does
//! not: tasks expire unanswered, the workforce thins out mid-campaign,
//! spammers submit fixed or adversarial answers, rounds straggle past their
//! deadline, and duplicate submissions conflict. [`FaultyPlatform`] wraps any
//! [`CrowdPlatform`] and injects exactly these failures from a seeded RNG, so
//! a degraded run is reproducible and can be compared against its fault-free
//! twin on the same seed.

use crate::platform::{CrowdPlatform, CrowdStats};
use crate::state::{PlatformState, PlatformStateError};
use crate::task::{Task, TaskOutcome, TaskResult};
use bc_ctable::Relation;
use bc_data::Dataset;
use rand::{Rng, SeedableRng};

/// What a spammer worker submits instead of an honest answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpammerKind {
    /// Always the same relation, regardless of the question ("always click
    /// the first option").
    Fixed(Relation),
    /// Always the *inverted* truth: `Lt` ↔ `Gt`, and `Eq` reported as `Gt`.
    /// The worst case for majority voting, since adversarial answers
    /// correlate with each other instead of cancelling out.
    Adversarial,
}

impl SpammerKind {
    /// The spammer's answer given the (voted) honest answer.
    fn corrupt(self, honest: Relation) -> Relation {
        match self {
            SpammerKind::Fixed(r) => r,
            SpammerKind::Adversarial => match honest {
                Relation::Lt => Relation::Gt,
                Relation::Gt => Relation::Lt,
                Relation::Eq => Relation::Gt,
            },
        }
    }
}

/// Tunable fault model. All rates are probabilities in `[0, 1]`; the
/// default injects nothing, so `FaultyPlatform::new(p, FaultConfig::default(), s)`
/// behaves exactly like `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-task probability that no answer arrives before the round closes
    /// ([`TaskOutcome::Expired`]).
    pub expiry_prob: f64,
    /// Fraction of the remaining workforce lost after each round. Attrition
    /// compounds: with attrition `a`, round `r` answers tasks with
    /// probability `(1 - expiry_prob) · (1 - a)^r`. At `1.0` the entire
    /// workforce quits after the first round and every later task expires.
    pub attrition: f64,
    /// Per-answered-task probability that a spammer's vote displaced the
    /// honest one.
    pub spammer_rate: f64,
    /// What the spammers submit.
    pub spammer_kind: SpammerKind,
    /// Per-round probability that the round straggles — workers are slow
    /// and the batch consumes `straggler_penalty` extra rounds of latency.
    pub straggler_prob: f64,
    /// Extra rounds a straggling batch costs (≥ 1 to matter).
    pub straggler_penalty: usize,
    /// Per-answered-task probability that duplicate, conflicting
    /// resubmissions cancel the vote out ([`TaskOutcome::Inconsistent`]).
    pub duplicate_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            expiry_prob: 0.0,
            attrition: 0.0,
            spammer_rate: 0.0,
            spammer_kind: SpammerKind::Adversarial,
            straggler_prob: 0.0,
            straggler_penalty: 1,
            duplicate_prob: 0.0,
        }
    }
}

/// Counts of the faults a [`FaultyPlatform`] actually injected — what the
/// RNG drew, as opposed to the configured rates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Tasks withheld from the inner platform (expiry or attrition).
    pub expired_injected: usize,
    /// Honest answers displaced by a spammer's vote.
    pub spam_injected: usize,
    /// Answers cancelled out by duplicate conflicting submissions.
    pub duplicates_injected: usize,
    /// Rounds that straggled past their deadline.
    pub straggler_rounds: usize,
}

impl FaultConfig {
    /// Panics unless every rate is a probability.
    fn validate(&self) {
        for (name, p) in [
            ("expiry_prob", self.expiry_prob),
            ("attrition", self.attrition),
            ("spammer_rate", self.spammer_rate),
            ("straggler_prob", self.straggler_prob),
            ("duplicate_prob", self.duplicate_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
    }
}

/// A decorator that injects seeded-RNG faults into any [`CrowdPlatform`].
///
/// Expired tasks never reach the inner platform (nobody answered, so nobody
/// is paid), but they still count as posted and the batch still burns its
/// round of latency — failure is not free. Spam and duplicate corruption
/// happen *after* the inner platform resolves its vote, modelling a spammer
/// whose answer displaced the honest majority.
#[derive(Debug)]
pub struct FaultyPlatform<P> {
    inner: P,
    cfg: FaultConfig,
    rng: rand::rngs::StdRng,
    /// Fraction of the original workforce still active (decays by
    /// `cfg.attrition` per round).
    workforce: f64,
    /// Stats for what the inner platform never saw: expired postings and
    /// straggler rounds.
    overlay: CrowdStats,
    faults: FaultStats,
}

impl<P: CrowdPlatform> FaultyPlatform<P> {
    /// Wraps `inner`, injecting faults drawn from a dedicated RNG seeded
    /// with `seed` (independent of the inner platform's seed).
    ///
    /// # Panics
    ///
    /// Panics if any rate in `cfg` is outside `[0, 1]`.
    pub fn new(inner: P, cfg: FaultConfig, seed: u64) -> FaultyPlatform<P> {
        cfg.validate();
        FaultyPlatform {
            inner,
            cfg,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            workforce: 1.0,
            overlay: CrowdStats::default(),
            faults: FaultStats::default(),
        }
    }

    /// Counts of the faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// The wrapped platform.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Fraction of the original workforce still answering tasks.
    pub fn workforce(&self) -> f64 {
        self.workforce
    }
}

impl<P: CrowdPlatform> CrowdPlatform for FaultyPlatform<P> {
    fn post_round(&mut self, tasks: &[Task]) -> Vec<TaskResult> {
        if tasks.is_empty() {
            return Vec::new();
        }

        // Straggling workers: the batch consumes extra latency up front.
        if self.cfg.straggler_prob > 0.0 && self.rng.gen_bool(self.cfg.straggler_prob) {
            self.overlay.rounds += self.cfg.straggler_penalty;
            self.faults.straggler_rounds += 1;
        }

        // Decide per task whether anyone answers at all. Expired tasks are
        // withheld from the inner platform but still count as posted.
        let answer_prob = ((1.0 - self.cfg.expiry_prob) * self.workforce).clamp(0.0, 1.0);
        let mut survived = Vec::with_capacity(tasks.len());
        let mut expired = vec![false; tasks.len()];
        for (i, task) in tasks.iter().enumerate() {
            if self.rng.gen_bool(answer_prob) {
                survived.push(*task);
            } else {
                expired[i] = true;
            }
        }
        self.overlay.tasks_posted += tasks.len() - survived.len();
        self.faults.expired_injected += tasks.len() - survived.len();

        let mut inner_results = if survived.is_empty() {
            // The whole batch expired: the round still happened and still
            // costs latency, even though the inner platform never saw it.
            self.overlay.rounds += 1;
            Vec::new()
        } else {
            self.inner.post_round(&survived)
        }
        .into_iter();

        // Merge back in posting order, corrupting answered tasks.
        let mut out = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.iter().enumerate() {
            if expired[i] {
                out.push(TaskResult {
                    task: *task,
                    outcome: TaskOutcome::Expired,
                });
                continue;
            }
            let inner = inner_results
                .next()
                .expect("inner platform returns one result per posted task");
            let outcome = match inner.outcome {
                TaskOutcome::Answered(honest) => {
                    if self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob) {
                        self.faults.duplicates_injected += 1;
                        TaskOutcome::Inconsistent
                    } else if self.cfg.spammer_rate > 0.0
                        && self.rng.gen_bool(self.cfg.spammer_rate)
                    {
                        self.faults.spam_injected += 1;
                        TaskOutcome::Answered(self.cfg.spammer_kind.corrupt(honest))
                    } else {
                        TaskOutcome::Answered(honest)
                    }
                }
                other => other,
            };
            out.push(TaskResult {
                task: *task,
                outcome,
            });
        }

        // Attrition takes effect between rounds.
        self.workforce *= 1.0 - self.cfg.attrition;
        out
    }

    fn escalate(&mut self, extra: usize) {
        self.inner.escalate(extra);
    }

    fn stats(&self) -> CrowdStats {
        let inner = self.inner.stats();
        CrowdStats {
            tasks_posted: inner.tasks_posted + self.overlay.tasks_posted,
            rounds: inner.rounds + self.overlay.rounds,
            worker_answers: inner.worker_answers,
            money_spent: inner.money_spent,
        }
    }

    fn ground_truth(&self) -> Option<&Dataset> {
        self.inner.ground_truth()
    }

    fn save_state(&self) -> Option<PlatformState> {
        Some(PlatformState::Faulty {
            rng: self.rng.state(),
            workforce: self.workforce,
            overlay: self.overlay,
            faults: self.faults,
            inner: Box::new(self.inner.save_state()?),
        })
    }

    fn load_state(&mut self, state: &PlatformState) -> Result<(), PlatformStateError> {
        match state {
            PlatformState::Faulty {
                rng,
                workforce,
                overlay,
                faults,
                inner,
            } => {
                self.inner.load_state(inner)?;
                self.rng = rand::rngs::StdRng::from_state(*rng);
                self.workforce = *workforce;
                self.overlay = *overlay;
                self.faults = *faults;
                Ok(())
            }
            _ => Err(PlatformStateError::Mismatch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::platform::SimulatedPlatform;
    use bc_ctable::Operand;
    use bc_data::generators::sample::paper_completion;
    use bc_data::VarId;

    fn perfect_inner(seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 1.0, seed)
    }

    fn task(o: u32, a: u16, c: u16) -> Task {
        Task {
            var: VarId::new(o, a),
            rhs: Operand::Const(c),
        }
    }

    fn post(p: &mut impl CrowdPlatform, tasks: &[Task]) -> Vec<TaskResult> {
        p.post_round(tasks)
    }

    #[test]
    fn default_config_injects_nothing() {
        let mut faulty = FaultyPlatform::new(perfect_inner(3), FaultConfig::default(), 11);
        let r = post(&mut faulty, &[task(4, 3, 4), task(4, 2, 3)]);
        assert_eq!(r[0].outcome, TaskOutcome::Answered(Relation::Lt));
        assert_eq!(r[1].outcome, TaskOutcome::Answered(Relation::Eq));
        let s = faulty.stats();
        assert_eq!(s, faulty.inner().stats(), "no overlay without faults");
        assert_eq!(s.tasks_posted, 2);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn expiry_withholds_tasks_but_charges_posting_and_latency() {
        let cfg = FaultConfig {
            expiry_prob: 0.4,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(3), cfg, 17);
        let batch: Vec<Task> = (0..50).map(|i| task(4, 3, i as u16)).collect();
        let results = post(&mut faulty, &batch);
        assert_eq!(results.len(), 50, "one result per posted task");
        let expired = results
            .iter()
            .filter(|r| r.outcome == TaskOutcome::Expired)
            .count();
        assert!(
            (8..=32).contains(&expired),
            "~40% of 50 should expire, got {expired}"
        );
        let s = faulty.stats();
        assert_eq!(s.tasks_posted, 50, "expired tasks still count as posted");
        assert_eq!(s.rounds, 1);
        // Nobody answered an expired task, so nobody was paid for it.
        assert_eq!(s.worker_answers, (50 - expired) * 3);
        assert_eq!(s.money_spent, ((50 - expired) * 3) as u64);
        // Results stay in posting order.
        for (r, t) in results.iter().zip(&batch) {
            assert_eq!(r.task, *t);
        }
    }

    #[test]
    fn full_expiry_round_still_burns_latency() {
        let cfg = FaultConfig {
            expiry_prob: 1.0,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(3), cfg, 5);
        let r = post(&mut faulty, &[task(4, 3, 4)]);
        assert_eq!(r[0].outcome, TaskOutcome::Expired);
        let s = faulty.stats();
        assert_eq!(s.rounds, 1, "an all-expired batch is still a round");
        assert_eq!(s.tasks_posted, 1);
        assert_eq!(s.worker_answers, 0);
    }

    #[test]
    fn total_attrition_kills_the_workforce_after_round_one() {
        let cfg = FaultConfig {
            attrition: 1.0,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(3), cfg, 5);
        let first = post(&mut faulty, &[task(4, 3, 4)]);
        assert_eq!(first[0].outcome, TaskOutcome::Answered(Relation::Lt));
        assert_eq!(faulty.workforce(), 0.0);
        let second = post(&mut faulty, &[task(4, 2, 3), task(1, 1, 3)]);
        assert!(second.iter().all(|r| r.outcome == TaskOutcome::Expired));
    }

    #[test]
    fn adversarial_spammers_invert_every_answer() {
        let cfg = FaultConfig {
            spammer_rate: 1.0,
            spammer_kind: SpammerKind::Adversarial,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(3), cfg, 5);
        let r = post(&mut faulty, &[task(4, 3, 4), task(4, 2, 3)]);
        // Truth Lt → reported Gt; truth Eq → reported Gt.
        assert_eq!(r[0].outcome, TaskOutcome::Answered(Relation::Gt));
        assert_eq!(r[1].outcome, TaskOutcome::Answered(Relation::Gt));
    }

    #[test]
    fn fixed_spammers_always_answer_the_same() {
        let cfg = FaultConfig {
            spammer_rate: 1.0,
            spammer_kind: SpammerKind::Fixed(Relation::Eq),
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(5), cfg, 5);
        let r = post(&mut faulty, &[task(4, 3, 4), task(1, 1, 2)]);
        assert!(r
            .iter()
            .all(|r| r.outcome == TaskOutcome::Answered(Relation::Eq)));
    }

    #[test]
    fn duplicates_turn_answers_inconsistent() {
        let cfg = FaultConfig {
            duplicate_prob: 1.0,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(5), cfg, 5);
        let r = post(&mut faulty, &[task(4, 3, 4)]);
        assert_eq!(r[0].outcome, TaskOutcome::Inconsistent);
    }

    #[test]
    fn stragglers_add_latency_without_touching_answers() {
        let cfg = FaultConfig {
            straggler_prob: 1.0,
            straggler_penalty: 2,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(5), cfg, 5);
        let r = post(&mut faulty, &[task(4, 3, 4)]);
        assert_eq!(r[0].outcome, TaskOutcome::Answered(Relation::Lt));
        // 1 real round + 2 straggler rounds.
        assert_eq!(faulty.stats().rounds, 3);
        assert_eq!(faulty.stats().tasks_posted, 1);
    }

    #[test]
    fn fault_stats_count_injected_faults() {
        let cfg = FaultConfig {
            duplicate_prob: 1.0,
            straggler_prob: 1.0,
            straggler_penalty: 2,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(5), cfg, 5);
        assert_eq!(faulty.fault_stats(), FaultStats::default());
        post(&mut faulty, &[task(4, 3, 4), task(4, 2, 3)]);
        let f = faulty.fault_stats();
        assert_eq!(f.duplicates_injected, 2);
        assert_eq!(f.straggler_rounds, 1);
        assert_eq!(f.expired_injected, 0);
        assert_eq!(f.spam_injected, 0);

        let all_expire = FaultConfig {
            expiry_prob: 1.0,
            ..FaultConfig::default()
        };
        let mut faulty = FaultyPlatform::new(perfect_inner(5), all_expire, 5);
        post(&mut faulty, &[task(4, 3, 4), task(4, 2, 3)]);
        assert_eq!(faulty.fault_stats().expired_injected, 2);
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let cfg = FaultConfig {
            expiry_prob: 0.3,
            spammer_rate: 0.2,
            duplicate_prob: 0.1,
            ..FaultConfig::default()
        };
        let run = |seed: u64| {
            let mut f = FaultyPlatform::new(perfect_inner(3), cfg, seed);
            (0..10)
                .map(|i| post(&mut f, &[task(4, 3, i as u16)])[0].outcome)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn escalation_and_ground_truth_delegate_to_inner() {
        let mut faulty = FaultyPlatform::new(perfect_inner(3), FaultConfig::default(), 11);
        assert_eq!(faulty.ground_truth(), Some(&paper_completion()));
        post(&mut faulty, &[task(4, 3, 4)]);
        faulty.escalate(2);
        post(&mut faulty, &[task(4, 3, 4)]);
        assert_eq!(faulty.stats().worker_answers, 3 + 5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rates_are_rejected() {
        let cfg = FaultConfig {
            expiry_prob: 1.5,
            ..FaultConfig::default()
        };
        let _ = FaultyPlatform::new(perfect_inner(3), cfg, 0);
    }

    #[test]
    fn saved_state_nests_and_continues_the_fault_stream() {
        let cfg = FaultConfig {
            expiry_prob: 0.3,
            attrition: 0.05,
            spammer_rate: 0.2,
            straggler_prob: 0.2,
            duplicate_prob: 0.1,
            ..FaultConfig::default()
        };
        let mut original = FaultyPlatform::new(perfect_inner(3), cfg, 21);
        for i in 0..4 {
            post(&mut original, &[task(4, 3, i)]);
        }
        let state = original.save_state().expect("both layers save");
        assert!(matches!(state, PlatformState::Faulty { .. }));

        let mut restored = FaultyPlatform::new(perfect_inner(3), cfg, 21);
        restored.load_state(&state).unwrap();
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.fault_stats(), original.fault_stats());
        for i in 0..10 {
            assert_eq!(
                post(&mut original, &[task(4, 3, i % 5), task(4, 1, i % 5)]),
                post(&mut restored, &[task(4, 3, i % 5), task(4, 1, i % 5)])
            );
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn load_state_rejects_an_unwrapped_state() {
        let mut faulty = FaultyPlatform::new(perfect_inner(3), FaultConfig::default(), 5);
        let bare = perfect_inner(3).save_state().unwrap();
        assert_eq!(faulty.load_state(&bare), Err(PlatformStateError::Mismatch));
    }
}
