//! The crowd-platform abstraction and its simulated implementation: batch
//! posting, worker assignment, voting, and cost/latency accounting.

use crate::cost::CostModel;
use crate::oracle::GroundTruthOracle;
use crate::pool::WorkerPool;
use crate::state::{PlatformState, PlatformStateError};
use crate::task::{Task, TaskAnswer, TaskOutcome, TaskResult};
use crate::vote::{majority_vote, vote_with_tie_break};
use crate::worker::Worker;
use bc_ctable::Relation;
use bc_data::Dataset;
use rand::SeedableRng;

/// Monetary-cost and latency accounting, as the paper measures them: cost =
/// number of posted tasks, latency = number of posting rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrowdStats {
    /// Total tasks posted.
    pub tasks_posted: usize,
    /// Total rounds (task-selection iterations). Platforms that model
    /// stragglers may charge more than one round per posted batch.
    pub rounds: usize,
    /// Individual worker answers collected.
    pub worker_answers: usize,
    /// Money spent under the platform's [`CostModel`] (each worker answer
    /// of a task is paid its price).
    pub money_spent: u64,
}

/// A crowdsourcing market the framework can post task batches to.
///
/// The contract mirrors a real platform, not the ideal one: a posted task
/// is *not* guaranteed an answer. Each round returns one [`TaskResult`] per
/// task — answered, expired, or inconsistent — and it is the caller's job
/// (see the framework's retry policy) to decide what failed tasks are worth.
///
/// Implementations must keep [`CrowdPlatform::stats`] consistent with what
/// actually happened: every posted task counts toward `tasks_posted` (even
/// if it expires), every non-empty batch consumes at least one round, and
/// every collected worker answer is both counted and paid.
pub trait CrowdPlatform {
    /// Posts one batch (= one round/iteration) of tasks and returns one
    /// result per task, in posting order. An empty batch does not count as
    /// a round.
    fn post_round(&mut self, tasks: &[Task]) -> Vec<TaskResult>;

    /// Recruits `extra` additional workers per task for all subsequent
    /// rounds — the retry policy's escalation hook. Platforms without
    /// adjustable staffing may ignore it (the default does).
    fn escalate(&mut self, extra: usize) {
        let _ = extra;
    }

    /// Accumulated cost/latency statistics.
    fn stats(&self) -> CrowdStats;

    /// The hidden complete dataset, when the platform knows it. Used only
    /// to score a run against ground truth; real or mock platforms return
    /// `None` and reports simply carry no accuracy.
    fn ground_truth(&self) -> Option<&Dataset> {
        None
    }

    /// Captures the platform's mutable state for a durable checkpoint, or
    /// `None` when the platform has nothing it can promise to restore (the
    /// default). Construction-time configuration is *not* part of the
    /// state; see [`crate::PlatformState`].
    fn save_state(&self) -> Option<PlatformState> {
        None
    }

    /// Restores mutable state previously captured by
    /// [`CrowdPlatform::save_state`] onto a freshly constructed platform of
    /// the same shape and configuration. The default refuses.
    fn load_state(&mut self, state: &PlatformState) -> Result<(), PlatformStateError> {
        let _ = state;
        Err(PlatformStateError::Unsupported)
    }
}

/// A simulated crowdsourcing market.
///
/// Each posted task is answered by `workers_per_task` independent workers of
/// the configured accuracy and resolved by majority voting. Via
/// [`CrowdPlatform`] a vote without a strict plurality is reported as
/// [`TaskOutcome::Inconsistent`]; the inherent [`SimulatedPlatform::post_round`]
/// convenience API instead breaks ties at random (the legacy fault-free
/// behaviour baselines rely on).
#[derive(Debug)]
pub struct SimulatedPlatform {
    oracle: GroundTruthOracle,
    staffing: Staffing,
    workers_per_task: usize,
    retry_workers: usize,
    escalated: usize,
    cost_model: CostModel,
    rng: rand::rngs::StdRng,
    stats: CrowdStats,
    log: Vec<TaskAnswer>,
}

/// Who answers the tasks: one accuracy for everyone, or a heterogeneous
/// pool with random assignment.
#[derive(Clone, Debug)]
enum Staffing {
    Homogeneous(Worker),
    Pool(WorkerPool),
}

impl SimulatedPlatform {
    /// A platform with the paper's default setup: 3 workers per task.
    pub fn new(oracle: GroundTruthOracle, worker_accuracy: f64, seed: u64) -> SimulatedPlatform {
        SimulatedPlatform::with_workers(oracle, worker_accuracy, 3, seed)
    }

    /// A platform with an explicit per-task worker count.
    ///
    /// # Panics
    ///
    /// Panics if `workers_per_task` is zero or the accuracy is not a
    /// probability.
    pub fn with_workers(
        oracle: GroundTruthOracle,
        worker_accuracy: f64,
        workers_per_task: usize,
        seed: u64,
    ) -> SimulatedPlatform {
        assert!(workers_per_task > 0, "at least one worker per task");
        SimulatedPlatform {
            oracle,
            staffing: Staffing::Homogeneous(Worker::new(worker_accuracy)),
            workers_per_task,
            retry_workers: 0,
            escalated: 0,
            cost_model: CostModel::default(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            stats: CrowdStats::default(),
            log: Vec::new(),
        }
    }

    /// Replaces the cost model (chainable at construction time).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> SimulatedPlatform {
        self.cost_model = cost_model;
        self
    }

    /// Enables CDAS-style quality control: when the initial workers do not
    /// answer unanimously, up to `extra` additional workers are assigned to
    /// the task before the (re-)vote. Extra answers are paid and counted.
    pub fn with_retry(mut self, extra: usize) -> SimulatedPlatform {
        self.retry_workers = extra;
        self
    }

    /// A platform staffed by a heterogeneous [`WorkerPool`]; each task is
    /// answered by `workers_per_task` randomly assigned pool members.
    ///
    /// # Panics
    ///
    /// Panics if `workers_per_task` is zero.
    pub fn with_pool(
        oracle: GroundTruthOracle,
        pool: WorkerPool,
        workers_per_task: usize,
        seed: u64,
    ) -> SimulatedPlatform {
        assert!(workers_per_task > 0, "at least one worker per task");
        SimulatedPlatform {
            oracle,
            staffing: Staffing::Pool(pool),
            workers_per_task,
            retry_workers: 0,
            escalated: 0,
            cost_model: CostModel::default(),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            stats: CrowdStats::default(),
            log: Vec::new(),
        }
    }

    /// The hidden complete dataset behind the oracle.
    pub fn oracle(&self) -> &GroundTruthOracle {
        &self.oracle
    }

    /// Posts one batch and resolves *every* task: ties that survive CDAS
    /// escalation are broken uniformly at random. This is the legacy
    /// fault-free API the baselines and unit tests use; the
    /// [`CrowdPlatform`] impl reports such votes as
    /// [`TaskOutcome::Inconsistent`] instead.
    pub fn post_round(&mut self, tasks: &[Task]) -> Vec<TaskAnswer> {
        if tasks.is_empty() {
            return Vec::new();
        }
        self.stats.rounds += 1;
        self.stats.tasks_posted += tasks.len();
        let mut out = Vec::with_capacity(tasks.len());
        for task in tasks {
            let answers = self.answers_for(task);
            let relation = vote_with_tie_break(&answers, &mut self.rng)
                .expect("every task is staffed by at least one worker");
            let ta = TaskAnswer {
                task: *task,
                relation,
            };
            self.log.push(ta);
            out.push(ta);
        }
        out
    }

    /// All worker answers for one task: the current staffing level (base +
    /// escalation), plus CDAS extra workers when the initial vote splits.
    fn answers_for(&mut self, task: &Task) -> Vec<Relation> {
        let truth = self.oracle.truth(task);
        let staffing = self.workers_per_task + self.escalated;
        let mut answers = self.collect_answers(truth, staffing, task);
        // Quality control: escalate split votes with extra workers.
        if self.retry_workers > 0 && !answers.iter().all(|&a| a == answers[0]) {
            let extra = self.collect_answers(truth, self.retry_workers, task);
            answers.extend(extra);
        }
        answers
    }

    /// Draws `k` worker answers for one task. This is the single point
    /// where answers come into existence, so it is also the single point of
    /// accounting: every collected answer increments `worker_answers` and is
    /// paid the task's price — including CDAS extras and escalation answers.
    fn collect_answers(&mut self, truth: Relation, k: usize, task: &Task) -> Vec<Relation> {
        self.stats.worker_answers += k;
        self.stats.money_spent += self.cost_model.price(task) * k as u64;
        match &self.staffing {
            Staffing::Homogeneous(worker) => (0..k)
                .map(|_| worker.answer(truth, &mut self.rng))
                .collect(),
            Staffing::Pool(pool) => pool.answer(truth, k, &mut self.rng),
        }
    }

    /// Accumulated cost/latency statistics.
    pub fn stats(&self) -> CrowdStats {
        self.stats
    }

    /// Every task answered so far, in posting order.
    pub fn log(&self) -> &[TaskAnswer] {
        &self.log
    }
}

impl CrowdPlatform for SimulatedPlatform {
    fn post_round(&mut self, tasks: &[Task]) -> Vec<TaskResult> {
        if tasks.is_empty() {
            return Vec::new();
        }
        self.stats.rounds += 1;
        self.stats.tasks_posted += tasks.len();
        let mut out = Vec::with_capacity(tasks.len());
        for task in tasks {
            let answers = self.answers_for(task);
            let outcome = match majority_vote(&answers) {
                Some(relation) => {
                    self.log.push(TaskAnswer {
                        task: *task,
                        relation,
                    });
                    TaskOutcome::Answered(relation)
                }
                None => TaskOutcome::Inconsistent,
            };
            out.push(TaskResult {
                task: *task,
                outcome,
            });
        }
        out
    }

    fn escalate(&mut self, extra: usize) {
        self.escalated += extra;
    }

    fn stats(&self) -> CrowdStats {
        self.stats
    }

    fn ground_truth(&self) -> Option<&Dataset> {
        Some(self.oracle.complete())
    }

    fn save_state(&self) -> Option<PlatformState> {
        Some(PlatformState::Simulated {
            rng: self.rng.state(),
            stats: self.stats,
            escalated: self.escalated,
            log: self.log.clone(),
        })
    }

    fn load_state(&mut self, state: &PlatformState) -> Result<(), PlatformStateError> {
        match state {
            PlatformState::Simulated {
                rng,
                stats,
                escalated,
                log,
            } => {
                self.rng = rand::rngs::StdRng::from_state(*rng);
                self.stats = *stats;
                self.escalated = *escalated;
                self.log = log.clone();
                Ok(())
            }
            _ => Err(PlatformStateError::Mismatch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_ctable::Operand;
    use bc_data::generators::sample::paper_completion;
    use bc_data::VarId;

    fn platform(accuracy: f64) -> SimulatedPlatform {
        SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), accuracy, 9)
    }

    fn task(o: u32, a: u16, c: u16) -> Task {
        Task {
            var: VarId::new(o, a),
            rhs: Operand::Const(c),
        }
    }

    #[test]
    fn perfect_workers_return_the_truth() {
        let mut p = platform(1.0);
        let answers = p.post_round(&[task(4, 3, 4), task(4, 2, 3)]);
        assert_eq!(answers[0].relation, Relation::Lt); // hidden 2 vs 4
        assert_eq!(answers[1].relation, Relation::Eq); // hidden 3 vs 3
    }

    #[test]
    fn accounting_counts_tasks_rounds_and_answers() {
        let mut p = platform(1.0);
        p.post_round(&[task(4, 3, 4)]);
        p.post_round(&[task(4, 2, 3), task(1, 1, 3)]);
        p.post_round(&[]);
        let s = p.stats();
        assert_eq!(s.tasks_posted, 3);
        assert_eq!(s.rounds, 2, "empty batches are not rounds");
        assert_eq!(s.worker_answers, 9);
        assert_eq!(p.log().len(), 3);
    }

    #[test]
    fn majority_voting_rescues_moderate_noise() {
        // With accuracy 0.8 and 5 workers, the voted answer is right much
        // more often than a single worker.
        let mut p =
            SimulatedPlatform::with_workers(GroundTruthOracle::new(paper_completion()), 0.8, 5, 13);
        let mut correct = 0;
        for _ in 0..400 {
            let a = p.post_round(&[task(4, 3, 4)]);
            if a[0].relation == Relation::Lt {
                correct += 1;
            }
        }
        let rate = correct as f64 / 400.0;
        assert!(rate > 0.9, "voted accuracy should beat 0.8, got {rate}");
    }

    #[test]
    fn retry_escalates_split_votes_and_improves_accuracy() {
        // With accuracy 0.65, 3 workers often split; escalating by 4 extra
        // workers should raise the voted accuracy measurably.
        let run = |retry: usize, seed: u64| -> f64 {
            let mut p =
                SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 0.65, seed)
                    .with_retry(retry);
            let trials = 600;
            let mut correct = 0;
            for _ in 0..trials {
                let a = p.post_round(&[task(4, 3, 4)]);
                if a[0].relation == Relation::Lt {
                    correct += 1;
                }
            }
            correct as f64 / trials as f64
        };
        let plain = run(0, 21);
        let escalated = run(4, 21);
        assert!(
            escalated > plain + 0.02,
            "retry should help: {escalated} vs {plain}"
        );
    }

    #[test]
    fn retry_never_fires_on_unanimous_votes() {
        let mut p = SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 1.0, 3)
            .with_retry(10);
        p.post_round(&[task(4, 3, 4), task(1, 1, 3)]);
        // Perfect workers are always unanimous: exactly 3 answers per task.
        assert_eq!(p.stats().worker_answers, 6);
    }

    #[test]
    fn every_collected_answer_is_both_counted_and_paid() {
        // The CDAS escalation path must hit the same accounting as the
        // initial staffing: under the unit cost model, money and answer
        // counts stay identical no matter how many escalations fire.
        let mut p = SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 0.5, 29)
            .with_retry(4);
        for _ in 0..50 {
            p.post_round(&[task(4, 3, 4), task(4, 2, 3)]);
        }
        let s = p.stats();
        assert!(
            s.worker_answers > s.tasks_posted * 3,
            "accuracy 0.5 must trigger escalations ({} answers for {} tasks)",
            s.worker_answers,
            s.tasks_posted
        );
        assert_eq!(
            s.money_spent, s.worker_answers as u64,
            "unit cost model: every answer paid exactly once"
        );
    }

    #[test]
    fn money_accounting_follows_the_cost_model() {
        let mut p = SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 1.0, 9)
            .with_cost_model(crate::cost::CostModel::ByDifficulty {
                var_const: 2,
                var_var: 7,
            });
        let vv = Task {
            var: VarId::new(4, 1),
            rhs: Operand::Var(VarId::new(1, 1)),
        };
        p.post_round(&[task(4, 3, 4), vv]);
        // 3 workers × (2 + 7).
        assert_eq!(p.stats().money_spent, 27);
    }

    #[test]
    fn pool_staffing_answers_tasks() {
        let pool = WorkerPool::new(&[1.0, 1.0, 1.0]);
        let mut p =
            SimulatedPlatform::with_pool(GroundTruthOracle::new(paper_completion()), pool, 3, 4);
        let answers = p.post_round(&[task(4, 3, 4)]);
        assert_eq!(answers[0].relation, Relation::Lt);
        assert_eq!(p.stats().worker_answers, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut p =
                SimulatedPlatform::new(GroundTruthOracle::new(paper_completion()), 0.5, seed);
            (0..20)
                .map(|_| p.post_round(&[task(4, 1, 5)])[0].relation)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn trait_post_round_reports_outcomes_per_task() {
        let mut p = platform(1.0);
        let results = CrowdPlatform::post_round(&mut p, &[task(4, 3, 4), task(4, 2, 3)]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].outcome, TaskOutcome::Answered(Relation::Lt));
        assert_eq!(results[1].outcome, TaskOutcome::Answered(Relation::Eq));
        assert_eq!(results[0].answer().unwrap().relation, Relation::Lt);
    }

    #[test]
    fn trait_post_round_reports_unresolvable_votes_as_inconsistent() {
        // Accuracy 0 with 4 workers: answers are uniform over the two wrong
        // relations, so votes frequently split 2-2. Splits without a strict
        // plurality must come back Inconsistent, and they must not enter the
        // answer log.
        let mut p =
            SimulatedPlatform::with_workers(GroundTruthOracle::new(paper_completion()), 0.0, 4, 9);
        let mut saw_inconsistent = false;
        let mut answered = 0usize;
        for _ in 0..60 {
            let r = CrowdPlatform::post_round(&mut p, &[task(4, 3, 4)]);
            match r[0].outcome {
                TaskOutcome::Inconsistent => saw_inconsistent = true,
                TaskOutcome::Answered(_) => answered += 1,
                TaskOutcome::Expired => panic!("the fault-free platform never expires tasks"),
            }
        }
        assert!(saw_inconsistent, "unanimity-free votes must surface");
        assert_eq!(p.log().len(), answered, "only answers are logged");
    }

    #[test]
    fn escalation_raises_staffing_for_later_rounds() {
        let mut p = platform(1.0);
        CrowdPlatform::post_round(&mut p, &[task(4, 3, 4)]);
        assert_eq!(p.stats().worker_answers, 3);
        p.escalate(2);
        CrowdPlatform::post_round(&mut p, &[task(4, 3, 4)]);
        assert_eq!(p.stats().worker_answers, 3 + 5, "3 base + 2 escalated");
    }

    #[test]
    fn ground_truth_exposes_the_oracle_dataset() {
        let p = platform(1.0);
        assert_eq!(p.ground_truth(), Some(&paper_completion()));
    }

    #[test]
    fn saved_state_continues_identically_on_a_fresh_platform() {
        // Noisy workers so the RNG stream actually matters: a platform
        // restored mid-run must answer future rounds exactly like the
        // original would have.
        let mut original = platform(0.7);
        CrowdPlatform::post_round(&mut original, &[task(4, 3, 4), task(4, 1, 2)]);
        let state = original.save_state().expect("simulated state saves");

        let mut restored = platform(0.7);
        restored.load_state(&state).unwrap();
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.log(), original.log());

        let batch = [task(4, 3, 3), task(4, 1, 1), task(4, 0, 2)];
        for _ in 0..5 {
            assert_eq!(
                CrowdPlatform::post_round(&mut original, &batch),
                CrowdPlatform::post_round(&mut restored, &batch)
            );
        }
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn load_state_rejects_a_foreign_shape() {
        use crate::state::{PlatformState, PlatformStateError};
        let mut p = platform(1.0);
        let foreign = PlatformState::Faulty {
            rng: [0; 4],
            workforce: 1.0,
            overlay: CrowdStats::default(),
            faults: crate::fault::FaultStats::default(),
            inner: Box::new(PlatformState::Simulated {
                rng: [0; 4],
                stats: CrowdStats::default(),
                escalated: 0,
                log: Vec::new(),
            }),
        };
        assert_eq!(p.load_state(&foreign), Err(PlatformStateError::Mismatch));
    }
}
