//! Durable platform state for checkpoint/resume.
//!
//! A crowd run that is killed and restarted must not replay paid work: the
//! platform's accounting, its answer log, and — for the simulated platforms
//! — the exact position of its RNG streams all have to survive the restart,
//! or the resumed run would diverge from the uninterrupted one. This module
//! captures that mutable state as a plain value ([`PlatformState`]) that the
//! snapshot layer can serialize. Construction-time configuration (oracle,
//! worker pool, cost model, fault rates) deliberately stays out: the caller
//! reconstructs the platform the same way it originally did and then
//! restores the mutable part with [`CrowdPlatform::load_state`].
//!
//! [`CrowdPlatform::load_state`]: crate::CrowdPlatform::load_state

use crate::fault::FaultStats;
use crate::platform::CrowdStats;
use crate::task::TaskAnswer;

/// The mutable state of a crowd platform, as captured by
/// [`CrowdPlatform::save_state`](crate::CrowdPlatform::save_state).
///
/// Decorator platforms nest the state of the platform they wrap, so a
/// `FaultyPlatform<SimulatedPlatform>` saves (and checks on restore) the
/// whole decorator chain.
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformState {
    /// State of a [`SimulatedPlatform`](crate::SimulatedPlatform).
    Simulated {
        /// Worker-vote RNG stream position.
        rng: [u64; 4],
        /// Accumulated accounting.
        stats: CrowdStats,
        /// Extra workers recruited through escalation.
        escalated: usize,
        /// Every majority-voted answer handed out so far.
        log: Vec<TaskAnswer>,
    },
    /// State of a [`FaultyPlatform`](crate::FaultyPlatform) decorator.
    Faulty {
        /// Fault-injection RNG stream position.
        rng: [u64; 4],
        /// Fraction of the original workforce still active.
        workforce: f64,
        /// Accounting for what the inner platform never saw.
        overlay: CrowdStats,
        /// Injected-fault counters.
        faults: FaultStats,
        /// State of the wrapped platform.
        inner: Box<PlatformState>,
    },
}

/// Why a platform refused a [`PlatformState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlatformStateError {
    /// The platform has no durable-state support at all (the trait
    /// default).
    Unsupported,
    /// The state was saved by a different platform shape than the one
    /// asked to load it.
    Mismatch,
}

impl std::fmt::Display for PlatformStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformStateError::Unsupported => {
                write!(f, "platform does not support saved state")
            }
            PlatformStateError::Mismatch => {
                write!(f, "saved state belongs to a different platform shape")
            }
        }
    }
}

impl std::error::Error for PlatformStateError {}
