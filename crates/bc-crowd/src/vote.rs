//! Majority voting over worker answers.

use bc_ctable::Relation;
use rand::Rng;

/// Combines worker answers by strict-plurality majority vote.
///
/// Returns `None` when no single relation received strictly more votes than
/// every other — an empty slice, a 2-2-2 split, or any shared maximum. A
/// `None` is the platform's signal that the task ended
/// [`Inconsistent`](crate::task::TaskOutcome::Inconsistent): callers decide
/// whether to requeue, escalate, or give up.
pub fn majority_vote(answers: &[Relation]) -> Option<Relation> {
    let counts = tally(answers);
    let best = counts.into_iter().max().expect("three counters");
    if best == 0 {
        return None;
    }
    let mut tied = [Relation::Lt, Relation::Eq, Relation::Gt]
        .into_iter()
        .filter(|&r| counts[r as usize] == best);
    let winner = tied.next().expect("some relation reaches the maximum");
    if tied.next().is_some() {
        None
    } else {
        Some(winner)
    }
}

/// Majority voting with the legacy tie policy: ties are broken uniformly at
/// random among the tied relations, so every non-empty vote settles. Used by
/// the fault-free convenience API, where an unresolvable task would have
/// nowhere to go.
pub fn vote_with_tie_break(answers: &[Relation], rng: &mut impl Rng) -> Option<Relation> {
    if answers.is_empty() {
        return None;
    }
    let counts = tally(answers);
    let best = counts.into_iter().max().expect("three counters");
    let tied: Vec<Relation> = [Relation::Lt, Relation::Eq, Relation::Gt]
        .into_iter()
        .filter(|&r| counts[r as usize] == best)
        .collect();
    Some(tied[rng.gen_range(0..tied.len())])
}

fn tally(answers: &[Relation]) -> [usize; 3] {
    let mut counts = [0usize; 3];
    for &a in answers {
        counts[a as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clear_majority_wins() {
        assert_eq!(
            majority_vote(&[Relation::Gt, Relation::Gt, Relation::Lt]),
            Some(Relation::Gt)
        );
    }

    #[test]
    fn unanimous() {
        assert_eq!(
            majority_vote(&[Relation::Eq, Relation::Eq, Relation::Eq]),
            Some(Relation::Eq)
        );
    }

    #[test]
    fn single_answer_passes_through() {
        assert_eq!(majority_vote(&[Relation::Lt]), Some(Relation::Lt));
    }

    #[test]
    fn empty_is_inconclusive() {
        assert_eq!(majority_vote(&[]), None);
    }

    #[test]
    fn two_two_two_split_is_inconclusive() {
        let answers = [
            Relation::Lt,
            Relation::Lt,
            Relation::Eq,
            Relation::Eq,
            Relation::Gt,
            Relation::Gt,
        ];
        assert_eq!(majority_vote(&answers), None);
    }

    #[test]
    fn pairwise_tie_is_inconclusive() {
        assert_eq!(
            majority_vote(&[Relation::Lt, Relation::Gt, Relation::Gt, Relation::Lt]),
            None
        );
        // A strict plurality over the same relations settles.
        assert_eq!(
            majority_vote(&[Relation::Lt, Relation::Gt, Relation::Gt]),
            Some(Relation::Gt)
        );
    }

    #[test]
    fn tie_break_reaches_every_tied_relation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(
                vote_with_tie_break(&[Relation::Lt, Relation::Eq, Relation::Gt], &mut rng).unwrap(),
            );
        }
        assert_eq!(seen.len(), 3, "all tied answers should be reachable");
    }

    #[test]
    fn tie_break_agrees_with_majority_when_one_exists() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let answers = [Relation::Gt, Relation::Gt, Relation::Lt];
        assert_eq!(
            vote_with_tie_break(&answers, &mut rng),
            majority_vote(&answers)
        );
    }

    #[test]
    fn tie_break_on_empty_is_none() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(vote_with_tie_break(&[], &mut rng), None);
    }
}
