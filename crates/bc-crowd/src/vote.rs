//! Majority voting over worker answers.

use bc_ctable::Relation;
use rand::Rng;

/// Combines worker answers by majority vote; ties (possible when all
/// assigned workers disagree) are broken uniformly at random among the tied
/// relations.
///
/// # Panics
///
/// Panics on an empty answer slice.
pub fn majority_vote(answers: &[Relation], rng: &mut impl Rng) -> Relation {
    assert!(!answers.is_empty(), "majority vote needs at least one answer");
    let mut counts = [0usize; 3];
    for &a in answers {
        counts[a as usize] += 1;
    }
    let best = *counts.iter().max().expect("three counters");
    let tied: Vec<Relation> = [Relation::Lt, Relation::Eq, Relation::Gt]
        .into_iter()
        .filter(|&r| counts[r as usize] == best)
        .collect();
    tied[rng.gen_range(0..tied.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clear_majority_wins() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let voted = majority_vote(
            &[Relation::Gt, Relation::Gt, Relation::Lt],
            &mut rng,
        );
        assert_eq!(voted, Relation::Gt);
    }

    #[test]
    fn unanimous() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(
            majority_vote(&[Relation::Eq, Relation::Eq, Relation::Eq], &mut rng),
            Relation::Eq
        );
    }

    #[test]
    fn three_way_tie_picks_one_of_the_tied() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(majority_vote(
                &[Relation::Lt, Relation::Eq, Relation::Gt],
                &mut rng,
            ));
        }
        assert_eq!(seen.len(), 3, "all tied answers should be reachable");
    }

    #[test]
    fn single_answer_passes_through() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(majority_vote(&[Relation::Lt], &mut rng), Relation::Lt);
    }

    #[test]
    #[should_panic(expected = "at least one answer")]
    fn empty_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = majority_vote(&[], &mut rng);
    }
}
