//! Simulated crowd workers.

use bc_ctable::Relation;
use rand::Rng;

/// A worker with a fixed per-answer accuracy: with probability `accuracy`
/// the true relation is returned, otherwise one of the two wrong relations
/// uniformly (the paper's worker model, Section 7's "worker accuracy").
#[derive(Clone, Copy, Debug)]
pub struct Worker {
    accuracy: f64,
}

impl Worker {
    /// A worker answering correctly with probability `accuracy`.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[0, 1]`.
    pub fn new(accuracy: f64) -> Worker {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be a probability, got {accuracy}"
        );
        Worker { accuracy }
    }

    /// The worker's accuracy.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }

    /// Produces this worker's answer given the true relation.
    pub fn answer(&self, truth: Relation, rng: &mut impl Rng) -> Relation {
        if rng.gen_bool(self.accuracy) {
            truth
        } else {
            let wrong = [Relation::Lt, Relation::Eq, Relation::Gt];
            let options: Vec<Relation> = wrong.into_iter().filter(|&r| r != truth).collect();
            options[rng.gen_range(0..options.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn perfect_worker_never_errs() {
        let w = Worker::new(1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(w.answer(Relation::Gt, &mut rng), Relation::Gt);
        }
    }

    #[test]
    fn accuracy_is_calibrated() {
        let w = Worker::new(0.8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let correct = (0..20_000)
            .filter(|_| w.answer(Relation::Lt, &mut rng) == Relation::Lt)
            .count();
        let rate = correct as f64 / 20_000.0;
        assert!((rate - 0.8).abs() < 0.02, "got {rate}");
    }

    #[test]
    fn errors_split_between_the_two_wrong_answers() {
        let w = Worker::new(0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut eq = 0;
        let mut gt = 0;
        for _ in 0..10_000 {
            match w.answer(Relation::Lt, &mut rng) {
                Relation::Eq => eq += 1,
                Relation::Gt => gt += 1,
                Relation::Lt => panic!("accuracy-0 worker answered correctly"),
            }
        }
        assert!((eq as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!((gt as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_accuracy() {
        let _ = Worker::new(1.5);
    }
}
