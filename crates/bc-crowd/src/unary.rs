//! Unary value-elicitation tasks.
//!
//! The other crowd-skyline line of work the paper discusses (Lofi, El
//! Maarry & Balke — its reference \[22\]) asks the crowd *unary* questions:
//! "what is the value of `Var(o, a)`?" instead of comparisons. The paper
//! criticizes the approach because the returned estimates are inaccurate.
//! This module models such questions so the critique can be measured: a
//! worker returns the exact hidden value with probability `accuracy` and an
//! *adjacent* value otherwise (human estimates of ordinal scales miss by a
//! little, not uniformly), and a batch of answers is combined by the
//! median — the right aggregator for ordinal estimates.

use crate::oracle::GroundTruthOracle;
use bc_data::{Value, VarId};
use rand::Rng;

/// A unary question about one missing cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnaryTask {
    /// The missing value being asked for.
    pub var: VarId,
}

impl UnaryTask {
    /// The human-readable question.
    pub fn question(&self) -> String {
        format!("What is the value of {}?", self.var)
    }
}

/// One worker's estimate of a hidden value: exact with probability
/// `accuracy`, otherwise one step off (clamped to the domain).
pub fn estimate_value(truth: Value, max_value: Value, accuracy: f64, rng: &mut impl Rng) -> Value {
    if rng.gen_bool(accuracy.clamp(0.0, 1.0)) {
        truth
    } else if truth == 0 {
        1.min(max_value)
    } else if truth == max_value {
        max_value.saturating_sub(1)
    } else if rng.gen_bool(0.5) {
        truth - 1
    } else {
        truth + 1
    }
}

/// Median of worker estimates (lower median for even counts).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_vote(estimates: &[Value]) -> Value {
    assert!(!estimates.is_empty(), "median needs at least one estimate");
    let mut sorted = estimates.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

/// Answers a batch of unary tasks: `workers_per_task` estimates per task,
/// median-aggregated. Returns `(task, voted value)` pairs.
pub fn answer_unary_batch(
    oracle: &GroundTruthOracle,
    tasks: &[UnaryTask],
    accuracy: f64,
    workers_per_task: usize,
    rng: &mut impl Rng,
) -> Vec<(UnaryTask, Value)> {
    assert!(workers_per_task > 0);
    tasks
        .iter()
        .map(|&t| {
            let truth = oracle
                .complete()
                .get(t.var.object, t.var.attr)
                .expect("oracle data is complete");
            let max = oracle.complete().domain(t.var.attr).max_value();
            let estimates: Vec<Value> = (0..workers_per_task)
                .map(|_| estimate_value(truth, max, accuracy, rng))
                .collect();
            (t, median_vote(&estimates))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::paper_completion;
    use rand::SeedableRng;

    #[test]
    fn perfect_workers_return_exact_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for truth in 0..6u16 {
            assert_eq!(estimate_value(truth, 5, 1.0, &mut rng), truth);
        }
    }

    #[test]
    fn errors_are_adjacent_and_in_domain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let e = estimate_value(3, 5, 0.0, &mut rng);
            assert!(e == 2 || e == 4);
            let edge = estimate_value(0, 5, 0.0, &mut rng);
            assert_eq!(edge, 1);
            let top = estimate_value(5, 5, 0.0, &mut rng);
            assert_eq!(top, 4);
        }
    }

    #[test]
    fn median_is_robust_to_a_minority_of_errors() {
        assert_eq!(median_vote(&[3, 3, 4]), 3);
        assert_eq!(median_vote(&[2, 3, 3]), 3);
        assert_eq!(median_vote(&[5]), 5);
        assert_eq!(median_vote(&[1, 2, 3, 4]), 2, "lower median");
    }

    #[test]
    fn batch_answers_follow_the_oracle() {
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let tasks = [
            UnaryTask {
                var: VarId::new(4, 3),
            }, // hidden 2
            UnaryTask {
                var: VarId::new(1, 1),
            }, // hidden 4
        ];
        let answers = answer_unary_batch(&oracle, &tasks, 1.0, 3, &mut rng);
        assert_eq!(answers[0].1, 2);
        assert_eq!(answers[1].1, 4);
    }

    #[test]
    fn question_text() {
        let t = UnaryTask {
            var: VarId::new(5, 2),
        };
        assert_eq!(t.question(), "What is the value of Var(o5, a2)?");
    }

    #[test]
    #[should_panic(expected = "at least one estimate")]
    fn empty_median_panics() {
        let _ = median_vote(&[]);
    }
}
