//! Heterogeneous worker pools and accuracy-based recruitment.
//!
//! Section 7 notes that "in practice, we could select the workers whose
//! accuracies being above one certain value to answer tasks, for controlling
//! the final query answer accuracy (this kind of worker recruitment is
//! supported by AMT)". This module models a pool of workers with differing
//! accuracies and a recruitment threshold.

use crate::worker::Worker;
use bc_ctable::Relation;
use rand::Rng;
use rand::SeedableRng;

/// A pool of simulated workers with heterogeneous accuracies.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// A pool from explicit accuracies.
    ///
    /// # Panics
    ///
    /// Panics if empty or any accuracy is not a probability.
    pub fn new(accuracies: &[f64]) -> WorkerPool {
        assert!(!accuracies.is_empty(), "a pool needs at least one worker");
        WorkerPool {
            workers: accuracies.iter().map(|&a| Worker::new(a)).collect(),
        }
    }

    /// A pool of `n` workers with accuracies spread uniformly in
    /// `[low, high]` (deterministic per seed).
    pub fn uniform_spread(n: usize, low: f64, high: f64, seed: u64) -> WorkerPool {
        assert!(n > 0);
        assert!(low <= high);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let accuracies: Vec<f64> = (0..n).map(|_| rng.gen_range(low..=high)).collect();
        WorkerPool::new(&accuracies)
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The workers' accuracies.
    pub fn accuracies(&self) -> Vec<f64> {
        self.workers.iter().map(|w| w.accuracy()).collect()
    }

    /// AMT-style recruitment: keeps only workers at or above the threshold.
    /// Returns `None` when nobody qualifies.
    pub fn recruit(&self, min_accuracy: f64) -> Option<WorkerPool> {
        let qualified: Vec<Worker> = self
            .workers
            .iter()
            .copied()
            .filter(|w| w.accuracy() >= min_accuracy)
            .collect();
        if qualified.is_empty() {
            None
        } else {
            Some(WorkerPool { workers: qualified })
        }
    }

    /// Draws `k` answers for one task from randomly assigned workers
    /// (with replacement, as on real platforms a worker may take several of
    /// a requester's tasks).
    pub fn answer(&self, truth: Relation, k: usize, rng: &mut impl Rng) -> Vec<Relation> {
        (0..k)
            .map(|_| {
                let w = self.workers[rng.gen_range(0..self.workers.len())];
                w.answer(truth, rng)
            })
            .collect()
    }

    /// Mean accuracy of the pool.
    pub fn mean_accuracy(&self) -> f64 {
        self.workers.iter().map(|w| w.accuracy()).sum::<f64>() / self.workers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vote::majority_vote;

    #[test]
    fn recruitment_filters_by_threshold() {
        let pool = WorkerPool::new(&[0.6, 0.95, 0.8, 0.99]);
        let elite = pool.recruit(0.9).unwrap();
        assert_eq!(elite.len(), 2);
        assert!(elite.accuracies().iter().all(|&a| a >= 0.9));
        assert!(pool.recruit(1.1).is_none());
        assert_eq!(pool.recruit(0.0).unwrap().len(), 4);
    }

    #[test]
    fn uniform_spread_respects_bounds() {
        let pool = WorkerPool::uniform_spread(50, 0.7, 0.9, 5);
        assert_eq!(pool.len(), 50);
        assert!(pool.accuracies().iter().all(|&a| (0.7..=0.9).contains(&a)));
        assert!((pool.mean_accuracy() - 0.8).abs() < 0.05);
    }

    #[test]
    fn recruited_pool_votes_better() {
        // Majority voting over a recruited (high-accuracy) pool beats the
        // raw mixed pool — the paper's practical recommendation.
        let pool = WorkerPool::new(&[0.4, 0.45, 0.5, 0.95, 0.97]);
        let elite = pool.recruit(0.9).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let trials = 2000;
        let score = |p: &WorkerPool, rng: &mut rand::rngs::StdRng| {
            (0..trials)
                .filter(|_| {
                    let answers = p.answer(Relation::Gt, 3, rng);
                    majority_vote(&answers) == Some(Relation::Gt)
                })
                .count() as f64
                / trials as f64
        };
        let raw = score(&pool, &mut rng);
        let recruited = score(&elite, &mut rng);
        assert!(recruited > raw + 0.15, "recruited {recruited} vs raw {raw}");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_is_rejected() {
        let _ = WorkerPool::new(&[]);
    }
}
