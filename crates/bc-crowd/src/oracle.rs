//! Ground truth for simulated workers.

use crate::task::Task;
use bc_ctable::{Operand, Relation};
use bc_data::Dataset;

/// Answers tasks from the hidden complete dataset — the simulation stand-in
/// for what a human worker knows (e.g. the actual rating a movie deserves).
#[derive(Clone, Debug)]
pub struct GroundTruthOracle {
    complete: Dataset,
}

impl GroundTruthOracle {
    /// Wraps the complete dataset the incomplete one was derived from.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has missing cells.
    pub fn new(complete: Dataset) -> GroundTruthOracle {
        assert!(
            complete.is_complete(),
            "the oracle needs the fully observed dataset"
        );
        GroundTruthOracle { complete }
    }

    /// The hidden complete dataset (used to compute ground-truth skylines).
    pub fn complete(&self) -> &Dataset {
        &self.complete
    }

    /// The true relation asked by a task.
    pub fn truth(&self, task: &Task) -> Relation {
        let l = self
            .complete
            .get(task.var.object, task.var.attr)
            .expect("oracle dataset is complete");
        let r = match task.rhs {
            Operand::Const(c) => c,
            Operand::Var(v) => self
                .complete
                .get(v.object, v.attr)
                .expect("oracle dataset is complete"),
        };
        Relation::between(l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::{paper_completion, paper_dataset};
    use bc_data::VarId;

    #[test]
    fn answers_follow_the_hidden_completion() {
        let oracle = GroundTruthOracle::new(paper_completion());
        // Hidden Var(o5, a4) = 2, so "Var(o5,a4) ? 4" answers Lt.
        let t = Task {
            var: VarId::new(4, 3),
            rhs: Operand::Const(4),
        };
        assert_eq!(oracle.truth(&t), Relation::Lt);
        // Hidden Var(o5, a3) = 3: equality against 3.
        let t = Task {
            var: VarId::new(4, 2),
            rhs: Operand::Const(3),
        };
        assert_eq!(oracle.truth(&t), Relation::Eq);
        // Var-var: hidden Var(o5,a2) = 4 vs Var(o2,a2) = 4 → Eq.
        let t = Task {
            var: VarId::new(4, 1),
            rhs: Operand::Var(VarId::new(1, 1)),
        };
        assert_eq!(oracle.truth(&t), Relation::Eq);
    }

    #[test]
    #[should_panic(expected = "fully observed")]
    fn incomplete_oracle_is_rejected() {
        let _ = GroundTruthOracle::new(paper_dataset());
    }
}
