//! Retry policy for failed crowd tasks.
//!
//! When a posted task comes back [`Expired`](crate::TaskOutcome::Expired) or
//! [`Inconsistent`](crate::TaskOutcome::Inconsistent), the framework may
//! re-post it in a later round instead of dropping the question. The policy
//! here decides how often, with how many extra workers, and after how much
//! backoff — all still within the run's overall budget B and latency L, which
//! the framework enforces (a retried task is a posted task and costs budget
//! like any other).

/// How failed tasks are re-queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total posting attempts per task, including the first. `1` disables
    /// retries; failed tasks are abandoned immediately.
    pub max_attempts: usize,
    /// Extra workers recruited (via
    /// [`CrowdPlatform::escalate`](crate::CrowdPlatform::escalate)) each
    /// time a round contains at least one retry — escalating staffing when
    /// the first attempt failed.
    pub escalate_workers: usize,
    /// Base of the exponential backoff, in rounds. Attempt `n`'s re-post
    /// waits `backoff_base << (n - 1)` rounds; `0` re-queues for the next
    /// round immediately.
    pub backoff_base: usize,
}

impl Default for RetryPolicy {
    /// One retry, no escalation, no backoff: failed tasks get a second
    /// chance in the very next round.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            escalate_workers: 0,
            backoff_base: 0,
        }
    }
}

impl RetryPolicy {
    /// Retries disabled: every task gets exactly one attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            escalate_workers: 0,
            backoff_base: 0,
        }
    }

    /// Whether failed tasks are ever re-posted.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Rounds to wait before re-posting after `attempt` failed attempts
    /// (`attempt >= 1`). Exponential in the attempt count, with the shift
    /// capped so large attempt numbers cannot overflow.
    pub fn backoff_rounds(&self, attempt: usize) -> usize {
        if self.backoff_base == 0 {
            return 0;
        }
        self.backoff_base << (attempt.saturating_sub(1)).min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gives_a_second_chance_without_backoff() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 2);
        assert!(p.retries_enabled());
        assert_eq!(p.backoff_rounds(1), 0);
    }

    #[test]
    fn none_disables_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 5,
            escalate_workers: 0,
            backoff_base: 2,
        };
        assert_eq!(p.backoff_rounds(1), 2);
        assert_eq!(p.backoff_rounds(2), 4);
        assert_eq!(p.backoff_rounds(3), 8);
    }

    #[test]
    fn backoff_shift_is_capped() {
        let p = RetryPolicy {
            max_attempts: usize::MAX,
            escalate_workers: 0,
            backoff_base: 1,
        };
        // Far past the cap: must not overflow, and must stay at the cap.
        assert_eq!(p.backoff_rounds(100), 1 << 16);
        assert_eq!(p.backoff_rounds(17), 1 << 16);
    }
}
