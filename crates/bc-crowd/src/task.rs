//! Crowd tasks: triple-choice comparisons of a missing value against a
//! constant or another missing value.

use bc_ctable::{Expr, Operand, Relation};
use bc_data::VarId;
use std::fmt;

/// One crowd task: "is `var` larger than, smaller than, or equal to `rhs`?"
///
/// Note that a task carries strictly *more* information than the expression
/// it was derived from: the answer pins the relation, not just the
/// expression's truth value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Task {
    /// The missing value being asked about.
    pub var: VarId,
    /// What it is compared against.
    pub rhs: Operand,
}

impl Task {
    /// The task corresponding to a c-table expression.
    pub fn from_expr(e: &Expr) -> Task {
        Task {
            var: e.var(),
            rhs: e.rhs(),
        }
    }

    /// The variables a task touches (one or two). Used to keep tasks within
    /// one round conflict-free (no shared variable).
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        let second = match self.rhs {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        };
        std::iter::once(self.var).chain(second)
    }

    /// Whether two tasks share a variable (the paper's conflict criterion
    /// for one iteration).
    pub fn conflicts_with(&self, other: &Task) -> bool {
        self.vars().any(|v| other.vars().any(|w| v == w))
    }

    /// The human-readable question, as it would be posted.
    pub fn question(&self) -> String {
        match self.rhs {
            Operand::Const(c) => format!(
                "Is the variable {} larger than, or smaller than, or equal to {c}?",
                self.var
            ),
            Operand::Var(v) => format!(
                "Is the variable {} larger than, or smaller than, or equal to the variable {v}?",
                self.var
            ),
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rhs {
            Operand::Const(c) => write!(f, "{} ? {c}", self.var),
            Operand::Var(v) => write!(f, "{} ? {v}", self.var),
        }
    }
}

/// A task together with its (majority-voted) crowd answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskAnswer {
    /// The task that was posted.
    pub task: Task,
    /// The voted relation of `task.var` to `task.rhs`.
    pub relation: Relation,
}

/// How one posted task ended within its round.
///
/// Real crowd platforms do not guarantee an answer per posting: workers may
/// never pick a task up, and the ones who do may disagree beyond repair.
/// [`CrowdPlatform::post_round`](crate::CrowdPlatform::post_round) therefore
/// reports a per-task outcome instead of a bare answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The crowd settled on a strict-plurality answer.
    Answered(Relation),
    /// No answer arrived before the round closed (worker no-shows,
    /// attrition, platform failure).
    Expired,
    /// Answers arrived but no strict plurality emerged — a voting tie, or
    /// conflicting duplicate submissions cancelling each other out.
    Inconsistent,
}

/// Per-task partial result of one posted round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskResult {
    /// The task that was posted.
    pub task: Task,
    /// How it ended.
    pub outcome: TaskOutcome,
}

impl TaskResult {
    /// The settled answer, when the task was answered.
    pub fn answer(&self) -> Option<TaskAnswer> {
        match self.outcome {
            TaskOutcome::Answered(relation) => Some(TaskAnswer {
                task: self.task,
                relation,
            }),
            TaskOutcome::Expired | TaskOutcome::Inconsistent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn from_expr_extracts_operands() {
        let e = Expr::lt(v(5, 2), 2);
        let t = Task::from_expr(&e);
        assert_eq!(t.var, v(5, 2));
        assert_eq!(t.rhs, Operand::Const(2));
        assert_eq!(t.vars().count(), 1);
    }

    #[test]
    fn conflict_detection() {
        let a = Task {
            var: v(5, 2),
            rhs: Operand::Const(2),
        };
        let b = Task {
            var: v(5, 2),
            rhs: Operand::Const(7),
        };
        let c = Task {
            var: v(1, 1),
            rhs: Operand::Var(v(5, 2)),
        };
        let d = Task {
            var: v(3, 3),
            rhs: Operand::Const(0),
        };
        assert!(a.conflicts_with(&b));
        assert!(a.conflicts_with(&c), "var-var task shares Var(o5,a2)");
        assert!(!a.conflicts_with(&d));
        assert!(a.conflicts_with(&a));
    }

    #[test]
    fn task_result_answer_extracts_only_settled_outcomes() {
        let t = Task {
            var: v(5, 2),
            rhs: Operand::Const(2),
        };
        let answered = TaskResult {
            task: t,
            outcome: TaskOutcome::Answered(Relation::Lt),
        };
        assert_eq!(
            answered.answer(),
            Some(TaskAnswer {
                task: t,
                relation: Relation::Lt
            })
        );
        for outcome in [TaskOutcome::Expired, TaskOutcome::Inconsistent] {
            assert_eq!(TaskResult { task: t, outcome }.answer(), None);
        }
    }

    #[test]
    fn question_text_matches_paper_phrasing() {
        let t = Task {
            var: v(5, 2),
            rhs: Operand::Const(2),
        };
        assert_eq!(
            t.question(),
            "Is the variable Var(o5, a2) larger than, or smaller than, or equal to 2?"
        );
    }
}
