//! Monetary cost models.
//!
//! The paper's budget counts tasks because "for a group of similar tasks
//! (with comparable difficulties), crowdsourcing each of those tasks is
//! assumed to spend a fixed amount of money", and notes that with variable
//! difficulties "one could accumulate the respective crowd cost of the task
//! one by one". This module provides that accumulation: a [`CostModel`]
//! prices each task, and the platform tracks the total spend alongside the
//! task count.

use crate::task::Task;
use bc_ctable::Operand;

/// Prices for one crowd task, in micro-dollars (or any fixed unit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// Every task costs the same (the paper's default assumption).
    Unit {
        /// Price of any task.
        price: u64,
    },
    /// Variable difficulty: comparing two unknown values (var-var) is
    /// harder — and so pricier — than checking one value against a given
    /// constant.
    ByDifficulty {
        /// Price of a `Var ? constant` task.
        var_const: u64,
        /// Price of a `Var ? Var` task.
        var_var: u64,
    },
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::Unit { price: 1 }
    }
}

impl CostModel {
    /// Price of one task under this model.
    pub fn price(&self, task: &Task) -> u64 {
        match *self {
            CostModel::Unit { price } => price,
            CostModel::ByDifficulty { var_const, var_var } => match task.rhs {
                Operand::Const(_) => var_const,
                Operand::Var(_) => var_var,
            },
        }
    }

    /// Total price of a batch.
    pub fn batch_price(&self, tasks: &[Task]) -> u64 {
        tasks.iter().map(|t| self.price(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::VarId;

    fn vc() -> Task {
        Task {
            var: VarId::new(0, 0),
            rhs: Operand::Const(3),
        }
    }

    fn vv() -> Task {
        Task {
            var: VarId::new(0, 0),
            rhs: Operand::Var(VarId::new(1, 0)),
        }
    }

    #[test]
    fn unit_pricing() {
        let m = CostModel::Unit { price: 5 };
        assert_eq!(m.price(&vc()), 5);
        assert_eq!(m.price(&vv()), 5);
        assert_eq!(m.batch_price(&[vc(), vv()]), 10);
    }

    #[test]
    fn difficulty_pricing() {
        let m = CostModel::ByDifficulty {
            var_const: 2,
            var_var: 7,
        };
        assert_eq!(m.price(&vc()), 2);
        assert_eq!(m.price(&vv()), 7);
        assert_eq!(m.batch_price(&[vc(), vc(), vv()]), 11);
    }

    #[test]
    fn default_is_the_papers_unit_task() {
        assert_eq!(CostModel::default().price(&vv()), 1);
    }
}
