//! The structured event taxonomy of a BayesCrowd run.
//!
//! Every event is a flat record of counters plus (where meaningful) a
//! monotonic duration in nanoseconds. Events serialize to single-line JSON
//! objects ([`Event::to_json_line`]) and parse back
//! ([`Event::from_json_line`]), so a JSON-lines trace written by one
//! process can be reconciled against the final run report by another.

use std::fmt;

/// The instrumented phases of a run, in execution order.
///
/// `Model` and `CTable` happen once up front; `Select`, `Post`, and
/// `Propagate` repeat every crowdsourcing round; `Finalize` happens once at
/// the end (deriving the answer set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RunPhase {
    /// Bayesian-network training and per-variable distribution derivation.
    Model,
    /// C-table construction (Algorithm 2).
    CTable,
    /// Per-round probability refresh, object ranking, and task assembly.
    Select,
    /// Posting the batch to the crowd platform and collecting outcomes.
    Post,
    /// Folding answers back: cache invalidation, constraint propagation,
    /// distribution re-conditioning.
    Propagate,
    /// Deriving the final answer set from the terminal c-table state.
    Finalize,
}

impl RunPhase {
    /// All phases, in execution order.
    pub const ALL: [RunPhase; 6] = [
        RunPhase::Model,
        RunPhase::CTable,
        RunPhase::Select,
        RunPhase::Post,
        RunPhase::Propagate,
        RunPhase::Finalize,
    ];

    /// Stable lowercase name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            RunPhase::Model => "model",
            RunPhase::CTable => "ctable",
            RunPhase::Select => "select",
            RunPhase::Post => "post",
            RunPhase::Propagate => "propagate",
            RunPhase::Finalize => "finalize",
        }
    }

    /// Inverse of [`RunPhase::name`].
    pub fn from_name(name: &str) -> Option<RunPhase> {
        RunPhase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for RunPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured event of a BayesCrowd run.
///
/// All `nanos` fields are monotonic (`std::time::Instant`) durations and
/// are the only non-deterministic parts of a seeded run's trace; see
/// [`Event::redact_timing`].
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// The run began; sizes of the input and the cost constraints.
    RunStarted {
        /// Objects in the dataset.
        objects: usize,
        /// Attributes per object.
        attrs: usize,
        /// Missing cells (c-table variables before pruning).
        missing_vars: usize,
        /// Task budget `B`.
        budget: usize,
        /// Latency constraint `L` (rounds).
        latency: usize,
    },
    /// The Bayesian network was trained.
    ModelTrained {
        /// Total BIC score of the learned structure on the complete rows
        /// (`0.0` for the uniform-prior ablation or with no complete rows).
        bic: f64,
        /// Edges in the learned DAG.
        edges: usize,
        /// EM sweeps performed (`0` when EM was disabled).
        em_iters: usize,
        /// Structure-search moves applied (hill-climb improving moves or
        /// accepted annealing moves).
        search_iters: usize,
        /// Training wall-clock time.
        nanos: u128,
    },
    /// The c-table was built.
    CTableBuilt {
        /// Objects (= conditions) in the table.
        objects: usize,
        /// Objects whose condition is still undecided.
        open_objects: usize,
        /// Distinct variables appearing in open conditions.
        vars: usize,
        /// Expressions across open conditions.
        exprs: usize,
        /// Objects discarded outright by α-pruning.
        pruned: usize,
        /// Sum of dominator-set sizes over all objects (`Σ |D(o)|`).
        candidates: u64,
        /// Bitset words combined while deriving dominator sets (zero for
        /// the pairwise baseline).
        bitset_words: u64,
        /// Construction wall-clock time.
        nanos: u128,
    },
    /// A crowdsourcing round began.
    RoundStarted {
        /// 1-based round index (framework rounds, not platform rounds:
        /// straggling platforms may charge extra latency per batch).
        round: usize,
    },
    /// A batch of condition probabilities was computed.
    ProbabilityBatch {
        /// Which phase requested the batch.
        phase: RunPhase,
        /// Conditions solved (cached conditions are not re-solved and do
        /// not appear here).
        objects: usize,
        /// Solver invocations, including fallback re-solves.
        solver_calls: u64,
        /// Value-branching decisions taken by the solver.
        branches: u64,
        /// Component probabilities served from the solver's cache.
        cache_hits: u64,
        /// Conditions the configured solver failed on and a fresh ADPLL
        /// re-solved — silent degradation made visible.
        fallbacks: u64,
        /// Batch wall-clock time.
        nanos: u128,
    },
    /// The search-tree shape behind one probability batch: what the exact
    /// solver actually did while the matching [`Event::ProbabilityBatch`]
    /// was being computed. Emitted right after it.
    SolverSearch {
        /// Which phase requested the batch.
        phase: RunPhase,
        /// Value-branching decisions taken.
        decisions: u64,
        /// Independent components closed directly by the disjunctive rule.
        direct_components: u64,
        /// Component decompositions that split a condition into more than
        /// one independent sub-problem.
        component_splits: u64,
        /// Component probabilities served from the solver cache.
        cache_hits: u64,
        /// Correlated components solved by branching (cache empty or
        /// caching disabled).
        cache_misses: u64,
        /// Deepest branching recursion reached in the batch.
        max_depth: u64,
    },
    /// Crowd answers were propagated through the constraint store.
    Propagated {
        /// Answers folded in.
        answers: usize,
        /// Conditions that became decided.
        decided: usize,
        /// Deepest per-condition simplify/substitute fixpoint iteration.
        depth: usize,
        /// Propagation wall-clock time.
        nanos: u128,
    },
    /// A crowdsourcing round finished. Per round,
    /// `posted == answered + expired + requeued` — every posted task is
    /// accounted for exactly once.
    RoundFinished {
        /// 1-based round index.
        round: usize,
        /// Tasks posted this round (including re-posts).
        posted: usize,
        /// Tasks that came back answered.
        answered: usize,
        /// Tasks abandoned for good this round (final attempt failed).
        expired: usize,
        /// Failed tasks re-queued for a later attempt.
        requeued: usize,
        /// Re-posts of previously failed tasks included in `posted`.
        retried: usize,
        /// Round wall-clock time (select + post + propagate).
        nanos: u128,
    },
    /// A phase span closed.
    SpanFinished {
        /// The phase that just finished.
        phase: RunPhase,
        /// Span wall-clock time.
        nanos: u128,
    },
    /// The run gave up on at least one task; the answer set falls back to
    /// posterior probabilities for the affected conditions.
    Degraded {
        /// Tasks still queued (and still useful) when budget or latency ran
        /// out — abandoned at finalization, on top of per-round expiries.
        tasks_abandoned: usize,
    },
    /// A durable checkpoint of the full run state was written.
    CheckpointWritten {
        /// 1-based round index the checkpoint covers (0 before any round).
        round: usize,
        /// Serialized size of the snapshot document.
        bytes: usize,
        /// Serialization wall-clock time.
        nanos: u128,
    },
    /// A run was restored from a checkpoint and is about to continue.
    Resumed {
        /// 1-based round index the run continues after.
        round: usize,
        /// Budget remaining at the checkpoint.
        budget_left: usize,
        /// Open c-table expressions at the checkpoint.
        open_exprs: usize,
    },
    /// The run finished; totals mirror the final `RunReport`.
    RunFinished {
        /// Platform-visible rounds consumed.
        rounds: usize,
        /// Total tasks posted.
        tasks_posted: usize,
        /// Total tasks answered.
        tasks_answered: usize,
        /// Total tasks abandoned without a usable answer.
        tasks_expired: usize,
        /// Total re-posts.
        tasks_retried: usize,
        /// Condition-probability evaluations performed.
        probability_evals: u64,
        /// Total run wall-clock time.
        nanos: u128,
    },
}

impl Event {
    /// Stable event-kind name used in traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "RunStarted",
            Event::ModelTrained { .. } => "ModelTrained",
            Event::CTableBuilt { .. } => "CTableBuilt",
            Event::RoundStarted { .. } => "RoundStarted",
            Event::ProbabilityBatch { .. } => "ProbabilityBatch",
            Event::SolverSearch { .. } => "SolverSearch",
            Event::Propagated { .. } => "Propagated",
            Event::RoundFinished { .. } => "RoundFinished",
            Event::SpanFinished { .. } => "SpanFinished",
            Event::Degraded { .. } => "Degraded",
            Event::CheckpointWritten { .. } => "CheckpointWritten",
            Event::Resumed { .. } => "Resumed",
            Event::RunFinished { .. } => "RunFinished",
        }
    }

    /// A copy with every `nanos` field zeroed — the deterministic part of a
    /// seeded run's trace (golden-trace tests compare these).
    pub fn redact_timing(&self) -> Event {
        let mut e = self.clone();
        match &mut e {
            Event::ModelTrained { nanos, .. }
            | Event::CTableBuilt { nanos, .. }
            | Event::ProbabilityBatch { nanos, .. }
            | Event::Propagated { nanos, .. }
            | Event::RoundFinished { nanos, .. }
            | Event::SpanFinished { nanos, .. }
            | Event::CheckpointWritten { nanos, .. }
            | Event::RunFinished { nanos, .. } => *nanos = 0,
            Event::RunStarted { .. }
            | Event::RoundStarted { .. }
            | Event::SolverSearch { .. }
            | Event::Degraded { .. }
            | Event::Resumed { .. } => {}
        }
        e
    }

    /// Serializes the event as one JSON object on one line, prefixed with a
    /// sequence number: `{"seq": 3, "event": "RoundStarted", "round": 1}`.
    pub fn to_json_line(&self, seq: u64) -> String {
        let mut s = format!("{{\"seq\": {seq}, \"event\": \"{}\"", self.kind());
        let field_u = |s: &mut String, k: &str, v: u128| {
            s.push_str(&format!(", \"{k}\": {v}"));
        };
        match self {
            Event::RunStarted {
                objects,
                attrs,
                missing_vars,
                budget,
                latency,
            } => {
                field_u(&mut s, "objects", *objects as u128);
                field_u(&mut s, "attrs", *attrs as u128);
                field_u(&mut s, "missing_vars", *missing_vars as u128);
                field_u(&mut s, "budget", *budget as u128);
                field_u(&mut s, "latency", *latency as u128);
            }
            Event::ModelTrained {
                bic,
                edges,
                em_iters,
                search_iters,
                nanos,
            } => {
                s.push_str(&format!(", \"bic\": {}", json_f64(*bic)));
                field_u(&mut s, "edges", *edges as u128);
                field_u(&mut s, "em_iters", *em_iters as u128);
                field_u(&mut s, "search_iters", *search_iters as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::CTableBuilt {
                objects,
                open_objects,
                vars,
                exprs,
                pruned,
                candidates,
                bitset_words,
                nanos,
            } => {
                field_u(&mut s, "objects", *objects as u128);
                field_u(&mut s, "open_objects", *open_objects as u128);
                field_u(&mut s, "vars", *vars as u128);
                field_u(&mut s, "exprs", *exprs as u128);
                field_u(&mut s, "pruned", *pruned as u128);
                field_u(&mut s, "candidates", *candidates as u128);
                field_u(&mut s, "bitset_words", *bitset_words as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::RoundStarted { round } => {
                field_u(&mut s, "round", *round as u128);
            }
            Event::ProbabilityBatch {
                phase,
                objects,
                solver_calls,
                branches,
                cache_hits,
                fallbacks,
                nanos,
            } => {
                s.push_str(&format!(", \"phase\": \"{}\"", phase.name()));
                field_u(&mut s, "objects", *objects as u128);
                field_u(&mut s, "solver_calls", *solver_calls as u128);
                field_u(&mut s, "branches", *branches as u128);
                field_u(&mut s, "cache_hits", *cache_hits as u128);
                field_u(&mut s, "fallbacks", *fallbacks as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::SolverSearch {
                phase,
                decisions,
                direct_components,
                component_splits,
                cache_hits,
                cache_misses,
                max_depth,
            } => {
                s.push_str(&format!(", \"phase\": \"{}\"", phase.name()));
                field_u(&mut s, "decisions", *decisions as u128);
                field_u(&mut s, "direct_components", *direct_components as u128);
                field_u(&mut s, "component_splits", *component_splits as u128);
                field_u(&mut s, "cache_hits", *cache_hits as u128);
                field_u(&mut s, "cache_misses", *cache_misses as u128);
                field_u(&mut s, "max_depth", *max_depth as u128);
            }
            Event::Propagated {
                answers,
                decided,
                depth,
                nanos,
            } => {
                field_u(&mut s, "answers", *answers as u128);
                field_u(&mut s, "decided", *decided as u128);
                field_u(&mut s, "depth", *depth as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::RoundFinished {
                round,
                posted,
                answered,
                expired,
                requeued,
                retried,
                nanos,
            } => {
                field_u(&mut s, "round", *round as u128);
                field_u(&mut s, "posted", *posted as u128);
                field_u(&mut s, "answered", *answered as u128);
                field_u(&mut s, "expired", *expired as u128);
                field_u(&mut s, "requeued", *requeued as u128);
                field_u(&mut s, "retried", *retried as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::SpanFinished { phase, nanos } => {
                s.push_str(&format!(", \"phase\": \"{}\"", phase.name()));
                field_u(&mut s, "nanos", *nanos);
            }
            Event::Degraded { tasks_abandoned } => {
                field_u(&mut s, "tasks_abandoned", *tasks_abandoned as u128);
            }
            Event::CheckpointWritten {
                round,
                bytes,
                nanos,
            } => {
                field_u(&mut s, "round", *round as u128);
                field_u(&mut s, "bytes", *bytes as u128);
                field_u(&mut s, "nanos", *nanos);
            }
            Event::Resumed {
                round,
                budget_left,
                open_exprs,
            } => {
                field_u(&mut s, "round", *round as u128);
                field_u(&mut s, "budget_left", *budget_left as u128);
                field_u(&mut s, "open_exprs", *open_exprs as u128);
            }
            Event::RunFinished {
                rounds,
                tasks_posted,
                tasks_answered,
                tasks_expired,
                tasks_retried,
                probability_evals,
                nanos,
            } => {
                field_u(&mut s, "rounds", *rounds as u128);
                field_u(&mut s, "tasks_posted", *tasks_posted as u128);
                field_u(&mut s, "tasks_answered", *tasks_answered as u128);
                field_u(&mut s, "tasks_expired", *tasks_expired as u128);
                field_u(&mut s, "tasks_retried", *tasks_retried as u128);
                field_u(&mut s, "probability_evals", *probability_evals as u128);
                field_u(&mut s, "nanos", *nanos);
            }
        }
        s.push('}');
        s
    }

    /// Parses one line written by [`Event::to_json_line`], returning the
    /// sequence number and the event. Returns `None` on any mismatch; this
    /// is a round-trip parser for our own trace format, not general JSON.
    pub fn from_json_line(line: &str) -> Option<(u64, Event)> {
        let fields = parse_flat_object(line)?;
        let seq = fields.num("seq")? as u64;
        let get_u = |k: &str| fields.num(k).map(|v| v as usize);
        let get_u64 = |k: &str| fields.num(k).map(|v| v as u64);
        let get_n = |k: &str| fields.num(k).map(|v| v as u128);
        let event = match fields.str("event")? {
            "RunStarted" => Event::RunStarted {
                objects: get_u("objects")?,
                attrs: get_u("attrs")?,
                missing_vars: get_u("missing_vars")?,
                budget: get_u("budget")?,
                latency: get_u("latency")?,
            },
            "ModelTrained" => Event::ModelTrained {
                bic: fields.num("bic")?,
                edges: get_u("edges")?,
                em_iters: get_u("em_iters")?,
                search_iters: get_u("search_iters")?,
                nanos: get_n("nanos")?,
            },
            "CTableBuilt" => Event::CTableBuilt {
                objects: get_u("objects")?,
                open_objects: get_u("open_objects")?,
                vars: get_u("vars")?,
                exprs: get_u("exprs")?,
                pruned: get_u("pruned")?,
                candidates: get_u64("candidates")?,
                bitset_words: get_u64("bitset_words")?,
                nanos: get_n("nanos")?,
            },
            "RoundStarted" => Event::RoundStarted {
                round: get_u("round")?,
            },
            "ProbabilityBatch" => Event::ProbabilityBatch {
                phase: RunPhase::from_name(fields.str("phase")?)?,
                objects: get_u("objects")?,
                solver_calls: get_u64("solver_calls")?,
                branches: get_u64("branches")?,
                cache_hits: get_u64("cache_hits")?,
                fallbacks: get_u64("fallbacks")?,
                nanos: get_n("nanos")?,
            },
            "SolverSearch" => Event::SolverSearch {
                phase: RunPhase::from_name(fields.str("phase")?)?,
                decisions: get_u64("decisions")?,
                direct_components: get_u64("direct_components")?,
                component_splits: get_u64("component_splits")?,
                cache_hits: get_u64("cache_hits")?,
                cache_misses: get_u64("cache_misses")?,
                max_depth: get_u64("max_depth")?,
            },
            "Propagated" => Event::Propagated {
                answers: get_u("answers")?,
                decided: get_u("decided")?,
                depth: get_u("depth")?,
                nanos: get_n("nanos")?,
            },
            "RoundFinished" => Event::RoundFinished {
                round: get_u("round")?,
                posted: get_u("posted")?,
                answered: get_u("answered")?,
                expired: get_u("expired")?,
                requeued: get_u("requeued")?,
                retried: get_u("retried")?,
                nanos: get_n("nanos")?,
            },
            "SpanFinished" => Event::SpanFinished {
                phase: RunPhase::from_name(fields.str("phase")?)?,
                nanos: get_n("nanos")?,
            },
            "Degraded" => Event::Degraded {
                tasks_abandoned: get_u("tasks_abandoned")?,
            },
            "CheckpointWritten" => Event::CheckpointWritten {
                round: get_u("round")?,
                bytes: get_u("bytes")?,
                nanos: get_n("nanos")?,
            },
            "Resumed" => Event::Resumed {
                round: get_u("round")?,
                budget_left: get_u("budget_left")?,
                open_exprs: get_u("open_exprs")?,
            },
            "RunFinished" => Event::RunFinished {
                rounds: get_u("rounds")?,
                tasks_posted: get_u("tasks_posted")?,
                tasks_answered: get_u("tasks_answered")?,
                tasks_expired: get_u("tasks_expired")?,
                tasks_retried: get_u("tasks_retried")?,
                probability_evals: get_u64("probability_evals")?,
                nanos: get_n("nanos")?,
            },
            _ => return None,
        };
        Some((seq, event))
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no NaN/Inf; traces should stay parseable regardless.
        "0.0".into()
    }
}

/// A flat `key: string-or-number` JSON object, parsed.
struct FlatObject {
    fields: Vec<(String, FlatValue)>,
}

enum FlatValue {
    Num(f64),
    Str(String),
}

impl FlatObject {
    fn num(&self, key: &str) -> Option<f64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FlatValue::Num(n) if k == key => Some(*n),
            _ => None,
        })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.fields.iter().find_map(|(k, v)| match v {
            FlatValue::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }
}

/// Parses `{"k": v, ...}` where every value is a number or a plain string
/// (no escapes — event names and phase names never contain them).
fn parse_flat_object(line: &str) -> Option<FlatObject> {
    let mut rest = line.trim();
    rest = rest.strip_prefix('{')?;
    rest = rest.strip_suffix('}')?;
    let mut fields = Vec::new();
    while !rest.trim().is_empty() {
        rest = rest.trim_start();
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start().strip_prefix(':')?;
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix('"') {
            let end = after.find('"')?;
            fields.push((key, FlatValue::Str(after[..end].to_string())));
            rest = &after[end + 1..];
        } else {
            let end = rest
                .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                .unwrap_or(rest.len());
            let num: f64 = rest[..end].parse().ok()?;
            fields.push((key, FlatValue::Num(num)));
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None => break,
        }
    }
    Some(FlatObject { fields })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted {
                objects: 5,
                attrs: 5,
                missing_vars: 5,
                budget: 6,
                latency: 3,
            },
            Event::ModelTrained {
                bic: -12.5,
                edges: 2,
                em_iters: 0,
                search_iters: 3,
                nanos: 1234,
            },
            Event::CTableBuilt {
                objects: 5,
                open_objects: 3,
                vars: 4,
                exprs: 13,
                pruned: 0,
                candidates: 7,
                bitset_words: 25,
                nanos: 99,
            },
            Event::RoundStarted { round: 1 },
            Event::ProbabilityBatch {
                phase: RunPhase::Select,
                objects: 3,
                solver_calls: 3,
                branches: 17,
                cache_hits: 2,
                fallbacks: 1,
                nanos: 777,
            },
            Event::SolverSearch {
                phase: RunPhase::Select,
                decisions: 17,
                direct_components: 4,
                component_splits: 1,
                cache_hits: 2,
                cache_misses: 5,
                max_depth: 3,
            },
            Event::Propagated {
                answers: 2,
                decided: 1,
                depth: 2,
                nanos: 55,
            },
            Event::RoundFinished {
                round: 1,
                posted: 2,
                answered: 2,
                expired: 0,
                requeued: 0,
                retried: 0,
                nanos: 888,
            },
            Event::SpanFinished {
                phase: RunPhase::Post,
                nanos: 11,
            },
            Event::Degraded { tasks_abandoned: 1 },
            Event::CheckpointWritten {
                round: 2,
                bytes: 20_480,
                nanos: 321,
            },
            Event::Resumed {
                round: 2,
                budget_left: 4,
                open_exprs: 7,
            },
            Event::RunFinished {
                rounds: 3,
                tasks_posted: 6,
                tasks_answered: 5,
                tasks_expired: 1,
                tasks_retried: 0,
                probability_evals: 9,
                nanos: 4242,
            },
        ]
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for (i, e) in sample_events().into_iter().enumerate() {
            let line = e.to_json_line(i as u64);
            let (seq, back) =
                Event::from_json_line(&line).unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert_eq!(seq, i as u64);
            assert_eq!(back, e, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn redaction_zeroes_only_timing() {
        let e = Event::RoundFinished {
            round: 2,
            posted: 3,
            answered: 1,
            expired: 1,
            requeued: 1,
            retried: 0,
            nanos: 123,
        };
        match e.redact_timing() {
            Event::RoundFinished {
                round,
                posted,
                nanos,
                ..
            } => {
                assert_eq!((round, posted, nanos), (2, 3, 0));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Events without timing are untouched.
        let s = Event::RoundStarted { round: 7 };
        assert_eq!(s.redact_timing(), s);
    }

    #[test]
    fn phase_names_round_trip() {
        for p in RunPhase::ALL {
            assert_eq!(RunPhase::from_name(p.name()), Some(p));
        }
        assert_eq!(RunPhase::from_name("bogus"), None);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Event::from_json_line("not json").is_none());
        assert!(Event::from_json_line("{\"seq\": 1}").is_none());
        assert!(
            Event::from_json_line("{\"seq\": 1, \"event\": \"RoundStarted\"}").is_none(),
            "missing fields must not parse"
        );
        assert!(Event::from_json_line("{\"seq\": 1, \"event\": \"Nope\", \"x\": 2}").is_none());
    }

    #[test]
    fn non_finite_floats_stay_parseable() {
        let e = Event::ModelTrained {
            bic: f64::NAN,
            edges: 0,
            em_iters: 0,
            search_iters: 0,
            nanos: 0,
        };
        let line = e.to_json_line(0);
        assert!(line.contains("\"bic\": 0.0"), "{line}");
        assert!(Event::from_json_line(&line).is_some());
    }
}
