//! Event sinks: where a run's [`Event`] stream goes.
//!
//! The framework emits events through the [`Observer`] trait; callers pick
//! a sink. [`NoopObserver`] (the default) compiles down to nothing,
//! [`JsonLinesSink`] streams a machine-readable trace, and
//! [`crate::MetricsRecorder`] aggregates in memory. [`Tee`] fans one stream
//! out to two sinks.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A consumer of run events.
///
/// Contract: the framework calls [`Observer::event`] synchronously from the
/// run loop, in emission order, and never re-entrantly. Implementations
/// must not panic on malformed-looking data (the framework owns event
/// construction) and should keep per-event work O(1)-ish — a slow sink
/// slows the run it is watching. I/O errors should be swallowed or
/// deferred, never propagated by panicking.
pub trait Observer {
    /// Handles one event.
    fn event(&mut self, event: &Event);
}

/// The do-nothing sink; [`crate::Observer::event`] is inlined away so
/// uninstrumented runs pay nothing beyond constructing the events.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn event(&mut self, _event: &Event) {}
}

/// Streams events as JSON lines (one object per line, `seq`-numbered) to
/// any writer — typically a buffered trace file via
/// [`JsonLinesSink::create`].
///
/// Write errors are stored rather than panicking; check
/// [`JsonLinesSink::io_error`] after the run if trace completeness matters.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    // Option only so `into_inner` can move the writer out past `Drop`.
    writer: Option<W>,
    seq: u64,
    error: Option<io::Error>,
}

impl JsonLinesSink<BufWriter<File>> {
    /// Opens (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonLinesSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Some(writer),
            seq: 0,
            error: None,
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.seq
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let mut writer = self.writer.take().expect("writer present until drop");
        let _ = writer.flush();
        writer
    }
}

impl<W: Write> Observer for JsonLinesSink<W> {
    fn event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        let line = event.to_json_line(self.seq);
        self.seq += 1;
        if let Err(e) = writeln!(writer, "{line}") {
            self.error = Some(e);
            return;
        }
        // Make partial traces of crashed/killed runs useful: flush at
        // round and run boundaries, not per event.
        if matches!(
            event,
            Event::RoundFinished { .. } | Event::RunFinished { .. } | Event::Degraded { .. }
        ) {
            if let Err(e) = writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

/// Forwards every event to two sinks, e.g. a trace file plus a
/// [`crate::MetricsRecorder`].
pub struct Tee<'a> {
    first: &'a mut dyn Observer,
    second: &'a mut dyn Observer,
}

impl<'a> Tee<'a> {
    /// Combines two sinks; `first` sees each event before `second`.
    pub fn new(first: &'a mut dyn Observer, second: &'a mut dyn Observer) -> Self {
        Tee { first, second }
    }
}

impl Observer for Tee<'_> {
    fn event(&mut self, event: &Event) {
        self.first.event(event);
        self.second.event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_sink_numbers_and_parses_back() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.event(&Event::RoundStarted { round: 1 });
        sink.event(&Event::RoundFinished {
            round: 1,
            posted: 2,
            answered: 2,
            expired: 0,
            requeued: 0,
            retried: 0,
            nanos: 5,
        });
        assert_eq!(sink.events_written(), 2);
        assert!(sink.io_error().is_none());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| Event::from_json_line(l).expect("parseable"))
            .collect();
        assert_eq!(parsed[0].0, 0);
        assert_eq!(parsed[1].0, 1);
        assert_eq!(parsed[0].1, Event::RoundStarted { round: 1 });
    }

    #[test]
    fn write_errors_are_captured_not_panicked() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(Failing);
        sink.event(&Event::RoundStarted { round: 1 });
        sink.event(&Event::RoundStarted { round: 2 });
        assert!(sink.io_error().is_some());
    }

    #[test]
    fn tee_forwards_to_both() {
        struct Counter(usize);
        impl Observer for Counter {
            fn event(&mut self, _event: &Event) {
                self.0 += 1;
            }
        }
        let (mut a, mut b) = (Counter(0), Counter(0));
        {
            let mut tee = Tee::new(&mut a, &mut b);
            tee.event(&Event::RoundStarted { round: 1 });
            tee.event(&Event::RoundStarted { round: 2 });
        }
        assert_eq!((a.0, b.0), (2, 2));
    }
}
