//! Hierarchical profiling: nested spans, path-addressed accumulation,
//! and a serializable [`ProfileReport`] tree.
//!
//! Two ways to feed a [`Profiler`]:
//!
//! * **Explicit spans** — [`Profiler::enter`] / [`Profiler::exit`] nest
//!   relative to the innermost open span and time the enclosed work with
//!   a monotonic clock. For ad-hoc instrumentation of straight-line code.
//! * **Path records** — [`Profiler::record`] accrues externally measured
//!   nanoseconds into an absolute `/`-separated path such as
//!   `round/select/solve`, creating intermediate nodes as needed. This is
//!   how [`RunProfiler`] folds an event stream into the canonical span
//!   taxonomy without timing anything twice: every `nanos` it files was
//!   already measured at the emission site.
//!
//! The resulting [`ProfileReport`] renders as an indented text tree and
//! as canonical single-line JSON (fixed key order, no whitespace) whose
//! parse → write round-trip is byte-identical, matching the bc-snapshot
//! convention.

use crate::event::{Event, RunPhase};
use crate::sink::Observer;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Debug)]
struct Node {
    name: String,
    count: u64,
    nanos: u128,
    children: Vec<usize>,
}

/// An arena-backed tree of named spans accumulating call counts and
/// wall-clock nanoseconds.
///
/// Children keep first-creation order, so two runs that produce the same
/// sequence of span names produce structurally identical reports.
#[derive(Debug)]
pub struct Profiler {
    nodes: Vec<Node>,
    /// Open explicit spans; `stack[0]` is always the root.
    stack: Vec<usize>,
    /// Start times for the open spans in `stack[1..]`.
    starts: Vec<Instant>,
}

impl Profiler {
    /// A profiler whose root span is named `root`.
    pub fn new(root: &str) -> Self {
        Profiler {
            nodes: vec![Node {
                name: root.to_string(),
                count: 0,
                nanos: 0,
                children: Vec::new(),
            }],
            stack: vec![0],
            starts: Vec::new(),
        }
    }

    fn child(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            count: 0,
            nanos: 0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Opens a span named `name` nested under the innermost open span and
    /// starts its clock. Balance with [`Profiler::exit`].
    pub fn enter(&mut self, name: &str) {
        let top = *self.stack.last().expect("root span is never popped");
        let idx = self.child(top, name);
        self.stack.push(idx);
        self.starts.push(Instant::now());
    }

    /// Closes the innermost open span, accruing its elapsed time and
    /// bumping its count. A call with no open span is ignored (the root
    /// cannot be exited).
    pub fn exit(&mut self) {
        let (Some(idx), Some(start)) = (
            (self.stack.len() > 1).then(|| self.stack.pop().unwrap()),
            self.starts.pop(),
        ) else {
            return;
        };
        self.nodes[idx].count += 1;
        self.nodes[idx].nanos += start.elapsed().as_nanos();
    }

    /// Accrues `nanos` and one call into the absolute `/`-separated
    /// `path` (resolved from the root, not the open span), creating
    /// intermediate nodes as needed. The empty path addresses the root.
    pub fn record(&mut self, path: &str, nanos: u128) {
        self.record_with(path, nanos, 1);
    }

    /// Like [`Profiler::record`] but accruing an explicit `count` —
    /// useful for count-only telemetry such as search-tree decisions,
    /// where `nanos` is 0 because the time lives in an ancestor span.
    pub fn record_with(&mut self, path: &str, nanos: u128, count: u64) {
        let mut cur = 0;
        if !path.is_empty() {
            for seg in path.split('/') {
                cur = self.child(cur, seg);
            }
        }
        self.nodes[cur].count += count;
        self.nodes[cur].nanos += nanos;
    }

    /// Snapshots the accumulated tree.
    pub fn report(&self) -> ProfileReport {
        fn build(nodes: &[Node], idx: usize) -> ReportNode {
            ReportNode {
                name: nodes[idx].name.clone(),
                count: nodes[idx].count,
                nanos: nodes[idx].nanos,
                children: nodes[idx]
                    .children
                    .iter()
                    .map(|&c| build(nodes, c))
                    .collect(),
            }
        }
        ProfileReport {
            root: build(&self.nodes, 0),
        }
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new("run")
    }
}

/// One span in a [`ProfileReport`] tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportNode {
    /// Span name (one path segment).
    pub name: String,
    /// Times the span was closed, or an event-defined count for
    /// count-only telemetry nodes.
    pub count: u64,
    /// Wall-clock nanoseconds accrued.
    pub nanos: u128,
    /// Child spans in first-creation order.
    pub children: Vec<ReportNode>,
}

impl ReportNode {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\": \"");
        escape_into(&self.name, out);
        let _ = write!(
            out,
            "\", \"count\": {}, \"nanos\": {}",
            self.count, self.nanos
        );
        out.push_str(", \"children\": [");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }

    fn write_text(&self, out: &mut String, depth: usize) {
        let _ = writeln!(
            out,
            "{:indent$}{} {:.3}ms ×{}",
            "",
            self.name,
            self.nanos as f64 / 1e6,
            self.count,
            indent = depth * 2
        );
        for child in &self.children {
            child.write_text(out, depth + 1);
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A snapshot of a [`Profiler`] tree: renderable as text, serializable
/// as canonical single-line JSON whose parse → write round-trip is
/// byte-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileReport {
    root: ReportNode,
}

impl ProfileReport {
    /// The root span.
    pub fn root(&self) -> &ReportNode {
        &self.root
    }

    /// Looks up a span by `/`-separated path below the root; the empty
    /// path returns the root itself.
    pub fn node(&self, path: &str) -> Option<&ReportNode> {
        let mut cur = &self.root;
        if path.is_empty() {
            return Some(cur);
        }
        for seg in path.split('/') {
            cur = cur.children.iter().find(|c| c.name == seg)?;
        }
        Some(cur)
    }

    /// An indented text rendering, one span per line with milliseconds
    /// and call count.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.root.write_text(&mut out, 0);
        out
    }

    /// Canonical single-line JSON: fixed key order
    /// (`name`, `count`, `nanos`, `children`), `", "` separators, no
    /// trailing newline. [`ProfileReport::from_json`] of this output
    /// re-serializes to the identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.root.write_json(&mut out);
        out
    }

    /// Parses the JSON produced by [`ProfileReport::to_json`]
    /// (whitespace-tolerant, but key order is fixed).
    pub fn from_json(input: &str) -> Result<ProfileReport, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = p.node()?;
        p.ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(ProfileReport { root })
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn key(&mut self, name: &str) -> Result<(), String> {
        self.ws();
        self.expect(b'"')?;
        if !self.bytes[self.pos..].starts_with(name.as_bytes()) {
            return Err(format!("expected key {name:?} at offset {}", self.pos));
        }
        self.pos += name.len();
        self.expect(b'"')?;
        self.ws();
        self.expect(b':')
    }

    fn uint(&mut self) -> Result<u128, String> {
        self.ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected digits at offset {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|e| format!("bad integer at offset {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn node(&mut self) -> Result<ReportNode, String> {
        self.ws();
        self.expect(b'{')?;
        self.key("name")?;
        let name = self.string()?;
        self.ws();
        self.expect(b',')?;
        self.key("count")?;
        let count = u64::try_from(self.uint()?).map_err(|_| "count overflows u64".to_string())?;
        self.ws();
        self.expect(b',')?;
        self.key("nanos")?;
        let nanos = self.uint()?;
        self.ws();
        self.expect(b',')?;
        self.key("children")?;
        self.ws();
        self.expect(b'[')?;
        let mut children = Vec::new();
        self.ws();
        if self.bytes.get(self.pos) != Some(&b']') {
            loop {
                children.push(self.node()?);
                self.ws();
                if self.bytes.get(self.pos) == Some(&b',') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.ws();
        self.expect(b']')?;
        self.ws();
        self.expect(b'}')?;
        Ok(ReportNode {
            name,
            count,
            nanos,
            children,
        })
    }
}

/// Maps a run phase onto its canonical profile path.
fn phase_path(phase: RunPhase) -> &'static str {
    match phase {
        RunPhase::Model => "model",
        RunPhase::CTable => "ctable",
        RunPhase::Select => "round/select",
        RunPhase::Post => "round/post",
        RunPhase::Propagate => "round/propagate",
        RunPhase::Finalize => "finalize",
    }
}

fn solve_path(phase: RunPhase) -> String {
    format!("{}/solve", phase_path(phase))
}

/// An [`Observer`] that folds the event stream into the canonical span
/// taxonomy:
///
/// ```text
/// run
/// ├── model            (SpanFinished)
/// │   └── train        (ModelTrained; em/search iteration counts below)
/// ├── ctable           (SpanFinished)
/// │   └── build        (CTableBuilt)
/// ├── round            (RoundFinished; count = rounds)
/// │   ├── select       (SpanFinished, summed over rounds)
/// │   │   └── solve    (ProbabilityBatch; count = solver calls)
/// │   │       └── adpll  (SolverSearch; count = decisions, nanos 0)
/// │   ├── post
/// │   └── propagate
/// │       └── fixpoint (Propagated)
/// └── finalize
///     └── solve
/// ```
///
/// Every `nanos` filed here was measured at the emission site, so the
/// profiler never times anything itself and adds no clock reads to the
/// run.
#[derive(Debug, Default)]
pub struct RunProfiler {
    profiler: Profiler,
}

impl RunProfiler {
    /// An empty run profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the accumulated span tree.
    pub fn report(&self) -> ProfileReport {
        self.profiler.report()
    }
}

impl Observer for RunProfiler {
    fn event(&mut self, event: &Event) {
        match event {
            Event::SpanFinished { phase, nanos } => {
                self.profiler.record(phase_path(*phase), *nanos);
            }
            Event::ModelTrained {
                em_iters,
                search_iters,
                nanos,
                ..
            } => {
                self.profiler.record("model/train", *nanos);
                self.profiler
                    .record_with("model/train/em", 0, *em_iters as u64);
                self.profiler
                    .record_with("model/train/search", 0, *search_iters as u64);
            }
            Event::CTableBuilt { nanos, .. } => {
                self.profiler.record("ctable/build", *nanos);
            }
            Event::ProbabilityBatch {
                phase,
                solver_calls,
                nanos,
                ..
            } => {
                self.profiler
                    .record_with(&solve_path(*phase), *nanos, *solver_calls);
            }
            Event::SolverSearch {
                phase, decisions, ..
            } => {
                let path = format!("{}/adpll", solve_path(*phase));
                self.profiler.record_with(&path, 0, *decisions);
            }
            Event::Propagated { nanos, .. } => {
                self.profiler.record("round/propagate/fixpoint", *nanos);
            }
            Event::RoundFinished { nanos, .. } => {
                self.profiler.record("round", *nanos);
            }
            Event::RunFinished { nanos, .. } => {
                self.profiler.record("", *nanos);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builds_paths_and_keeps_creation_order() {
        let mut p = Profiler::default();
        p.record("round/select", 100);
        p.record("round/post", 40);
        p.record("round/select", 60);
        p.record("round", 250);
        let r = p.report();
        assert_eq!(r.root().name, "run");
        let round = r.node("round").unwrap();
        assert_eq!(round.nanos, 250);
        assert_eq!(round.count, 1);
        let names: Vec<&str> = round.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["select", "post"]);
        assert_eq!(r.node("round/select").unwrap().nanos, 160);
        assert_eq!(r.node("round/select").unwrap().count, 2);
        assert_eq!(r.node("round/missing"), None);
        assert_eq!(r.node("").unwrap().name, "run");
    }

    #[test]
    fn enter_exit_times_nested_spans() {
        let mut p = Profiler::new("root");
        p.enter("outer");
        p.enter("inner");
        p.exit();
        p.exit();
        p.exit(); // extra exit must not pop the root
        p.enter("outer"); // re-entering merges into the same node
        p.exit();
        let r = p.report();
        assert_eq!(r.node("outer").unwrap().count, 2);
        assert_eq!(r.node("outer/inner").unwrap().count, 1);
        assert_eq!(r.root().children.len(), 1);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut p = Profiler::default();
        p.record("model", 1_000_000);
        p.record_with("model/train/em", 0, 7);
        p.record("round/select", 42);
        p.record("", 2_000_000);
        let report = p.report();
        let json = report.to_json();
        let reparsed = ProfileReport::from_json(&json).expect("canonical JSON parses");
        assert_eq!(reparsed, report);
        assert_eq!(reparsed.to_json(), json);
    }

    #[test]
    fn json_exact_bytes_for_small_tree() {
        let mut p = Profiler::new("run");
        p.record("a", 5);
        let json = p.report().to_json();
        assert_eq!(
            json,
            "{\"name\": \"run\", \"count\": 0, \"nanos\": 0, \"children\": \
             [{\"name\": \"a\", \"count\": 1, \"nanos\": 5, \"children\": []}]}"
        );
    }

    #[test]
    fn json_escapes_special_names() {
        let mut p = Profiler::new("a\"b\\c\nd");
        p.record("x\ty", 1);
        let json = p.report().to_json();
        let reparsed = ProfileReport::from_json(&json).unwrap();
        assert_eq!(reparsed.root().name, "a\"b\\c\nd");
        assert_eq!(reparsed.to_json(), json);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"name\": \"x\"}",
            "{\"count\": 1, \"name\": \"x\", \"nanos\": 0, \"children\": []}",
            "{\"name\": \"x\", \"count\": -1, \"nanos\": 0, \"children\": []}",
            "{\"name\": \"x\", \"count\": 1, \"nanos\": 0, \"children\": []} trailing",
        ] {
            assert!(ProfileReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn run_profiler_maps_events_onto_taxonomy() {
        let mut rp = RunProfiler::new();
        rp.event(&Event::ModelTrained {
            bic: -1.0,
            edges: 2,
            em_iters: 4,
            search_iters: 3,
            nanos: 500,
        });
        rp.event(&Event::SpanFinished {
            phase: RunPhase::Model,
            nanos: 600,
        });
        rp.event(&Event::ProbabilityBatch {
            phase: RunPhase::Select,
            objects: 3,
            solver_calls: 3,
            branches: 9,
            cache_hits: 1,
            fallbacks: 0,
            nanos: 200,
        });
        rp.event(&Event::SolverSearch {
            phase: RunPhase::Select,
            decisions: 9,
            direct_components: 2,
            component_splits: 1,
            cache_hits: 1,
            cache_misses: 4,
            max_depth: 3,
        });
        rp.event(&Event::RoundFinished {
            round: 1,
            posted: 2,
            answered: 2,
            expired: 0,
            requeued: 0,
            retried: 0,
            nanos: 900,
        });
        rp.event(&Event::RunFinished {
            rounds: 1,
            tasks_posted: 2,
            tasks_answered: 2,
            tasks_expired: 0,
            tasks_retried: 0,
            probability_evals: 3,
            nanos: 2000,
        });
        let r = rp.report();
        assert_eq!(r.root().nanos, 2000);
        assert_eq!(r.node("model").unwrap().nanos, 600);
        assert_eq!(r.node("model/train").unwrap().nanos, 500);
        assert_eq!(r.node("model/train/em").unwrap().count, 4);
        assert_eq!(r.node("model/train/search").unwrap().count, 3);
        assert_eq!(r.node("round").unwrap().nanos, 900);
        let solve = r.node("round/select/solve").unwrap();
        assert_eq!(solve.nanos, 200);
        assert_eq!(solve.count, 3);
        let adpll = r.node("round/select/solve/adpll").unwrap();
        assert_eq!(adpll.count, 9);
        assert_eq!(adpll.nanos, 0);
        let text = r.render_text();
        assert!(text.contains("adpll"), "text: {text}");
    }
}
