//! In-memory aggregation of a run's event stream.
//!
//! [`MetricsRecorder`] is the sink tests and the bench harness assert on:
//! it keeps the raw event list, per-phase wall-clock totals, scalar
//! counters, and log₂-bucketed [`Histogram`]s of per-round task counts and
//! propagation depth.

use crate::event::{Event, RunPhase};
use crate::sink::Observer;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds zeros).
/// Coarse on purpose: round sizes and propagation depths span orders of
/// magnitude, and exact quantiles are not worth per-event allocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupancy per log₂ bucket, lowest first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.1} max={}",
            self.count,
            self.min,
            self.mean(),
            self.max
        )
    }
}

/// Scalar counters aggregated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Crowdsourcing rounds observed (`RoundFinished` events).
    pub rounds: u64,
    /// Tasks posted, summed over rounds.
    pub posted: u64,
    /// Tasks answered, summed over rounds.
    pub answered: u64,
    /// Tasks abandoned for good, summed over rounds.
    pub expired: u64,
    /// Failed tasks re-queued for another attempt, summed over rounds.
    pub requeued: u64,
    /// Re-posts of previously failed tasks, summed over rounds.
    pub retried: u64,
    /// Conditions solved across all probability batches.
    pub probability_evals: u64,
    /// Solver invocations (including fallback re-solves).
    pub solver_calls: u64,
    /// Solver value-branching decisions.
    pub solver_branches: u64,
    /// Solver component-cache hits.
    pub solver_cache_hits: u64,
    /// Crowd answers folded into the constraint store.
    pub answers_propagated: u64,
    /// Conditions decided by propagation.
    pub conditions_decided: u64,
    /// Tasks abandoned at finalization (from `Degraded`).
    pub tasks_abandoned: u64,
    /// Conditions re-solved by the ADPLL fallback after the configured
    /// solver errored.
    pub solver_fallbacks: u64,
    /// Durable checkpoints written.
    pub checkpoints_written: u64,
}

/// An [`Observer`] that aggregates the event stream in memory.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    events: Vec<Event>,
    phase_nanos: BTreeMap<RunPhase, u128>,
    counters: Counters,
    tasks_per_round: Histogram,
    propagation_depth: Histogram,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every event seen, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event stream with timing fields zeroed — two same-seed runs
    /// produce identical redacted streams.
    pub fn redacted_events(&self) -> Vec<Event> {
        self.events.iter().map(Event::redact_timing).collect()
    }

    /// Aggregated scalar counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total wall-clock nanoseconds attributed to `phase` (summed across
    /// rounds for the per-round phases).
    pub fn phase_nanos(&self, phase: RunPhase) -> u128 {
        self.phase_nanos.get(&phase).copied().unwrap_or(0)
    }

    /// Histogram of tasks posted per round.
    pub fn tasks_per_round(&self) -> &Histogram {
        &self.tasks_per_round
    }

    /// Histogram of propagation fixpoint depth per round.
    pub fn propagation_depth(&self) -> &Histogram {
        &self.propagation_depth
    }

    /// A compact human-readable digest (phase timings, counters,
    /// histograms), suitable for `--metrics` output.
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "rounds {}  posted {}  answered {}  expired {}  retried {}",
            c.rounds, c.posted, c.answered, c.expired, c.retried
        );
        let _ = writeln!(
            s,
            "probability evals {}  solver calls {} (branches {}, cache hits {}, fallbacks {})",
            c.probability_evals,
            c.solver_calls,
            c.solver_branches,
            c.solver_cache_hits,
            c.solver_fallbacks
        );
        let _ = writeln!(
            s,
            "propagated {} answers, {} conditions decided",
            c.answers_propagated, c.conditions_decided
        );
        let _ = writeln!(s, "tasks/round: {}", self.tasks_per_round);
        let _ = writeln!(s, "propagation depth: {}", self.propagation_depth);
        let _ = write!(s, "phase timings:");
        for phase in RunPhase::ALL {
            let nanos = self.phase_nanos(phase);
            let _ = write!(s, " {}={:.3}ms", phase, nanos as f64 / 1e6);
        }
        s
    }
}

impl Observer for MetricsRecorder {
    fn event(&mut self, event: &Event) {
        match event {
            Event::SpanFinished { phase, nanos } => {
                *self.phase_nanos.entry(*phase).or_insert(0) += nanos;
            }
            Event::ProbabilityBatch {
                objects,
                solver_calls,
                branches,
                cache_hits,
                fallbacks,
                ..
            } => {
                self.counters.probability_evals += *objects as u64;
                self.counters.solver_calls += solver_calls;
                self.counters.solver_branches += branches;
                self.counters.solver_cache_hits += cache_hits;
                self.counters.solver_fallbacks += fallbacks;
            }
            Event::Propagated {
                answers,
                decided,
                depth,
                ..
            } => {
                self.counters.answers_propagated += *answers as u64;
                self.counters.conditions_decided += *decided as u64;
                self.propagation_depth.record(*depth as u64);
            }
            Event::RoundFinished {
                posted,
                answered,
                expired,
                requeued,
                retried,
                ..
            } => {
                self.counters.rounds += 1;
                self.counters.posted += *posted as u64;
                self.counters.answered += *answered as u64;
                self.counters.expired += *expired as u64;
                self.counters.requeued += *requeued as u64;
                self.counters.retried += *retried as u64;
                self.tasks_per_round.record(*posted as u64);
            }
            Event::Degraded { tasks_abandoned } => {
                self.counters.tasks_abandoned += *tasks_abandoned as u64;
            }
            Event::CheckpointWritten { .. } => {
                self.counters.checkpoints_written += 1;
            }
            _ => {}
        }
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        // buckets: [0], [1], [2..4), [4..8), [8..16)
        assert_eq!(h.buckets(), &[1, 1, 2, 1, 1]);
    }

    #[test]
    fn recorder_aggregates_counters_and_spans() {
        let mut rec = MetricsRecorder::new();
        rec.event(&Event::RoundStarted { round: 1 });
        rec.event(&Event::ProbabilityBatch {
            phase: RunPhase::Select,
            objects: 4,
            solver_calls: 4,
            branches: 10,
            cache_hits: 3,
            fallbacks: 1,
            nanos: 100,
        });
        rec.event(&Event::Propagated {
            answers: 2,
            decided: 1,
            depth: 3,
            nanos: 50,
        });
        rec.event(&Event::RoundFinished {
            round: 1,
            posted: 2,
            answered: 2,
            expired: 0,
            requeued: 0,
            retried: 0,
            nanos: 200,
        });
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Select,
            nanos: 120,
        });
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Select,
            nanos: 30,
        });
        let c = rec.counters();
        assert_eq!(c.rounds, 1);
        assert_eq!(c.posted, 2);
        assert_eq!(c.probability_evals, 4);
        assert_eq!(c.solver_branches, 10);
        assert_eq!(c.solver_fallbacks, 1);
        assert_eq!(c.answers_propagated, 2);
        assert_eq!(rec.phase_nanos(RunPhase::Select), 150);
        assert_eq!(rec.phase_nanos(RunPhase::Post), 0);
        assert_eq!(rec.tasks_per_round().count(), 1);
        assert_eq!(rec.propagation_depth().max(), 3);
        assert_eq!(rec.events().len(), 6);
        assert!(rec.summary().contains("posted 2"));
    }

    #[test]
    fn redacted_events_zero_timing() {
        let mut rec = MetricsRecorder::new();
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Model,
            nanos: 999,
        });
        match rec.redacted_events()[0] {
            Event::SpanFinished { nanos, .. } => assert_eq!(nanos, 0),
            _ => unreachable!(),
        }
    }
}
