//! In-memory aggregation of a run's event stream.
//!
//! [`MetricsRecorder`] is the sink tests and the bench harness assert on:
//! it keeps the raw event list, per-phase wall-clock totals (reconciled
//! against the run total via [`MetricsRecorder::unattributed_nanos`]),
//! scalar counters, and exact-count [`Histogram`]s of per-round task
//! counts and propagation depth.

use crate::event::{Event, RunPhase};
use crate::sink::Observer;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An exact-count histogram of `u64` samples with quantile extraction.
///
/// Stores one counter per distinct value. The sample spaces we record
/// (round sizes, propagation depths, trial timings) have few distinct
/// values, so exact storage is cheaper than sketching and makes
/// [`Histogram::quantile`] exact rather than bucket-approximate. A
/// coarse log₂ view is still available via [`Histogram::buckets`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    values: BTreeMap<u64, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.values.entry(value).or_insert(0) += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile: the smallest recorded value `v` such that at
    /// least `⌈q·n⌉` samples are `≤ v`. Exact, because every sample is
    /// kept. Returns 0 when empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (&value, &n) in &self.values {
            seen += n;
            if seen >= rank {
                return value;
            }
        }
        self.max
    }

    /// Median (nearest-rank).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (nearest-rank).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (nearest-rank).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Occupancy per log₂ bucket, lowest first: bucket `i` holds samples
    /// in `[2^(i-1), 2^i)`, bucket 0 holds zeros. Derived on demand from
    /// the exact counts.
    pub fn buckets(&self) -> Vec<u64> {
        let mut buckets: Vec<u64> = Vec::new();
        for (&value, &n) in &self.values {
            let bucket = if value == 0 {
                0
            } else {
                (64 - value.leading_zeros()) as usize
            };
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += n;
        }
        buckets
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count,
            self.min,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// Scalar counters aggregated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Crowdsourcing rounds observed (`RoundFinished` events).
    pub rounds: u64,
    /// Tasks posted, summed over rounds.
    pub posted: u64,
    /// Tasks answered, summed over rounds.
    pub answered: u64,
    /// Tasks abandoned for good, summed over rounds.
    pub expired: u64,
    /// Failed tasks re-queued for another attempt, summed over rounds.
    pub requeued: u64,
    /// Re-posts of previously failed tasks, summed over rounds.
    pub retried: u64,
    /// Conditions solved across all probability batches.
    pub probability_evals: u64,
    /// Solver invocations (including fallback re-solves).
    pub solver_calls: u64,
    /// Solver value-branching decisions.
    pub solver_branches: u64,
    /// Solver component-cache hits.
    pub solver_cache_hits: u64,
    /// Correlated components solved by branching (cache empty or caching
    /// disabled). From `SolverSearch` events.
    pub solver_cache_misses: u64,
    /// Independent components closed directly by the disjunctive rule.
    /// From `SolverSearch` events.
    pub solver_direct_components: u64,
    /// Component decompositions that split a condition into more than one
    /// independent sub-problem. From `SolverSearch` events.
    pub solver_component_splits: u64,
    /// Deepest branching recursion seen in any probability batch
    /// (combined by max, not sum). From `SolverSearch` events.
    pub solver_max_depth: u64,
    /// Crowd answers folded into the constraint store.
    pub answers_propagated: u64,
    /// Conditions decided by propagation.
    pub conditions_decided: u64,
    /// Tasks abandoned at finalization (from `Degraded`).
    pub tasks_abandoned: u64,
    /// Conditions re-solved by the ADPLL fallback after the configured
    /// solver errored.
    pub solver_fallbacks: u64,
    /// Durable checkpoints written.
    pub checkpoints_written: u64,
}

/// An [`Observer`] that aggregates the event stream in memory.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    events: Vec<Event>,
    phase_nanos: BTreeMap<RunPhase, u128>,
    total_nanos: u128,
    counters: Counters,
    tasks_per_round: Histogram,
    propagation_depth: Histogram,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every event seen, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The event stream with timing fields zeroed — two same-seed runs
    /// produce identical redacted streams.
    pub fn redacted_events(&self) -> Vec<Event> {
        self.events.iter().map(Event::redact_timing).collect()
    }

    /// Aggregated scalar counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Total wall-clock nanoseconds attributed to `phase` (summed across
    /// rounds for the per-round phases).
    pub fn phase_nanos(&self, phase: RunPhase) -> u128 {
        self.phase_nanos.get(&phase).copied().unwrap_or(0)
    }

    /// Total run wall-clock time from `RunFinished` (0 until the run
    /// finishes).
    pub fn total_nanos(&self) -> u128 {
        self.total_nanos
    }

    /// Wall-clock nanoseconds covered by phase spans, summed over all
    /// phases.
    pub fn attributed_nanos(&self) -> u128 {
        self.phase_nanos.values().sum()
    }

    /// Run time *not* covered by any phase span: bookkeeping between
    /// spans, round-loop control flow, report assembly. Reconciles the
    /// per-phase totals with the `RunFinished` wall time, so
    /// `attributed_nanos() + unattributed_nanos() == total_nanos()` holds
    /// once the run finishes (0 before then, and if clock skew ever made
    /// the spans overshoot the total the difference saturates to 0 rather
    /// than underflowing).
    pub fn unattributed_nanos(&self) -> u128 {
        self.total_nanos.saturating_sub(self.attributed_nanos())
    }

    /// A compact human-readable digest (phase timings, counters,
    /// histograms), suitable for `--metrics` output.
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "rounds {}  posted {}  answered {}  expired {}  retried {}",
            c.rounds, c.posted, c.answered, c.expired, c.retried
        );
        let _ = writeln!(
            s,
            "probability evals {}  solver calls {} (branches {}, cache hits {}, fallbacks {})",
            c.probability_evals,
            c.solver_calls,
            c.solver_branches,
            c.solver_cache_hits,
            c.solver_fallbacks
        );
        let _ = writeln!(
            s,
            "solver search: {} cache misses, {} direct components, {} splits, max depth {}",
            c.solver_cache_misses,
            c.solver_direct_components,
            c.solver_component_splits,
            c.solver_max_depth
        );
        let _ = writeln!(
            s,
            "propagated {} answers, {} conditions decided",
            c.answers_propagated, c.conditions_decided
        );
        let _ = writeln!(s, "tasks/round: {}", self.tasks_per_round);
        let _ = writeln!(s, "propagation depth: {}", self.propagation_depth);
        let _ = write!(s, "phase timings:");
        for phase in RunPhase::ALL {
            let nanos = self.phase_nanos(phase);
            let _ = write!(s, " {}={:.3}ms", phase, nanos as f64 / 1e6);
        }
        let _ = write!(
            s,
            " unattributed={:.3}ms",
            self.unattributed_nanos() as f64 / 1e6
        );
        s
    }

    /// Histogram of tasks posted per round.
    pub fn tasks_per_round(&self) -> &Histogram {
        &self.tasks_per_round
    }

    /// Histogram of propagation fixpoint depth per round.
    pub fn propagation_depth(&self) -> &Histogram {
        &self.propagation_depth
    }
}

impl Observer for MetricsRecorder {
    fn event(&mut self, event: &Event) {
        match event {
            Event::SpanFinished { phase, nanos } => {
                *self.phase_nanos.entry(*phase).or_insert(0) += nanos;
            }
            Event::ProbabilityBatch {
                objects,
                solver_calls,
                branches,
                cache_hits,
                fallbacks,
                ..
            } => {
                self.counters.probability_evals += *objects as u64;
                self.counters.solver_calls += solver_calls;
                self.counters.solver_branches += branches;
                self.counters.solver_cache_hits += cache_hits;
                self.counters.solver_fallbacks += fallbacks;
            }
            Event::SolverSearch {
                direct_components,
                component_splits,
                cache_misses,
                max_depth,
                ..
            } => {
                // decisions and cache_hits mirror the matching
                // ProbabilityBatch and are already counted there.
                self.counters.solver_direct_components += direct_components;
                self.counters.solver_component_splits += component_splits;
                self.counters.solver_cache_misses += cache_misses;
                self.counters.solver_max_depth = self.counters.solver_max_depth.max(*max_depth);
            }
            Event::Propagated {
                answers,
                decided,
                depth,
                ..
            } => {
                self.counters.answers_propagated += *answers as u64;
                self.counters.conditions_decided += *decided as u64;
                self.propagation_depth.record(*depth as u64);
            }
            Event::RoundFinished {
                posted,
                answered,
                expired,
                requeued,
                retried,
                ..
            } => {
                self.counters.rounds += 1;
                self.counters.posted += *posted as u64;
                self.counters.answered += *answered as u64;
                self.counters.expired += *expired as u64;
                self.counters.requeued += *requeued as u64;
                self.counters.retried += *retried as u64;
                self.tasks_per_round.record(*posted as u64);
            }
            Event::RunFinished { nanos, .. } => {
                self.total_nanos = *nanos;
            }
            Event::Degraded { tasks_abandoned } => {
                self.counters.tasks_abandoned += *tasks_abandoned as u64;
            }
            Event::CheckpointWritten { .. } => {
                self.counters.checkpoints_written += 1;
            }
            _ => {}
        }
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        // buckets: [0], [1], [2..4), [4..8), [8..16)
        assert_eq!(h.buckets(), &[1, 1, 2, 1, 1]);
    }

    #[test]
    fn histogram_quantiles_exact_on_known_distribution() {
        // 1..=100 each once: nearest-rank quantiles are exact.
        let mut h = Histogram::default();
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
        // Quantiles must be actual samples, insertion order must not
        // matter, and duplicates must weight the rank.
        let mut skewed = Histogram::default();
        for v in [1000, 10, 10, 10, 10, 10, 10, 10, 10, 10] {
            skewed.record(v);
        }
        assert_eq!(skewed.p50(), 10);
        assert_eq!(skewed.p90(), 10);
        assert_eq!(skewed.p99(), 1000);
        assert_eq!(skewed.max(), 1000);
    }

    #[test]
    fn histogram_empty_edge_case() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn recorder_aggregates_counters_and_spans() {
        let mut rec = MetricsRecorder::new();
        rec.event(&Event::RoundStarted { round: 1 });
        rec.event(&Event::ProbabilityBatch {
            phase: RunPhase::Select,
            objects: 4,
            solver_calls: 4,
            branches: 10,
            cache_hits: 3,
            fallbacks: 1,
            nanos: 100,
        });
        rec.event(&Event::SolverSearch {
            phase: RunPhase::Select,
            decisions: 10,
            direct_components: 6,
            component_splits: 2,
            cache_hits: 3,
            cache_misses: 7,
            max_depth: 4,
        });
        rec.event(&Event::Propagated {
            answers: 2,
            decided: 1,
            depth: 3,
            nanos: 50,
        });
        rec.event(&Event::RoundFinished {
            round: 1,
            posted: 2,
            answered: 2,
            expired: 0,
            requeued: 0,
            retried: 0,
            nanos: 200,
        });
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Select,
            nanos: 120,
        });
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Select,
            nanos: 30,
        });
        let c = rec.counters();
        assert_eq!(c.rounds, 1);
        assert_eq!(c.posted, 2);
        assert_eq!(c.probability_evals, 4);
        assert_eq!(c.solver_branches, 10);
        assert_eq!(c.solver_fallbacks, 1);
        assert_eq!(c.solver_cache_misses, 7);
        assert_eq!(c.solver_component_splits, 2);
        assert_eq!(c.solver_direct_components, 6);
        assert_eq!(c.solver_max_depth, 4);
        assert_eq!(c.answers_propagated, 2);
        assert_eq!(rec.phase_nanos(RunPhase::Select), 150);
        assert_eq!(rec.phase_nanos(RunPhase::Post), 0);
        assert_eq!(rec.tasks_per_round().count(), 1);
        assert_eq!(rec.propagation_depth().max(), 3);
        assert_eq!(rec.events().len(), 7);
        assert!(rec.summary().contains("posted 2"));
    }

    #[test]
    fn unattributed_time_reconciles_with_run_total() {
        let mut rec = MetricsRecorder::new();
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Model,
            nanos: 400,
        });
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Select,
            nanos: 250,
        });
        // Before RunFinished there is no total to reconcile against.
        assert_eq!(rec.total_nanos(), 0);
        assert_eq!(rec.unattributed_nanos(), 0);
        rec.event(&Event::RunFinished {
            rounds: 1,
            tasks_posted: 0,
            tasks_answered: 0,
            tasks_expired: 0,
            tasks_retried: 0,
            probability_evals: 0,
            nanos: 1000,
        });
        assert_eq!(rec.attributed_nanos(), 650);
        assert_eq!(rec.unattributed_nanos(), 350);
        // The invariant the spans must satisfy: no run time is silently
        // dropped between phase spans.
        assert_eq!(
            rec.attributed_nanos() + rec.unattributed_nanos(),
            rec.total_nanos()
        );
        assert!(rec.summary().contains("unattributed=0.000ms"));
    }

    #[test]
    fn redacted_events_zero_timing() {
        let mut rec = MetricsRecorder::new();
        rec.event(&Event::SpanFinished {
            phase: RunPhase::Model,
            nanos: 999,
        });
        match rec.redacted_events()[0] {
            Event::SpanFinished { nanos, .. } => assert_eq!(nanos, 0),
            _ => unreachable!(),
        }
    }
}
