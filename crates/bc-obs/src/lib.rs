//! Observability for BayesCrowd runs: structured events, sinks, metrics.
//!
//! A run emits a stream of [`Event`]s — phase spans, per-round task
//! accounting, solver effort — through the [`Observer`] trait. Built-in
//! sinks:
//!
//! - [`NoopObserver`]: free; the default behind `BayesCrowd::run`.
//! - [`JsonLinesSink`]: streams the trace as JSON lines for offline
//!   analysis; [`Event::from_json_line`] parses it back.
//! - [`MetricsRecorder`]: in-memory aggregation (per-phase timing,
//!   counters, histograms) for tests and the bench harness.
//! - [`RunProfiler`]: folds the stream into a hierarchical
//!   [`ProfileReport`] span tree (`round/select/solve/adpll`, …).
//! - [`Tee`]: fan one stream out to two sinks.
//!
//! ```
//! use bc_obs::{Event, JsonLinesSink, MetricsRecorder, Observer, Tee};
//!
//! let mut trace = JsonLinesSink::new(Vec::new());
//! let mut metrics = MetricsRecorder::new();
//! let mut obs = Tee::new(&mut trace, &mut metrics);
//! obs.event(&Event::RoundStarted { round: 1 });
//! assert_eq!(metrics.events().len(), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod metrics;
mod profile;
mod sink;

pub use event::{Event, RunPhase};
pub use metrics::{Counters, Histogram, MetricsRecorder};
pub use profile::{ProfileReport, Profiler, ReportNode, RunProfiler};
pub use sink::{JsonLinesSink, NoopObserver, Observer, Tee};

use std::time::Instant;

/// A started phase span; finish with [`Span::finish`] to get the elapsed
/// monotonic nanoseconds (the caller decides which event to put them in).
#[derive(Debug)]
pub struct Span {
    phase: RunPhase,
    start: Instant,
}

impl Span {
    /// Starts timing `phase` now.
    pub fn start(phase: RunPhase) -> Self {
        Span {
            phase,
            start: Instant::now(),
        }
    }

    /// The phase being timed.
    pub fn phase(&self) -> RunPhase {
        self.phase
    }

    /// Nanoseconds elapsed so far without consuming the span.
    pub fn elapsed_nanos(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }

    /// Ends the span, emitting [`Event::SpanFinished`] to `observer`, and
    /// returns the elapsed nanoseconds.
    pub fn finish(self, observer: &mut dyn Observer) -> u128 {
        let nanos = self.elapsed_nanos();
        observer.event(&Event::SpanFinished {
            phase: self.phase,
            nanos,
        });
        nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_emits_its_phase() {
        let mut rec = MetricsRecorder::new();
        let span = Span::start(RunPhase::CTable);
        assert_eq!(span.phase(), RunPhase::CTable);
        span.finish(&mut rec);
        match rec.events() {
            [Event::SpanFinished { phase, .. }] => assert_eq!(*phase, RunPhase::CTable),
            other => panic!("unexpected events: {other:?}"),
        }
    }
}
