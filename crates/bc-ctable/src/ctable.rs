//! The c-table itself: one condition per object, plus bulk update plumbing.

use crate::condition::Condition;
use crate::constraint::ConstraintStore;
use bc_data::{ObjectId, Value, VarId};
use std::collections::BTreeSet;

/// What one [`CTable::propagate`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PropagateStats {
    /// Open conditions examined.
    pub examined: usize,
    /// Conditions that became decided (true or false) during the pass.
    pub decided: usize,
    /// Deepest simplify/substitute fixpoint iteration over all conditions —
    /// how far a single crowd answer cascaded.
    pub max_depth: usize,
}

/// A conditional table: `entries[i]` is the condition `φ(o_i)` of object
/// `o_i` being a skyline answer (Definition 3).
#[derive(Clone, Debug, PartialEq)]
pub struct CTable {
    entries: Vec<Condition>,
}

impl CTable {
    /// Wraps one condition per object (indexed by object id).
    pub fn new(entries: Vec<Condition>) -> CTable {
        CTable { entries }
    }

    /// Number of objects.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.entries.len()
    }

    /// The condition of object `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of bounds.
    #[inline]
    pub fn condition(&self, o: ObjectId) -> &Condition {
        &self.entries[o.index()]
    }

    /// Overwrites the condition of object `o`.
    pub fn set_condition(&mut self, o: ObjectId, c: Condition) {
        self.entries[o.index()] = c;
    }

    /// Iterates `(object, condition)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Condition)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, c)| (ObjectId(i as u32), c))
    }

    /// Objects whose condition is still undecided.
    pub fn open_objects(&self) -> Vec<ObjectId> {
        self.iter()
            .filter(|(_, c)| !c.is_decided())
            .map(|(o, _)| o)
            .collect()
    }

    /// Objects whose condition is `true` (certain answers).
    pub fn certain_answers(&self) -> Vec<ObjectId> {
        self.iter()
            .filter(|(_, c)| matches!(c, Condition::True))
            .map(|(o, _)| o)
            .collect()
    }

    /// Total number of expressions still present in open conditions.
    pub fn n_open_exprs(&self) -> usize {
        self.entries.iter().map(Condition::n_exprs).sum()
    }

    /// Every variable mentioned by any open condition — the coordinates a
    /// possible world must assign to decide the whole table.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.entries.iter().flat_map(Condition::vars).collect()
    }

    /// Evaluates every condition under one complete assignment (a possible
    /// world): `result[i]` is whether `φ(o_i)` holds in that world. This is
    /// the world-enumeration hook the exhaustive oracle walks — `lookup`
    /// must cover every variable in [`CTable::vars`].
    pub fn eval_world(&self, lookup: impl Fn(VarId) -> Value + Copy) -> Vec<bool> {
        self.entries.iter().map(|c| c.eval(lookup)).collect()
    }

    /// Re-simplifies every open condition against the constraint store:
    /// decides expressions settled by crowd knowledge, then substitutes any
    /// variable pinned to a single value, iterating to a fixpoint per
    /// condition. Returns counters describing the pass.
    pub fn propagate(&mut self, store: &ConstraintStore) -> PropagateStats {
        let mut stats = PropagateStats::default();
        for cond in &mut self.entries {
            if cond.is_decided() {
                continue;
            }
            stats.examined += 1;
            let mut current = cond.clone();
            let mut depth = 0;
            loop {
                let simplified = current.simplify(|e| store.decide(e));
                // Substitute pinned variables to expose further collapses
                // (e.g. a var-var expression becoming var-const).
                let mut next = simplified.clone();
                for v in simplified.vars() {
                    if let Some(val) = store.pinned_value(v) {
                        next = next.substitute(v, val);
                    }
                }
                let done = next == current;
                current = next;
                if done {
                    break;
                }
                depth += 1;
            }
            stats.max_depth = stats.max_depth.max(depth);
            if current.is_decided() {
                stats.decided += 1;
            }
            *cond = current;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_ctable, CTableConfig, DominatorStrategy};
    use crate::constraint::Relation;
    use crate::expr::{Expr, Operand};
    use bc_data::generators::sample::paper_dataset;
    use bc_data::VarId;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    fn sample_ctable() -> (bc_data::Dataset, CTable) {
        let data = paper_dataset();
        let ct = build_ctable(
            &data,
            &CTableConfig {
                alpha: 1.0,
                strategy: DominatorStrategy::FastIndex,
            },
        );
        (data, ct)
    }

    #[test]
    fn bookkeeping() {
        let (_, ct) = sample_ctable();
        assert_eq!(ct.n_objects(), 5);
        assert_eq!(ct.certain_answers(), vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(
            ct.open_objects(),
            vec![ObjectId(0), ObjectId(3), ObjectId(4)]
        );
        assert!(ct.n_open_exprs() >= 3 + 4 + 6);
    }

    /// The paper's Example 4 update: after the first round of answers
    /// (`Var(o5,a4) < 4` and `Var(o5,a3) = 3`) the c-table becomes Table 5.
    #[test]
    fn paper_table_5_update() {
        let (data, mut ct) = sample_ctable();
        let mut store = crate::constraint::ConstraintStore::new(&data);
        store.record(v(4, 3), Operand::Const(4), Relation::Lt);
        store.record(v(4, 2), Operand::Const(3), Relation::Eq);
        ct.propagate(&store);

        // φ(o1) turns true.
        assert_eq!(*ct.condition(ObjectId(0)), Condition::True);
        // φ(o4) = (Var(o2,a2) < 3) ∧ (Var(o5,a2) < 3 ∨ Var(o5,a4) < 2).
        let expected_o4 = Condition::from_clauses(vec![
            vec![Expr::lt(v(1, 1), 3)],
            vec![Expr::lt(v(4, 1), 3), Expr::lt(v(4, 3), 2)],
        ]);
        assert_eq!(*ct.condition(ObjectId(3)), expected_o4);
        // φ(o5) = Var(o5,a2) > 2.
        let expected_o5 = Condition::from_clauses(vec![vec![Expr::gt(v(4, 1), 2)]]);
        assert_eq!(*ct.condition(ObjectId(4)), expected_o5);
    }

    /// Second iteration of Example 4: `Var(o5,a2) > 2` and
    /// `Var(o2,a2) > 3` make φ(o5) true and φ(o4) false.
    #[test]
    fn paper_example_4_second_round() {
        let (data, mut ct) = sample_ctable();
        let mut store = crate::constraint::ConstraintStore::new(&data);
        store.record(v(4, 3), Operand::Const(4), Relation::Lt);
        store.record(v(4, 2), Operand::Const(3), Relation::Eq);
        store.record(v(4, 1), Operand::Const(2), Relation::Gt);
        store.record(v(1, 1), Operand::Const(3), Relation::Gt);
        ct.propagate(&store);

        assert_eq!(*ct.condition(ObjectId(4)), Condition::True);
        assert_eq!(*ct.condition(ObjectId(3)), Condition::False);
        assert_eq!(
            ct.certain_answers(),
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
        );
        assert!(ct.open_objects().is_empty());
        assert_eq!(ct.n_open_exprs(), 0);
    }

    #[test]
    fn world_evaluation_hooks() {
        let (data, ct) = sample_ctable();
        let vars = ct.vars();
        // Every variable in the table is a missing cell of the dataset.
        for var in &vars {
            assert_eq!(data.get(var.object, var.attr), None, "{var} is observed");
        }
        // The paper's completion (Table 1 ground truth): o1, o2, o3, o5 in
        // the skyline. Condition truth in that world must agree.
        let complete = bc_data::generators::sample::paper_completion();
        let truth = ct.eval_world(|v| complete.get(v.object, v.attr).unwrap());
        assert_eq!(truth, vec![true, true, true, false, true]);
    }

    #[test]
    fn propagate_reports_examined_decided_and_depth() {
        let (data, mut ct) = sample_ctable();
        let mut store = crate::constraint::ConstraintStore::new(&data);
        store.record(v(4, 3), Operand::Const(4), Relation::Lt);
        store.record(v(4, 2), Operand::Const(3), Relation::Eq);
        let stats = ct.propagate(&store);
        // Three open conditions examined; φ(o1) turns true.
        assert_eq!(stats.examined, 3);
        assert_eq!(stats.decided, 1);
        assert!(stats.max_depth >= 1, "got {stats:?}");
        // A no-op pass examines the remaining open conditions, decides
        // nothing, and cascades nowhere.
        let idle = ct.propagate(&store);
        assert_eq!(idle.examined, 2);
        assert_eq!(idle.decided, 0);
        assert_eq!(idle.max_depth, 0);
    }

    #[test]
    fn propagate_substitutes_pinned_vars_into_var_var_exprs() {
        let (data, mut ct) = sample_ctable();
        let mut store = crate::constraint::ConstraintStore::new(&data);
        // Pin Var(o2,a2) = 1: in φ(o5) the expression
        // Var(o5,a2) > Var(o2,a2) becomes Var(o5,a2) > 1.
        store.record(v(1, 1), Operand::Const(1), Relation::Eq);
        ct.propagate(&store);
        let cond = ct.condition(ObjectId(4));
        assert!(
            cond.exprs().any(|e| *e == Expr::gt(v(4, 1), 1)),
            "expected substituted expression, got {cond}"
        );
        // φ(o4)'s first clause (Var(o2,a2) < 3) is now true and disappears.
        assert_eq!(ct.condition(ObjectId(3)).clauses().len(), 1);
    }
}
