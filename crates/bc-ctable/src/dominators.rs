//! Dominator-set derivation (Definition 5 / Eq. 1–2 of the paper).
//!
//! For an object `o`, the dominator set `D(o)` contains every object that
//! could possibly dominate `o` under *some* completion of the missing
//! values:
//!
//! ```text
//! D(o)   = ∩_i D_i(o)
//! D_i(o) = { p ≠ o | o[i] ≤ p[i] } ∪ O_i   if o[i] observed
//!          O − {o}                          otherwise
//! ```
//!
//! Two derivations are provided: [`DominatorIndex`] — the paper's fast path
//! (sort each dimension once, then answer every `D_i(o)` with precomputed
//! bitsets and combine with bitwise AND/OR) — and
//! [`baseline_dominator_set`], the pairwise-comparison baseline the paper
//! benchmarks against in Figure 2.

use crate::bitset::BitSet;
use bc_data::{Dataset, ObjectId};

/// Precomputed per-dimension bitsets enabling `D(o)` in
/// `O(d · |O| / 64)` word operations per object.
pub struct DominatorIndex {
    n: usize,
    /// `geq[a][v]` = objects whose value in attribute `a` is observed and
    /// `>= v`.
    geq: Vec<Vec<BitSet>>,
    /// `missing[a]` = objects whose value in attribute `a` is missing
    /// (the paper's `O_i`).
    missing: Vec<BitSet>,
}

impl DominatorIndex {
    /// Builds the index: one descending sweep per attribute.
    pub fn build(data: &Dataset) -> DominatorIndex {
        let n = data.n_objects();
        let mut geq = Vec::with_capacity(data.n_attrs());
        let mut missing = Vec::with_capacity(data.n_attrs());
        for a in data.attrs() {
            let card = data.domain(a).cardinality() as usize;
            let mut miss = BitSet::empty(n);
            // Bucket objects by value.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); card];
            for o in data.objects() {
                match data.get(o, a) {
                    Some(v) => buckets[v as usize].push(o.index()),
                    None => miss.insert(o.index()),
                }
            }
            // Accumulate from the top value downwards: geq[v] ⊇ geq[v+1].
            let mut acc = BitSet::empty(n);
            let mut per_value = vec![BitSet::empty(0); card];
            for v in (0..card).rev() {
                for &i in &buckets[v] {
                    acc.insert(i);
                }
                per_value[v] = acc.clone();
            }
            geq.push(per_value);
            missing.push(miss);
        }
        DominatorIndex { n, geq, missing }
    }

    /// The dominator set `D(o)` as a bitset over object indices.
    pub fn dominator_set(&self, data: &Dataset, o: ObjectId) -> BitSet {
        let mut result = BitSet::full(self.n);
        let row = data.row(o);
        for (a, cell) in row.iter().enumerate() {
            if let Some(v) = cell {
                // D_i(o) = geq[v] ∪ O_i.
                result.intersect_with_union(&self.geq[a][*v as usize], &self.missing[a]);
            }
            // Missing o[i]: D_i(o) is the full universe — no-op.
        }
        result.remove(o.index());
        result
    }
}

/// The baseline derivation: a pairwise scan testing, for every other object
/// `p`, whether `p` can possibly dominate `o` (`p` not observed-worse than
/// `o` in any attribute).
pub fn baseline_dominator_set(data: &Dataset, o: ObjectId) -> BitSet {
    let mut result = BitSet::empty(data.n_objects());
    let o_row = data.row(o);
    for p in data.objects() {
        if p == o {
            continue;
        }
        let p_row = data.row(p);
        let possible = o_row.iter().zip(p_row).all(|(oc, pc)| match (oc, pc) {
            (Some(ov), Some(pv)) => ov <= pv,
            _ => true,
        });
        if possible {
            result.insert(p.index());
        }
    }
    result
}

/// Whether complete-cells-only dominance holds: `p` dominates `o` with both
/// rows fully observed (Algorithm 2's line-8 early `false`). Returns `false`
/// when either row has a missing value.
pub fn certainly_dominates(data: &Dataset, p: ObjectId, o: ObjectId) -> bool {
    let p_row = data.row(p);
    let o_row = data.row(o);
    let mut strictly = false;
    for (pc, oc) in p_row.iter().zip(o_row) {
        match (pc, oc) {
            (Some(pv), Some(ov)) => {
                if pv < ov {
                    return false;
                }
                if pv > ov {
                    strictly = true;
                }
            }
            _ => return false,
        }
    }
    strictly
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::paper_dataset;
    use bc_data::missing::inject_mcar;

    /// Table 4 of the paper: the dominator sets over the sample dataset.
    #[test]
    fn paper_table_4() {
        let data = paper_dataset();
        let idx = DominatorIndex::build(&data);
        let sets: Vec<Vec<usize>> = data
            .objects()
            .map(|o| idx.dominator_set(&data, o).iter().collect())
            .collect();
        assert_eq!(sets[0], vec![4], "D(o1) = {{o5}}");
        assert_eq!(sets[1], Vec::<usize>::new(), "D(o2) = {{}}");
        assert_eq!(sets[2], Vec::<usize>::new(), "D(o3) = {{}}");
        assert_eq!(sets[3], vec![1, 4], "D(o4) = {{o2, o5}}");
        assert_eq!(sets[4], vec![0, 1], "D(o5) = {{o1, o2}}");
    }

    #[test]
    fn fast_index_agrees_with_baseline() {
        let complete = bc_data::generators::classic::independent(300, 5, 10, 77);
        let (data, _) = inject_mcar(&complete, 0.15, 78);
        let idx = DominatorIndex::build(&data);
        for o in data.objects() {
            assert_eq!(
                idx.dominator_set(&data, o),
                baseline_dominator_set(&data, o),
                "mismatch at {o}"
            );
        }
    }

    #[test]
    fn fully_missing_object_has_universe_dominator_set() {
        let complete = bc_data::generators::classic::independent(20, 3, 8, 5);
        let mut data = complete.clone();
        for a in data.attrs() {
            data.set(ObjectId(0), a, None).unwrap();
        }
        let idx = DominatorIndex::build(&data);
        assert_eq!(idx.dominator_set(&data, ObjectId(0)).count(), 19);
    }

    #[test]
    fn certain_dominance_requires_complete_rows_and_strictness() {
        let data = paper_dataset();
        // o4 = (4,3,1,2,1) vs o1 = (5,2,3,4,1): o1 does not dominate o4
        // (worse in a2), and vice versa.
        assert!(!certainly_dominates(&data, ObjectId(0), ObjectId(3)));
        // Any pair involving o5 (missing values) is never certain.
        assert!(!certainly_dominates(&data, ObjectId(4), ObjectId(0)));

        // Build a clear-cut case.
        let complete = bc_data::Dataset::from_complete_rows(
            "x",
            bc_data::domain::uniform_domains(2, 8).unwrap(),
            vec![vec![5, 5], vec![3, 5], vec![3, 5]],
        )
        .unwrap();
        assert!(certainly_dominates(&complete, ObjectId(0), ObjectId(1)));
        assert!(
            !certainly_dominates(&complete, ObjectId(1), ObjectId(2)),
            "ties never dominate"
        );
    }
}
