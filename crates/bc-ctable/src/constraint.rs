//! Constraint store: accumulates crowd answers and propagates them.
//!
//! A crowd answer is stronger than the truth value of a single expression:
//! it pins the relation of a variable to a constant (shrinking the set of
//! still-possible values) or to another variable (a relational fact). The
//! store keeps both kinds of knowledge and is consulted when simplifying
//! *every* condition in the c-table — this cross-condition inference is what
//! the paper credits for BayesCrowd needing far fewer tasks than CrowdSky
//! (see the update from Table 3 to Table 5).

use crate::expr::{mask_range, Expr, Operand};
use bc_data::{Dataset, Value, VarId};
use std::collections::BTreeMap;

/// The outcome of a triple-choice crowd task: how the (hidden) left operand
/// relates to the right operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Relation {
    /// Left is smaller.
    Lt,
    /// Operands are equal.
    Eq,
    /// Left is larger.
    Gt,
}

impl Relation {
    /// The relation seen from the right operand's side.
    pub fn flipped(self) -> Relation {
        match self {
            Relation::Lt => Relation::Gt,
            Relation::Eq => Relation::Eq,
            Relation::Gt => Relation::Lt,
        }
    }

    /// The true relation between two values.
    pub fn between(l: Value, r: Value) -> Relation {
        match l.cmp(&r) {
            std::cmp::Ordering::Less => Relation::Lt,
            std::cmp::Ordering::Equal => Relation::Eq,
            std::cmp::Ordering::Greater => Relation::Gt,
        }
    }
}

/// Accumulated knowledge about missing-value variables.
#[derive(Clone, Debug)]
pub struct ConstraintStore {
    /// Cardinality of each attribute's domain (indexed by attribute).
    attr_cards: Vec<u16>,
    /// Candidate-value masks for variables we have learned something about;
    /// absent variables implicitly have the full domain mask.
    masks: BTreeMap<VarId, u64>,
    /// Relational facts between variable pairs, keyed with the smaller
    /// variable first (the relation is expressed from that variable's side).
    facts: BTreeMap<(VarId, VarId), Relation>,
}

impl ConstraintStore {
    /// An empty store for a dataset's attribute domains.
    pub fn new(data: &Dataset) -> ConstraintStore {
        ConstraintStore {
            attr_cards: data.domains().iter().map(|d| d.cardinality()).collect(),
            masks: BTreeMap::new(),
            facts: BTreeMap::new(),
        }
    }

    /// Rebuilds a store from its serialized parts (see the accessors
    /// [`ConstraintStore::attr_cards`], [`ConstraintStore::masks`] and
    /// [`ConstraintStore::facts`]) — the checkpoint/restore path.
    pub fn from_parts(
        attr_cards: Vec<u16>,
        masks: BTreeMap<VarId, u64>,
        facts: BTreeMap<(VarId, VarId), Relation>,
    ) -> ConstraintStore {
        ConstraintStore {
            attr_cards,
            masks,
            facts,
        }
    }

    /// Cardinality of each attribute's domain, indexed by attribute.
    pub fn attr_cards(&self) -> &[u16] {
        &self.attr_cards
    }

    /// The explicitly narrowed candidate-value masks (variables not present
    /// implicitly keep their full domain mask).
    pub fn masks(&self) -> &BTreeMap<VarId, u64> {
        &self.masks
    }

    /// The recorded var–var relational facts, keyed smaller variable first.
    pub fn facts(&self) -> &BTreeMap<(VarId, VarId), Relation> {
        &self.facts
    }

    fn full_mask(&self, v: VarId) -> u64 {
        let card = self.attr_cards[v.attr.index()];
        if card == 64 {
            u64::MAX
        } else {
            (1u64 << card) - 1
        }
    }

    /// Candidate-value mask of `v` (full domain if nothing is known).
    pub fn mask(&self, v: VarId) -> u64 {
        self.masks
            .get(&v)
            .copied()
            .unwrap_or_else(|| self.full_mask(v))
    }

    /// If only one value remains possible for `v`, that value.
    pub fn pinned_value(&self, v: VarId) -> Option<Value> {
        let m = self.mask(v);
        if m != 0 && m & (m - 1) == 0 {
            Some(m.trailing_zeros() as Value)
        } else {
            None
        }
    }

    /// Records the answer to a task comparing `var` against `rhs`.
    ///
    /// Var-const answers shrink `var`'s mask. Var-var answers record a fact
    /// and additionally tighten both masks by interval reasoning (`l < r`
    /// implies `l < max(r)` and `r > min(l)`).
    pub fn record(&mut self, var: VarId, rhs: Operand, relation: Relation) {
        match rhs {
            Operand::Const(c) => {
                let keep = match relation {
                    Relation::Lt => below_mask(c),
                    Relation::Eq => {
                        if c < 64 {
                            1u64 << c
                        } else {
                            0
                        }
                    }
                    Relation::Gt => above_mask(c),
                };
                let m = self.mask(var) & keep;
                self.masks.insert(var, m);
            }
            Operand::Var(other) => {
                let (a, b, rel) = if var <= other {
                    (var, other, relation)
                } else {
                    (other, var, relation.flipped())
                };
                self.facts.insert((a, b), rel);
                // Interval propagation between the two masks.
                let (ma, mb) = (self.mask(a), self.mask(b));
                if let (Some((amin, amax)), Some((bmin, bmax))) = (mask_range(ma), mask_range(mb)) {
                    let (na, nb) = match rel {
                        Relation::Lt => (ma & below_mask(bmax), mb & above_mask(amin)),
                        Relation::Gt => (ma & above_mask(bmin), mb & below_mask(amax)),
                        Relation::Eq => (ma & mb, mb & ma),
                    };
                    self.masks.insert(a, na);
                    self.masks.insert(b, nb);
                }
            }
        }
    }

    /// The recorded fact between two variables, if any (expressed from
    /// `l`'s side).
    pub fn fact(&self, l: VarId, r: VarId) -> Option<Relation> {
        if l <= r {
            self.facts.get(&(l, r)).copied()
        } else {
            self.facts.get(&(r, l)).map(|f| f.flipped())
        }
    }

    /// Tries to settle an expression's truth value from the accumulated
    /// knowledge: relational facts first, then candidate-mask interval
    /// reasoning.
    pub fn decide(&self, e: &Expr) -> Option<bool> {
        if let Some(r) = e.rhs_var() {
            if let Some(fact) = self.fact(e.var(), r) {
                use crate::expr::CmpOp::*;
                let truth = match (e.op(), fact) {
                    (Lt, Relation::Lt) => true,
                    (Lt, _) => false,
                    (Le, Relation::Gt) => false,
                    (Le, _) => true,
                    (Gt, Relation::Gt) => true,
                    (Gt, _) => false,
                    (Ge, Relation::Lt) => false,
                    (Ge, _) => true,
                    (Eq, Relation::Eq) => true,
                    (Eq, _) => false,
                    (Ne, Relation::Eq) => false,
                    (Ne, _) => true,
                };
                return Some(truth);
            }
        }
        e.decide(|v| self.mask(v))
    }

    /// Number of variables with narrowed masks plus recorded facts — a
    /// measure of accumulated crowd knowledge.
    pub fn knowledge_size(&self) -> usize {
        self.masks.len() + self.facts.len()
    }
}

/// Mask of all values strictly below `c`.
fn below_mask(c: Value) -> u64 {
    if c >= 64 {
        u64::MAX
    } else if c == 0 {
        0
    } else {
        (1u64 << c) - 1
    }
}

/// Mask of all values strictly above `c`.
fn above_mask(c: Value) -> u64 {
    if c >= 63 {
        0
    } else {
        !((1u64 << (c + 1)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::paper_dataset;

    fn store() -> ConstraintStore {
        ConstraintStore::new(&paper_dataset())
    }

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn masks_default_to_full_domain() {
        let s = store();
        // a3 has cardinality 8, a2 cardinality 10.
        assert_eq!(s.mask(v(5, 2)), 0xFF);
        assert_eq!(s.mask(v(5, 1)), 0x3FF);
        assert_eq!(s.pinned_value(v(5, 2)), None);
    }

    #[test]
    fn const_answers_shrink_masks() {
        let mut s = store();
        // Crowd says Var(o5, a4) < 4 (a4 has cardinality 6).
        s.record(v(5, 3), Operand::Const(4), Relation::Lt);
        assert_eq!(s.mask(v(5, 3)), 0b001111);
        // Then Var(o5, a4) > 1.
        s.record(v(5, 3), Operand::Const(1), Relation::Gt);
        assert_eq!(s.mask(v(5, 3)), 0b001100);
        // Then equality pins it.
        s.record(v(5, 3), Operand::Const(2), Relation::Eq);
        assert_eq!(s.pinned_value(v(5, 3)), Some(2));
    }

    #[test]
    fn decided_expressions_follow_the_paper_update() {
        // Example 4: answer Var(o5, a3) = 3 must decide both
        // "Var(o5,a3) < 3" (false) and "Var(o5,a3) > 3" (false),
        // and leave "Var(o5,a3) > 2" true.
        let mut s = store();
        s.record(v(5, 2), Operand::Const(3), Relation::Eq);
        assert_eq!(s.decide(&Expr::lt(v(5, 2), 3)), Some(false));
        assert_eq!(s.decide(&Expr::gt(v(5, 2), 3)), Some(false));
        assert_eq!(s.decide(&Expr::gt(v(5, 2), 2)), Some(true));
    }

    #[test]
    fn var_var_facts_decide_expressions() {
        let mut s = store();
        let l = v(5, 1);
        let r = v(2, 1);
        s.record(l, Operand::Var(r), Relation::Gt);
        assert_eq!(s.decide(&Expr::var_gt(l, r)), Some(true));
        assert_eq!(s.decide(&Expr::var_gt(r, l)), Some(false));
        // The flipped key lookup agrees.
        assert_eq!(s.fact(r, l), Some(Relation::Lt));
    }

    #[test]
    fn var_var_equality_intersects_masks() {
        let mut s = store();
        let l = v(5, 1);
        let r = v(2, 1);
        s.record(l, Operand::Const(5), Relation::Lt); // l in {0..4}
        s.record(r, Operand::Const(2), Relation::Gt); // r in {3..9}
        s.record(l, Operand::Var(r), Relation::Eq);
        assert_eq!(s.mask(l), 0b11000);
        assert_eq!(s.mask(r), 0b11000);
    }

    #[test]
    fn var_var_inequality_tightens_intervals() {
        let mut s = store();
        let l = v(5, 1);
        let r = v(2, 1);
        s.record(r, Operand::Const(4), Relation::Lt); // r in {0..3}
        s.record(l, Operand::Var(r), Relation::Lt); // l < r → l in {0..2}
        assert_eq!(s.mask(l), 0b0111);
        // And r > min(l) = 0 → r in {1..3}.
        assert_eq!(s.mask(r), 0b1110);
    }

    #[test]
    fn undecidable_expressions_stay_open() {
        let s = store();
        assert_eq!(s.decide(&Expr::lt(v(5, 1), 3)), None);
        assert_eq!(s.decide(&Expr::var_gt(v(5, 1), v(2, 1))), None);
    }

    #[test]
    fn mask_helpers() {
        assert_eq!(below_mask(0), 0);
        assert_eq!(below_mask(3), 0b111);
        assert_eq!(below_mask(64), u64::MAX);
        assert_eq!(above_mask(63), 0);
        assert_eq!(above_mask(2), !0b111);
    }

    #[test]
    fn from_parts_round_trips_all_knowledge() {
        let mut s = store();
        s.record(v(5, 1), Operand::Const(4), Relation::Lt);
        s.record(v(5, 1), Operand::Var(v(2, 1)), Relation::Gt);
        let rebuilt = ConstraintStore::from_parts(
            s.attr_cards().to_vec(),
            s.masks().clone(),
            s.facts().clone(),
        );
        assert_eq!(rebuilt.masks(), s.masks());
        assert_eq!(rebuilt.facts(), s.facts());
        assert_eq!(rebuilt.mask(v(5, 1)), s.mask(v(5, 1)));
        assert_eq!(rebuilt.knowledge_size(), s.knowledge_size());
    }
}
