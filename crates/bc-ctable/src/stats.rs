//! Summary statistics of a c-table, for reports and the CLI.

use crate::condition::Condition;
use crate::ctable::CTable;
use bc_data::VarId;
use std::collections::BTreeSet;
use std::fmt;

/// Aggregate shape of a c-table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CTableStats {
    /// Objects with condition `true` (certain answers).
    pub n_true: usize,
    /// Objects with condition `false` (certain non-answers, including the
    /// α-pruned ones).
    pub n_false: usize,
    /// Objects with an open condition.
    pub n_open: usize,
    /// Expressions across all open conditions (with clause repetition).
    pub total_exprs: usize,
    /// Clauses across all open conditions.
    pub total_clauses: usize,
    /// Largest number of clauses in one condition.
    pub max_clauses: usize,
    /// Largest number of expressions in one condition.
    pub max_exprs: usize,
    /// Distinct variables appearing in any open condition.
    pub distinct_vars: usize,
}

impl CTableStats {
    /// Computes the statistics of a c-table.
    pub fn of(ctable: &CTable) -> CTableStats {
        let mut stats = CTableStats::default();
        let mut vars: BTreeSet<VarId> = BTreeSet::new();
        for (_, cond) in ctable.iter() {
            match cond {
                Condition::True => stats.n_true += 1,
                Condition::False => stats.n_false += 1,
                Condition::Cnf(clauses) => {
                    stats.n_open += 1;
                    stats.total_clauses += clauses.len();
                    stats.max_clauses = stats.max_clauses.max(clauses.len());
                    let exprs = cond.n_exprs();
                    stats.total_exprs += exprs;
                    stats.max_exprs = stats.max_exprs.max(exprs);
                    vars.extend(cond.vars());
                }
            }
        }
        stats.distinct_vars = vars.len();
        stats
    }

    /// Mean clauses per open condition (`|D|` of the paper's complexity
    /// analysis).
    pub fn mean_clauses(&self) -> f64 {
        if self.n_open == 0 {
            0.0
        } else {
            self.total_clauses as f64 / self.n_open as f64
        }
    }
}

impl fmt::Display for CTableStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "true={} false={} open={} (clauses: total={} mean={:.1} max={}, \
             exprs: total={} max={}, vars={})",
            self.n_true,
            self.n_false,
            self.n_open,
            self.total_clauses,
            self.mean_clauses(),
            self.max_clauses,
            self.total_exprs,
            self.max_exprs,
            self.distinct_vars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_ctable, CTableConfig, DominatorStrategy};
    use bc_data::generators::sample::paper_dataset;

    #[test]
    fn sample_ctable_stats() {
        let ct = build_ctable(
            &paper_dataset(),
            &CTableConfig {
                alpha: 1.0,
                strategy: DominatorStrategy::FastIndex,
            },
        );
        let s = CTableStats::of(&ct);
        assert_eq!(s.n_true, 2);
        assert_eq!(s.n_false, 0);
        assert_eq!(s.n_open, 3);
        // Table 3: φ(o1) 1 clause/3 exprs, φ(o4) 2/4, φ(o5) 2/6.
        assert_eq!(s.total_clauses, 5);
        assert_eq!(s.total_exprs, 13);
        assert_eq!(s.max_clauses, 2);
        assert_eq!(s.max_exprs, 6);
        // Vars: o2.a2, o5.a2, o5.a3, o5.a4.
        assert_eq!(s.distinct_vars, 4);
        assert!((s.mean_clauses() - 5.0 / 3.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("open=3"));
    }

    #[test]
    fn empty_table() {
        let s = CTableStats::of(&CTable::new(vec![]));
        assert_eq!(s, CTableStats::default());
        assert_eq!(s.mean_clauses(), 0.0);
    }
}
