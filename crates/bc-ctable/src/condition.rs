//! Propositional conditions in conjunctive normal form.
//!
//! The condition `φ(o)` of an object is a conjunction of clauses, one per
//! potential dominator `p ∈ D(o)`, each clause being the disjunction
//! `o[1] > p[1] ∨ … ∨ o[d] > p[d]` restricted to the expressions that
//! actually involve a missing value.

use crate::expr::{Expr, ExprOrBool};
use bc_data::{Value, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// A disjunction of expressions. Invariant: non-empty, deduplicated, sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clause {
    exprs: Vec<Expr>,
}

/// Outcome of normalizing a clause.
enum ClauseOrBool {
    Bool(bool),
    Clause(Clause),
}

impl Clause {
    /// Builds a clause, deduplicating and detecting tautologies
    /// (`e ∨ ¬e` is `true`, an empty disjunction is `false`).
    fn normalize(mut exprs: Vec<Expr>) -> ClauseOrBool {
        exprs.sort_unstable();
        exprs.dedup();
        if exprs.is_empty() {
            return ClauseOrBool::Bool(false);
        }
        for e in &exprs {
            if exprs.binary_search(&e.negated()).is_ok() {
                return ClauseOrBool::Bool(true);
            }
        }
        ClauseOrBool::Clause(Clause { exprs })
    }

    /// The expressions of the clause (sorted).
    #[inline]
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Number of expressions.
    #[inline]
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Clauses are never empty, but the standard pair is provided.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Evaluates the clause under a complete assignment.
    pub fn eval(&self, lookup: impl Fn(VarId) -> Value + Copy) -> bool {
        self.exprs.iter().any(|e| e.eval(lookup))
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.exprs.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// A condition in CNF: `true`, `false`, or a conjunction of clauses.
///
/// Invariants of the `Cnf` variant: at least one clause, every clause
/// non-empty, no duplicate clauses.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// The object is certainly an answer.
    True,
    /// The object is certainly not an answer.
    False,
    /// Undecided: the conjunction of the clauses must hold.
    Cnf(Vec<Clause>),
}

impl Condition {
    /// Builds a condition from raw clauses (each a disjunction of
    /// expressions), normalizing:
    ///
    /// * an empty clause makes the whole condition `false`,
    /// * tautological clauses are dropped,
    /// * duplicate clauses are merged,
    /// * subsumed clauses are dropped (if clause `A ⊆ B`, then `A ⟹ B`
    ///   and the weaker `B` is redundant in the conjunction),
    /// * no clauses left means `true`.
    pub fn from_clauses(raw: impl IntoIterator<Item = Vec<Expr>>) -> Condition {
        let mut clauses = Vec::new();
        for exprs in raw {
            match Clause::normalize(exprs) {
                ClauseOrBool::Bool(false) => return Condition::False,
                ClauseOrBool::Bool(true) => {}
                ClauseOrBool::Clause(c) => clauses.push(c),
            }
        }
        clauses.sort_unstable();
        clauses.dedup();
        drop_subsumed(&mut clauses);
        if clauses.is_empty() {
            Condition::True
        } else {
            Condition::Cnf(clauses)
        }
    }

    /// The clauses, if undecided.
    pub fn clauses(&self) -> &[Clause] {
        match self {
            Condition::Cnf(c) => c,
            _ => &[],
        }
    }

    /// Whether the condition is `true` or `false`.
    #[inline]
    pub fn is_decided(&self) -> bool {
        !matches!(self, Condition::Cnf(_))
    }

    /// Total number of expressions across clauses.
    pub fn n_exprs(&self) -> usize {
        self.clauses().iter().map(Clause::len).sum()
    }

    /// The distinct variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.clauses()
            .iter()
            .flat_map(|c| c.exprs().iter().flat_map(Expr::vars))
            .collect()
    }

    /// Iterates every expression (with clause repetition preserved).
    pub fn exprs(&self) -> impl Iterator<Item = &Expr> {
        self.clauses().iter().flat_map(|c| c.exprs().iter())
    }

    /// The variable occurring in the most expressions (the ADPLL branching
    /// heuristic); ties break toward the smallest variable for determinism.
    pub fn most_frequent_var(&self) -> Option<VarId> {
        let mut counts: std::collections::BTreeMap<VarId, usize> = Default::default();
        for e in self.exprs() {
            for v in e.vars() {
                *counts.entry(v).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| v)
    }

    /// Substitutes `v = value` everywhere and re-normalizes.
    pub fn substitute(&self, v: VarId, value: Value) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Cnf(clauses) => {
                let mut raw = Vec::with_capacity(clauses.len());
                for clause in clauses {
                    let mut exprs = Vec::with_capacity(clause.len());
                    let mut clause_true = false;
                    for e in clause.exprs() {
                        match e.substitute(v, value) {
                            ExprOrBool::Bool(true) => {
                                clause_true = true;
                                break;
                            }
                            ExprOrBool::Bool(false) => {}
                            ExprOrBool::Expr(e2) => exprs.push(e2),
                        }
                    }
                    if !clause_true {
                        raw.push(exprs);
                    }
                }
                Condition::from_clauses(raw)
            }
        }
    }

    /// Simplifies by deciding expressions: `decide(e)` may settle an
    /// expression's truth (e.g. from crowd answers or candidate-value
    /// masks); undecided expressions are kept as-is.
    pub fn simplify(&self, decide: impl Fn(&Expr) -> Option<bool>) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Cnf(clauses) => {
                let mut raw = Vec::with_capacity(clauses.len());
                for clause in clauses {
                    let mut exprs = Vec::with_capacity(clause.len());
                    let mut clause_true = false;
                    for e in clause.exprs() {
                        match decide(e) {
                            Some(true) => {
                                clause_true = true;
                                break;
                            }
                            Some(false) => {}
                            None => exprs.push(*e),
                        }
                    }
                    if !clause_true {
                        raw.push(exprs);
                    }
                }
                Condition::from_clauses(raw)
            }
        }
    }

    /// Conjoins a unit clause `{e}` — used to compute `Pr(φ ∧ e)` for the
    /// marginal-utility function.
    pub fn and_expr(&self, e: Expr) -> Condition {
        match self {
            Condition::True => Condition::Cnf(vec![Clause { exprs: vec![e] }]),
            Condition::False => Condition::False,
            Condition::Cnf(clauses) => {
                let mut raw: Vec<Vec<Expr>> = clauses.iter().map(|c| c.exprs().to_vec()).collect();
                raw.push(vec![e]);
                Condition::from_clauses(raw)
            }
        }
    }

    /// Evaluates under a complete assignment.
    pub fn eval(&self, lookup: impl Fn(VarId) -> Value + Copy) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Cnf(clauses) => clauses.iter().all(|c| c.eval(lookup)),
        }
    }
}

/// Removes every clause that is a superset of another clause (the subset
/// implies the superset, making it redundant in a conjunction). Clauses are
/// sorted, so subset tests use sorted-merge containment.
fn drop_subsumed(clauses: &mut Vec<Clause>) {
    if clauses.len() < 2 {
        return;
    }
    let snapshot = clauses.clone();
    clauses.retain(|big| {
        !snapshot
            .iter()
            .any(|small| small.len() < big.len() && is_subset(small.exprs(), big.exprs()))
    });
}

/// Whether sorted `a` is a subset of sorted `b`.
fn is_subset(a: &[Expr], b: &[Expr]) -> bool {
    let mut bi = 0;
    'outer: for x in a {
        while bi < b.len() {
            match b[bi].cmp(x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl fmt::Debug for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::Cnf(clauses) => {
                for (i, c) in clauses.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn normalization_rules() {
        // Empty clause → false.
        assert_eq!(Condition::from_clauses(vec![vec![]]), Condition::False);
        // No clauses → true.
        assert_eq!(
            Condition::from_clauses(Vec::<Vec<Expr>>::new()),
            Condition::True
        );
        // Tautological clause dropped.
        let e = Expr::lt(v(0, 0), 3);
        let cond = Condition::from_clauses(vec![vec![e, e.negated()]]);
        assert_eq!(cond, Condition::True);
        // Duplicate clauses merged; duplicate exprs deduped.
        let cond = Condition::from_clauses(vec![vec![e, e], vec![e]]);
        assert_eq!(cond.clauses().len(), 1);
        assert_eq!(cond.n_exprs(), 1);
    }

    #[test]
    fn subsumed_clauses_are_dropped() {
        let x = VarId::new(0, 0);
        let y = VarId::new(1, 0);
        let z = VarId::new(2, 0);
        // (x < 2) subsumes (x < 2 ∨ y < 3): keep only the stronger clause.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 3)],
            vec![Expr::lt(x, 2)],
            vec![Expr::gt(z, 5)],
        ]);
        assert_eq!(
            cond,
            Condition::from_clauses(vec![vec![Expr::lt(x, 2)], vec![Expr::gt(z, 5)]])
        );
        // Equal-length clauses never subsume each other.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 3)],
            vec![Expr::lt(x, 2), Expr::gt(z, 5)],
        ]);
        assert_eq!(cond.clauses().len(), 2);
    }

    #[test]
    fn substitution_collapses() {
        // (x < 2 ∨ y < 3) ∧ (x > 4): x = 5 → first clause becomes y < 3,
        // second becomes true.
        let x = v(0, 0);
        let y = v(1, 0);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 3)],
            vec![Expr::gt(x, 4)],
        ]);
        let s = cond.substitute(x, 5);
        assert_eq!(s, Condition::from_clauses(vec![vec![Expr::lt(y, 3)]]));
        // x = 1 → first clause true, second false → condition false.
        assert_eq!(cond.substitute(x, 1), Condition::False);
    }

    #[test]
    fn most_frequent_var_prefers_high_count_then_small_id() {
        let x = v(0, 0);
        let y = v(1, 0);
        let z = v(2, 0);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 2)],
            vec![Expr::gt(y, 4), Expr::lt(z, 1)],
        ]);
        assert_eq!(cond.most_frequent_var(), Some(y));
        // All tied → smallest id.
        let cond = Condition::from_clauses(vec![vec![Expr::lt(x, 2), Expr::lt(z, 2)]]);
        assert_eq!(cond.most_frequent_var(), Some(x));
        assert_eq!(Condition::True.most_frequent_var(), None);
    }

    #[test]
    fn simplify_with_decider() {
        let x = v(0, 0);
        let y = v(1, 0);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 3)],
            vec![Expr::gt(x, 0)],
        ]);
        // Decide "x < 2" false and "x > 0" true.
        let s = cond.simplify(|e| {
            if *e == Expr::lt(x, 2) {
                Some(false)
            } else if *e == Expr::gt(x, 0) {
                Some(true)
            } else {
                None
            }
        });
        assert_eq!(s, Condition::from_clauses(vec![vec![Expr::lt(y, 3)]]));
    }

    #[test]
    fn and_expr_conjoins_a_unit_clause() {
        let x = v(0, 0);
        let e = Expr::lt(x, 2);
        assert_eq!(
            Condition::True.and_expr(e),
            Condition::from_clauses(vec![vec![e]])
        );
        assert_eq!(Condition::False.and_expr(e), Condition::False);
        let cond = Condition::from_clauses(vec![vec![Expr::gt(x, 0)]]);
        assert_eq!(cond.and_expr(e).clauses().len(), 2);
        // Conjoining a contradiction yields false after substitution.
        let c2 = cond.and_expr(e).substitute(x, 3);
        assert_eq!(c2, Condition::False);
    }

    #[test]
    fn eval_full_assignment() {
        let x = v(0, 0);
        let y = v(1, 0);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 2), Expr::lt(y, 3)],
            vec![Expr::gt(x, 0)],
        ]);
        let assign = |vals: (Value, Value)| move |q: VarId| if q == x { vals.0 } else { vals.1 };
        assert!(cond.eval(assign((1, 9))));
        assert!(!cond.eval(assign((0, 9)))); // second clause fails
        assert!(cond.eval(assign((5, 2)))); // first via y, second via x
        assert!(!cond.eval(assign((5, 9))));
    }

    #[test]
    fn vars_collects_both_sides() {
        let cond = Condition::from_clauses(vec![vec![Expr::var_gt(v(5, 2), v(2, 2))]]);
        let vars: Vec<VarId> = cond.vars().into_iter().collect();
        assert_eq!(vars, vec![v(2, 2), v(5, 2)]);
    }
}
