#![warn(missing_docs)]
//! The c-table substrate of BayesCrowd.
//!
//! Implements the conditional-table representation of Imieliński & Lipski
//! as the paper uses it: every object `o` of an incomplete dataset gets a
//! propositional condition `φ(o)` (in CNF over inequality [`Expr`]essions)
//! that holds exactly when `o` is a skyline answer.
//!
//! * [`expr`] / [`condition`] — the formula language and its simplification
//!   algebra,
//! * [`dominators`] — Definition 5's dominator sets, via the paper's fast
//!   sorted-bitset index or the pairwise baseline (Figure 2's comparison),
//! * [`builder`] — Algorithm 2 (`Get-CTable`) with the `α` pruning
//!   threshold,
//! * [`ctable`] — the table plus answer propagation, and
//! * [`constraint`] — the store of crowd-answer knowledge (candidate-value
//!   masks and variable-pair facts) that drives cross-condition inference.

pub mod bitset;
pub mod builder;
pub mod condition;
pub mod constraint;
pub mod ctable;
pub mod dominators;
pub mod expr;
pub mod stats;

pub use builder::{
    build_ctable, build_ctable_with_stats, CTableBuildStats, CTableConfig, DominatorStrategy,
};
pub use condition::{Clause, Condition};
pub use constraint::{ConstraintStore, Relation};
pub use ctable::{CTable, PropagateStats};
pub use expr::{CmpOp, Expr, ExprOrBool, Operand};
pub use stats::CTableStats;
