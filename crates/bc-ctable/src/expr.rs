//! Expressions: inequalities between a missing-value variable and a constant
//! or another variable. One expression is one crowd task (the paper's
//! "disjunct"/"expression").

use bc_data::{Value, VarId};
use std::fmt;

/// Comparison operator. Conditions built from dominator sets only use strict
/// comparisons, but the set is closed under negation (needed to evaluate the
/// marginal-utility function) and under crowd answers (`Eq`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates `l op r`.
    #[inline]
    pub fn eval(self, l: Value, r: Value) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    /// The logical negation: `¬(l op r) = l negate(op) r`.
    #[inline]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// The converse: `l op r  ⇔  r converse(op) l`.
    #[inline]
    pub fn converse(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Right-hand side of an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// A known constant value.
    Const(Value),
    /// Another missing-value variable.
    Var(VarId),
}

/// An atomic expression `var op rhs`. The left operand is always a variable.
///
/// Canonical form (enforced by [`Expr::new`]): for var-var expressions the
/// smaller [`VarId`] is on the left; for var-const expressions `Le c` is
/// rewritten as `Lt c+1` and `Gt c` as `Ge c+1`, so that semantically equal
/// expressions compare equal (the paper's expression-frequency counting
/// relies on this).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Expr {
    var: VarId,
    op: CmpOp,
    rhs: Operand,
}

/// Result of substituting a value into an expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprOrBool {
    /// The expression collapsed to a constant.
    Bool(bool),
    /// The expression simplified to another (var-const) expression.
    Expr(Expr),
}

impl Expr {
    /// Builds an expression in canonical form.
    pub fn new(var: VarId, op: CmpOp, rhs: Operand) -> Expr {
        match rhs {
            Operand::Var(r) if r < var => Expr {
                var: r,
                op: op.converse(),
                rhs: Operand::Var(var),
            },
            Operand::Var(r) => {
                debug_assert!(
                    r != var,
                    "an expression cannot compare a variable to itself"
                );
                Expr { var, op, rhs }
            }
            Operand::Const(c) => {
                let (op, c) = match op {
                    CmpOp::Le => (CmpOp::Lt, c + 1),
                    CmpOp::Gt => (CmpOp::Ge, c + 1),
                    other => (other, c),
                };
                Expr {
                    var,
                    op,
                    rhs: Operand::Const(c),
                }
            }
        }
    }

    /// Shorthand: `var < c`.
    pub fn lt(var: VarId, c: Value) -> Expr {
        Expr::new(var, CmpOp::Lt, Operand::Const(c))
    }

    /// Shorthand: `var > c`.
    pub fn gt(var: VarId, c: Value) -> Expr {
        Expr::new(var, CmpOp::Gt, Operand::Const(c))
    }

    /// Shorthand: `l > r` over two variables.
    pub fn var_gt(l: VarId, r: VarId) -> Expr {
        Expr::new(l, CmpOp::Gt, Operand::Var(r))
    }

    /// Left-hand variable.
    #[inline]
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Operator.
    #[inline]
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// Right-hand operand.
    #[inline]
    pub fn rhs(&self) -> Operand {
        self.rhs
    }

    /// The right-hand variable, if any.
    #[inline]
    pub fn rhs_var(&self) -> Option<VarId> {
        match self.rhs {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// The variables mentioned (one or two).
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        std::iter::once(self.var).chain(self.rhs_var())
    }

    /// Whether the expression mentions `v`.
    #[inline]
    pub fn mentions(&self, v: VarId) -> bool {
        self.var == v || self.rhs_var() == Some(v)
    }

    /// Logical negation (stays canonical).
    pub fn negated(&self) -> Expr {
        Expr::new(self.var, self.op.negated(), self.rhs)
    }

    /// Substitutes `v = value`, simplifying.
    pub fn substitute(&self, v: VarId, value: Value) -> ExprOrBool {
        if self.var == v {
            match self.rhs {
                Operand::Const(c) => ExprOrBool::Bool(self.op.eval(value, c)),
                Operand::Var(r) => {
                    ExprOrBool::Expr(Expr::new(r, self.op.converse(), Operand::Const(value)))
                }
            }
        } else if self.rhs == Operand::Var(v) {
            ExprOrBool::Expr(Expr::new(self.var, self.op, Operand::Const(value)))
        } else {
            ExprOrBool::Expr(*self)
        }
    }

    /// Evaluates under a complete assignment (used by the naive solver and
    /// the crowd oracle).
    pub fn eval(&self, lookup: impl Fn(VarId) -> Value) -> bool {
        let l = lookup(self.var);
        let r = match self.rhs {
            Operand::Const(c) => c,
            Operand::Var(v) => lookup(v),
        };
        self.op.eval(l, r)
    }

    /// Decides the expression when every variable's candidate values are
    /// restricted: `mask_of(v)` gives the bitmask of values still possible
    /// for `v`. Returns `Some(truth)` if the expression has the same truth
    /// value for all candidate combinations (interval reasoning; `None`
    /// means undecided).
    pub fn decide(&self, mask_of: impl Fn(VarId) -> u64) -> Option<bool> {
        let lm = mask_of(self.var);
        let (lmin, lmax) = mask_range(lm)?;
        let (rmin, rmax) = match self.rhs {
            Operand::Const(c) => (c, c),
            Operand::Var(v) => mask_range(mask_of(v))?,
        };
        match self.op {
            CmpOp::Lt => decide_ranges(lmax < rmin, lmin >= rmax),
            CmpOp::Le => decide_ranges(lmax <= rmin, lmin > rmax),
            CmpOp::Gt => decide_ranges(lmin > rmax, lmax <= rmin),
            CmpOp::Ge => decide_ranges(lmin >= rmax, lmax < rmin),
            CmpOp::Eq => decide_ranges(
                lmin == lmax && rmin == rmax && lmin == rmin,
                lmax < rmin || rmax < lmin,
            ),
            CmpOp::Ne => decide_ranges(
                lmax < rmin || rmax < lmin,
                lmin == lmax && rmin == rmax && lmin == rmin,
            ),
        }
    }
}

/// `(min, max)` set bits of a candidate mask; `None` for the empty mask.
pub(crate) fn mask_range(mask: u64) -> Option<(Value, Value)> {
    if mask == 0 {
        None
    } else {
        Some((
            mask.trailing_zeros() as Value,
            (63 - mask.leading_zeros()) as Value,
        ))
    }
}

fn decide_ranges(always: bool, never: bool) -> Option<bool> {
    if always {
        Some(true)
    } else if never {
        Some(false)
    } else {
        None
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.var, self.op.symbol())?;
        match self.rhs {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn canonicalization_unifies_semantic_duplicates() {
        // Var <= 2 and Var < 3 are the same expression.
        let a = Expr::new(v(1, 1), CmpOp::Le, Operand::Const(2));
        let b = Expr::lt(v(1, 1), 3);
        assert_eq!(a, b);
        // Var > 2 and Var >= 3.
        let c = Expr::gt(v(1, 1), 2);
        let d = Expr::new(v(1, 1), CmpOp::Ge, Operand::Const(3));
        assert_eq!(c, d);
    }

    #[test]
    fn var_var_is_ordered_by_varid() {
        // Var(o5,a2) > Var(o2,a2) canonicalizes to Var(o2,a2) < Var(o5,a2).
        let e = Expr::var_gt(v(5, 2), v(2, 2));
        assert_eq!(e.var(), v(2, 2));
        assert_eq!(e.op(), CmpOp::Lt);
        assert_eq!(e.rhs(), Operand::Var(v(5, 2)));
        assert_eq!(e, Expr::new(v(2, 2), CmpOp::Lt, Operand::Var(v(5, 2))));
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        let exprs = [
            Expr::lt(v(0, 0), 3),
            Expr::gt(v(0, 0), 3),
            Expr::new(v(0, 0), CmpOp::Eq, Operand::Const(3)),
            Expr::var_gt(v(0, 0), v(1, 0)),
        ];
        for e in exprs {
            assert_eq!(e.negated().negated(), e);
            for l in 0..6 {
                for r in 0..6 {
                    let lookup = |x: VarId| if x == v(0, 0) { l } else { r };
                    assert_ne!(e.eval(lookup), e.negated().eval(lookup));
                }
            }
        }
    }

    #[test]
    fn substitution() {
        let e = Expr::lt(v(5, 2), 2);
        assert_eq!(e.substitute(v(5, 2), 1), ExprOrBool::Bool(true));
        assert_eq!(e.substitute(v(5, 2), 2), ExprOrBool::Bool(false));
        assert_eq!(e.substitute(v(9, 9), 1), ExprOrBool::Expr(e));

        // (Var(o2,a2) < Var(o5,a2)) with Var(o5,a2) = 4 → Var(o2,a2) < 4.
        let vv = Expr::var_gt(v(5, 2), v(2, 2));
        assert_eq!(
            vv.substitute(v(5, 2), 4),
            ExprOrBool::Expr(Expr::lt(v(2, 2), 4))
        );
        // ...and with Var(o2,a2) = 4 → Var(o5,a2) > 4.
        assert_eq!(
            vv.substitute(v(2, 2), 4),
            ExprOrBool::Expr(Expr::gt(v(5, 2), 4))
        );
    }

    #[test]
    fn decide_with_masks() {
        let e = Expr::lt(v(0, 0), 3); // var < 3
        let full = |_: VarId| 0b1111_1111u64;
        assert_eq!(e.decide(full), None);
        let low = |_: VarId| 0b0000_0111u64; // values {0,1,2}
        assert_eq!(e.decide(low), Some(true));
        let high = |_: VarId| 0b1111_1000u64; // values {3..7}
        assert_eq!(e.decide(high), Some(false));
        let empty = |_: VarId| 0u64;
        assert_eq!(e.decide(empty), None);

        // Var-var decision via disjoint ranges.
        let vv = Expr::var_gt(v(1, 0), v(0, 0));
        let masks = |x: VarId| {
            if x == v(1, 0) {
                0b1100_0000u64
            } else {
                0b0000_0011u64
            }
        };
        assert_eq!(vv.decide(masks), Some(true));
    }

    #[test]
    fn display_matches_paper_style() {
        let e = Expr::lt(v(5, 2), 2);
        assert_eq!(e.to_string(), "Var(o5, a2) < 2");
        let vv = Expr::var_gt(v(5, 2), v(2, 2));
        assert_eq!(vv.to_string(), "Var(o2, a2) < Var(o5, a2)");
    }

    #[test]
    fn mask_range_bounds() {
        assert_eq!(mask_range(0), None);
        assert_eq!(mask_range(0b1), Some((0, 0)));
        assert_eq!(mask_range(0b10110), Some((1, 4)));
        assert_eq!(mask_range(u64::MAX), Some((0, 63)));
    }
}
