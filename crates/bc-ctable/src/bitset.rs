//! A fixed-capacity bitset used for the fast dominator-set derivation.

/// A fixed-size set of object indices backed by `u64` blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set over a universe of `len` elements.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet {
            blocks: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.trim();
        s
    }

    fn trim(&mut self) {
        let spare = self.blocks.len() * 64 - self.len;
        if spare > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> spare;
            }
        }
    }

    /// Universe size.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Inserts `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len);
        self.blocks[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len);
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self &= (a | b)` without materializing the union.
    pub fn intersect_with_union(&mut self, a: &BitSet, b: &BitSet) {
        debug_assert_eq!(self.len, a.len);
        debug_assert_eq!(self.len, b.len);
        for ((x, y), z) in self.blocks.iter_mut().zip(&a.blocks).zip(&b.blocks) {
            *x &= y | z;
        }
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates set bits ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let tz = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::empty(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn full_is_trimmed() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::empty(10);
        a.insert(1);
        a.insert(2);
        a.insert(3);
        let mut b = BitSet::empty(10);
        b.insert(2);
        b.insert(4);
        let mut c = BitSet::empty(10);
        c.insert(3);

        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![2]);

        let mut y = a.clone();
        y.intersect_with_union(&b, &c);
        assert_eq!(y.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut z = a;
        z.union_with(&b);
        assert_eq!(z.count(), 4);
    }

    #[test]
    fn empty_edge_cases() {
        let s = BitSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = BitSet::full(64);
        assert_eq!(f.count(), 64);
    }
}
