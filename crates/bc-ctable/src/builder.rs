//! C-table construction (Algorithm 2, `Get-CTable`).

use crate::condition::Condition;
use crate::ctable::CTable;
use crate::dominators::{baseline_dominator_set, certainly_dominates, DominatorIndex};
use crate::expr::{CmpOp, Expr, Operand};
use bc_data::{Dataset, ObjectId, VarId};

/// How dominator sets are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominatorStrategy {
    /// The paper's fast path: per-dimension sorting plus bitwise set
    /// operations (the `Get-CTable` algorithm of Figure 2).
    FastIndex,
    /// Pairwise comparisons (the `Baseline` of Figure 2).
    Baseline,
}

/// Configuration of c-table construction.
#[derive(Clone, Copy, Debug)]
pub struct CTableConfig {
    /// The pruning threshold `α`: objects with `|D(o)| > α · |O|` are deemed
    /// non-answers outright (their condition is set to `false`). The paper
    /// uses 0.003 on NBA and 0.01 on Synthetic.
    pub alpha: f64,
    /// Dominator-set derivation strategy.
    pub strategy: DominatorStrategy,
}

impl Default for CTableConfig {
    fn default() -> Self {
        CTableConfig {
            alpha: 0.01,
            strategy: DominatorStrategy::FastIndex,
        }
    }
}

/// Builds the condition clause `p ⊀ o` — the disjunction of the per-attribute
/// escapes `o[i] > p[i]` — keeping only expressions that involve a missing
/// value (observed-observed comparisons are constants by construction).
///
/// Returns `None` when the clause is certainly true (the pair is a fully
/// observed tie, which never dominates) and `Some(exprs)` otherwise; an
/// empty vector means `p` dominates `o` in every completion.
fn escape_clause(data: &Dataset, o: ObjectId, p: ObjectId) -> Option<Vec<Expr>> {
    let o_row = data.row(o);
    let p_row = data.row(p);
    let mut exprs = Vec::new();
    let mut saw_missing = false;
    for (a, (oc, pc)) in o_row.iter().zip(p_row).enumerate() {
        let attr = a as u16;
        let max = data.domain(bc_data::AttrId(attr)).max_value();
        match (oc, pc) {
            // Both observed: p ∈ D(o) implies o[i] <= p[i], so the escape
            // o[i] > p[i] is constant false — contribute nothing.
            (Some(_), Some(_)) => {}
            // o observed, p missing: escape is Var(p, a) < o[i];
            // impossible when o[i] is the domain minimum.
            (Some(ov), None) => {
                saw_missing = true;
                if *ov > 0 {
                    exprs.push(Expr::lt(
                        VarId {
                            object: p,
                            attr: bc_data::AttrId(attr),
                        },
                        *ov,
                    ));
                }
            }
            // o missing, p observed: escape is Var(o, a) > p[i];
            // impossible when p[i] is the domain maximum.
            (None, Some(pv)) => {
                saw_missing = true;
                if *pv < max {
                    exprs.push(Expr::gt(
                        VarId {
                            object: o,
                            attr: bc_data::AttrId(attr),
                        },
                        *pv,
                    ));
                }
            }
            // Both missing: escape is Var(o, a) > Var(p, a).
            (None, None) => {
                saw_missing = true;
                exprs.push(Expr::new(
                    VarId {
                        object: o,
                        attr: bc_data::AttrId(attr),
                    },
                    CmpOp::Gt,
                    Operand::Var(VarId {
                        object: p,
                        attr: bc_data::AttrId(attr),
                    }),
                ));
            }
        }
    }
    if !saw_missing {
        // Fully observed pair inside D(o): either p strictly dominates o
        // (handled by the caller's certain-dominance check) or the rows tie,
        // and a tie never dominates — drop the clause.
        let tie = o_row == p_row;
        if tie {
            return None;
        }
    }
    Some(exprs)
}

/// What [`build_ctable_with_stats`] produced, for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CTableBuildStats {
    /// Objects in the table.
    pub objects: usize,
    /// Objects that came out certainly-true (empty dominator set).
    pub certain: usize,
    /// Objects discarded by α-pruning (`|D(o)| > α · |O|`).
    pub pruned: usize,
    /// Objects falsified by certain dominance or an impossible escape.
    pub falsified: usize,
    /// Objects left with an open condition.
    pub open: usize,
    /// Distinct variables appearing in open conditions.
    pub vars: usize,
    /// Expressions across open conditions.
    pub exprs: usize,
    /// Sum of dominator-set sizes over all objects (`Σ |D(o)|`) — the
    /// bucket sizes Algorithm 2 iterates, and the direct driver of c-table
    /// construction cost.
    pub candidates: u64,
    /// Largest single dominator set encountered.
    pub max_dominators: usize,
    /// Bitset words combined while deriving dominator sets (zero for the
    /// pairwise baseline, which never touches the index).
    pub bitset_words: u64,
}

/// Algorithm 2: builds the c-table of the skyline query over `data`.
///
/// ```
/// use bc_ctable::{build_ctable, CTableConfig, Condition, DominatorStrategy};
/// use bc_data::generators::sample::paper_dataset;
/// use bc_data::ObjectId;
///
/// let ctable = build_ctable(
///     &paper_dataset(),
///     &CTableConfig { alpha: 1.0, strategy: DominatorStrategy::FastIndex },
/// );
/// // The paper's Table 3: o2 and o3 are certain skyline answers.
/// assert_eq!(*ctable.condition(ObjectId(1)), Condition::True);
/// assert_eq!(*ctable.condition(ObjectId(2)), Condition::True);
/// // φ(o1) = Var(o5,a2) < 2 ∨ Var(o5,a3) < 3 ∨ Var(o5,a4) < 4.
/// assert_eq!(ctable.condition(ObjectId(0)).n_exprs(), 3);
/// ```
pub fn build_ctable(data: &Dataset, config: &CTableConfig) -> CTable {
    build_ctable_with_stats(data, config).0
}

/// [`build_ctable`] plus construction counters (how many objects each
/// branch of Algorithm 2 settled, and the size of what remains open).
pub fn build_ctable_with_stats(
    data: &Dataset,
    config: &CTableConfig,
) -> (CTable, CTableBuildStats) {
    let n = data.n_objects();
    let threshold = config.alpha * n as f64;
    let index = match config.strategy {
        DominatorStrategy::FastIndex => Some(DominatorIndex::build(data)),
        DominatorStrategy::Baseline => None,
    };

    let mut stats = CTableBuildStats {
        objects: n,
        ..Default::default()
    };
    let words_per_set = n.div_ceil(64) as u64;
    let mut conditions = Vec::with_capacity(n);
    for o in data.objects() {
        let dom = match &index {
            Some(idx) => {
                // One full-universe init plus one AND-with-OR sweep per
                // observed attribute, each over `⌈n/64⌉` words.
                let observed = data.row(o).iter().filter(|c| c.is_some()).count() as u64;
                stats.bitset_words += words_per_set * (observed + 1);
                idx.dominator_set(data, o)
            }
            None => baseline_dominator_set(data, o),
        };
        let dom_size = dom.count();
        stats.candidates += dom_size as u64;
        stats.max_dominators = stats.max_dominators.max(dom_size);

        let condition = if dom_size == 0 {
            // o is certainly a skyline object.
            stats.certain += 1;
            Condition::True
        } else if dom_size as f64 > threshold {
            // α-pruning: deemed not to be a skyline object.
            stats.pruned += 1;
            Condition::False
        } else if dom
            .iter()
            .any(|p| certainly_dominates(data, ObjectId(p as u32), o))
        {
            stats.falsified += 1;
            Condition::False
        } else {
            let mut clauses = Vec::with_capacity(dom_size);
            let mut falsified = false;
            for p in dom.iter() {
                match escape_clause(data, o, ObjectId(p as u32)) {
                    None => {} // certain tie: clause is true, drop it
                    Some(exprs) if exprs.is_empty() => {
                        falsified = true;
                        break;
                    }
                    Some(exprs) => clauses.push(exprs),
                }
            }
            if falsified {
                stats.falsified += 1;
                Condition::False
            } else {
                let cond = Condition::from_clauses(clauses);
                match &cond {
                    Condition::True => stats.certain += 1,
                    Condition::False => stats.falsified += 1,
                    Condition::Cnf(_) => stats.open += 1,
                }
                cond
            }
        };
        conditions.push(condition);
    }

    let mut vars = std::collections::BTreeSet::new();
    for cond in &conditions {
        if !cond.is_decided() {
            stats.exprs += cond.n_exprs();
            vars.extend(cond.vars());
        }
    }
    stats.vars = vars.len();
    (CTable::new(conditions), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::paper_dataset;
    use bc_data::missing::inject_mcar;
    use bc_data::VarId;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    fn paper_config() -> CTableConfig {
        // α = 1 disables pruning on the 5-object sample.
        CTableConfig {
            alpha: 1.0,
            strategy: DominatorStrategy::FastIndex,
        }
    }

    /// Table 3 of the paper: the c-table over the sample dataset.
    #[test]
    fn paper_table_3() {
        let data = paper_dataset();
        let ct = build_ctable(&data, &paper_config());

        // φ(o2) and φ(o3) are true.
        assert_eq!(*ct.condition(ObjectId(1)), Condition::True);
        assert_eq!(*ct.condition(ObjectId(2)), Condition::True);

        // φ(o1) = Var(o5,a2) < 2 ∨ Var(o5,a3) < 3 ∨ Var(o5,a4) < 4.
        let expected_o1 = Condition::from_clauses(vec![vec![
            Expr::lt(v(4, 1), 2),
            Expr::lt(v(4, 2), 3),
            Expr::lt(v(4, 3), 4),
        ]]);
        assert_eq!(*ct.condition(ObjectId(0)), expected_o1);

        // φ(o4) = (Var(o2,a2) < 3) ∧ (Var(o5,a2) < 3 ∨ Var(o5,a3) < 1
        //          ∨ Var(o5,a4) < 2).
        let expected_o4 = Condition::from_clauses(vec![
            vec![Expr::lt(v(1, 1), 3)],
            vec![
                Expr::lt(v(4, 1), 3),
                Expr::lt(v(4, 2), 1),
                Expr::lt(v(4, 3), 2),
            ],
        ]);
        assert_eq!(*ct.condition(ObjectId(3)), expected_o4);

        // φ(o5) = (Var(o5,a2) > 2 ∨ Var(o5,a3) > 3 ∨ Var(o5,a4) > 4)
        //        ∧ (Var(o5,a2) > Var(o2,a2) ∨ Var(o5,a3) > 2 ∨ Var(o5,a4) > 2).
        let expected_o5 = Condition::from_clauses(vec![
            vec![
                Expr::gt(v(4, 1), 2),
                Expr::gt(v(4, 2), 3),
                Expr::gt(v(4, 3), 4),
            ],
            vec![
                Expr::var_gt(v(4, 1), v(1, 1)),
                Expr::gt(v(4, 2), 2),
                Expr::gt(v(4, 3), 2),
            ],
        ]);
        assert_eq!(*ct.condition(ObjectId(4)), expected_o5);
    }

    #[test]
    fn build_stats_partition_the_objects() {
        let data = paper_dataset();
        let (ct, stats) = build_ctable_with_stats(&data, &paper_config());
        assert_eq!(stats.objects, 5);
        assert_eq!(stats.certain, 2);
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.falsified, 0);
        assert_eq!(stats.open, 3);
        assert_eq!(
            stats.certain + stats.pruned + stats.falsified + stats.open,
            stats.objects
        );
        assert_eq!(stats.exprs, ct.n_open_exprs());
        // Open conditions mention Var(o2,a2) and the o5 row's three vars.
        assert_eq!(stats.vars, 4);
        // With aggressive pruning the open mass moves to `pruned`.
        let (_, pruned) = build_ctable_with_stats(
            &data,
            &CTableConfig {
                alpha: 1e-9,
                strategy: DominatorStrategy::FastIndex,
            },
        );
        assert_eq!(pruned.pruned, 3);
        assert_eq!(pruned.open, 0);
        assert_eq!(pruned.exprs, 0);
    }

    #[test]
    fn alpha_prunes_heavily_dominated_objects() {
        let data = paper_dataset();
        // With α tiny, every object with a non-empty dominator set is pruned.
        let ct = build_ctable(
            &data,
            &CTableConfig {
                alpha: 1e-9,
                strategy: DominatorStrategy::FastIndex,
            },
        );
        assert_eq!(*ct.condition(ObjectId(0)), Condition::False);
        assert_eq!(*ct.condition(ObjectId(1)), Condition::True);
        assert_eq!(*ct.condition(ObjectId(3)), Condition::False);
    }

    #[test]
    fn certain_dominance_falsifies_without_crowdsourcing() {
        let data = bc_data::Dataset::from_rows(
            "x",
            bc_data::domain::uniform_domains(2, 8).unwrap(),
            vec![
                vec![Some(5), Some(5)],
                vec![Some(3), Some(4)], // strictly dominated by o0
                vec![None, Some(6)],
            ],
        )
        .unwrap();
        let ct = build_ctable(&data, &paper_config());
        assert_eq!(*ct.condition(ObjectId(1)), Condition::False);
    }

    #[test]
    fn complete_data_reduces_to_plain_skyline() {
        let complete = bc_data::generators::classic::independent(120, 4, 8, 9);
        let ct = build_ctable(&complete, &paper_config());
        let truth = bc_data::skyline::skyline_bnl(&complete).unwrap();
        let answers: Vec<ObjectId> = complete
            .objects()
            .filter(|&o| *ct.condition(o) == Condition::True)
            .collect();
        assert_eq!(answers, truth);
        for o in complete.objects() {
            assert!(ct.condition(o).is_decided());
        }
    }

    #[test]
    fn strategies_agree() {
        let complete = bc_data::generators::classic::independent(150, 4, 8, 10);
        let (data, _) = inject_mcar(&complete, 0.1, 11);
        let fast = build_ctable(&data, &paper_config());
        let base = build_ctable(
            &data,
            &CTableConfig {
                alpha: 1.0,
                strategy: DominatorStrategy::Baseline,
            },
        );
        for o in data.objects() {
            assert_eq!(fast.condition(o), base.condition(o), "mismatch at {o}");
        }
    }

    #[test]
    fn domain_edge_escapes_are_constant_folded() {
        // o observed at the domain minimum: "Var(p,a) < 0" is impossible and
        // must not appear; if it is the only escape the clause falsifies φ.
        let data = bc_data::Dataset::from_rows(
            "x",
            bc_data::domain::uniform_domains(1, 8).unwrap(),
            vec![vec![Some(0)], vec![None]],
        )
        .unwrap();
        let ct = build_ctable(&data, &paper_config());
        // o0 has value 0; p=o1 missing: escape Var(o1,a1) < 0 impossible →
        // clause empty → φ(o0) = false (paper CNF semantics; the tie case
        // has probability mass but is ignored by the CNF encoding).
        assert_eq!(*ct.condition(ObjectId(0)), Condition::False);
        // o1 (missing) escapes o0 via Var(o1,a1) > 0.
        assert_eq!(
            *ct.condition(ObjectId(1)),
            Condition::from_clauses(vec![vec![Expr::gt(v(1, 0), 0)]])
        );
    }
}
