#![warn(missing_docs)]
//! **CrowdImpute** — the unary-question baseline (in the style of Lofi, El
//! Maarry & Balke, EDBT'13 — the paper's reference \[22\]).
//!
//! Instead of reasoning about *which* questions matter, this approach asks
//! the crowd directly for the missing values — one unary task per missing
//! cell — imputes the answers, and runs an ordinary machine skyline over
//! the completed table. The paper's critique, which the harness measures:
//!
//! * **cost scales with the number of missing cells**, not with the number
//!   of cells that actually influence the skyline, and
//! * **the returned results may be inaccurate**: value estimates carry
//!   noise, the imputed table silently flips dominance relationships, and
//!   there is no probabilistic machinery to hedge.
//!
//! Under a budget smaller than the number of missing cells, the remaining
//! cells are imputed by the machine with each attribute's observed mode.

use bc_crowd::unary::{answer_unary_batch, UnaryTask};
use bc_crowd::GroundTruthOracle;
use bc_data::skyline::skyline_sfs;
use bc_data::{Accuracy, Dataset, ObjectId, Value};
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// CrowdImpute configuration.
#[derive(Clone, Copy, Debug)]
pub struct CrowdImputeConfig {
    /// Maximum number of unary tasks (None = ask about every missing cell).
    pub budget: Option<usize>,
    /// Tasks posted per round.
    pub round_size: usize,
    /// Worker estimates collected per task (median-aggregated).
    pub workers_per_task: usize,
    /// Per-estimate worker accuracy.
    pub worker_accuracy: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdImputeConfig {
    fn default() -> Self {
        CrowdImputeConfig {
            budget: None,
            round_size: 20,
            workers_per_task: 3,
            worker_accuracy: 1.0,
            seed: 0xc1,
        }
    }
}

/// What a CrowdImpute run produces.
#[derive(Clone, Debug)]
pub struct CrowdImputeReport {
    /// The skyline of the imputed table.
    pub result: Vec<ObjectId>,
    /// Accuracy against the true complete-data skyline.
    pub accuracy: Option<Accuracy>,
    /// Unary tasks posted.
    pub tasks_posted: usize,
    /// Posting rounds.
    pub rounds: usize,
    /// Worker estimates collected.
    pub worker_answers: usize,
    /// Missing cells imputed by the machine fallback (mode) because the
    /// budget ran out.
    pub machine_imputed: usize,
    /// Wall-clock time of the algorithm.
    pub total_time: Duration,
}

/// The CrowdImpute baseline engine.
#[derive(Clone, Debug, Default)]
pub struct CrowdImpute {
    config: CrowdImputeConfig,
}

impl CrowdImpute {
    /// An engine with the given configuration.
    pub fn new(config: CrowdImputeConfig) -> CrowdImpute {
        CrowdImpute { config }
    }

    /// Runs the baseline: elicit (up to budget) missing values with unary
    /// questions, impute, machine-skyline.
    pub fn run(&self, data: &Dataset, oracle: &GroundTruthOracle) -> CrowdImputeReport {
        let t0 = Instant::now();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);

        // The attribute mode over observed values, for the machine fallback.
        let modes: Vec<Value> = data
            .attrs()
            .map(|a| {
                let card = data.domain(a).cardinality() as usize;
                let mut counts = vec![0usize; card];
                for o in data.objects() {
                    if let Some(v) = data.get(o, a) {
                        counts[v as usize] += 1;
                    }
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(v, &c)| (c, std::cmp::Reverse(v)))
                    .map(|(v, _)| v as Value)
                    .unwrap_or(0)
            })
            .collect();

        let missing = data.missing_vars();
        let budget = self.config.budget.unwrap_or(missing.len());
        let (asked, fallback) = missing.split_at(budget.min(missing.len()));

        let mut imputed = data.clone();
        let mut tasks_posted = 0usize;
        let mut rounds = 0usize;
        for chunk in asked.chunks(self.config.round_size.max(1)) {
            rounds += 1;
            tasks_posted += chunk.len();
            let tasks: Vec<UnaryTask> = chunk.iter().map(|&var| UnaryTask { var }).collect();
            let answers = answer_unary_batch(
                oracle,
                &tasks,
                self.config.worker_accuracy,
                self.config.workers_per_task,
                &mut rng,
            );
            for (task, value) in answers {
                imputed
                    .set(task.var.object, task.var.attr, Some(value))
                    .expect("voted value lies in the domain");
            }
        }
        for &var in fallback {
            imputed
                .set(var.object, var.attr, Some(modes[var.attr.index()]))
                .expect("mode lies in the domain");
        }

        let result = skyline_sfs(&imputed).expect("imputed table is complete");
        let truth = skyline_sfs(oracle.complete()).ok();
        let accuracy = truth.map(|t| Accuracy::of(&result, &t));

        CrowdImputeReport {
            result,
            accuracy,
            tasks_posted,
            rounds,
            worker_answers: tasks_posted * self.config.workers_per_task,
            machine_imputed: fallback.len(),
            total_time: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::classic::independent;
    use bc_data::missing::inject_mcar;

    fn setup(n: usize, rate: f64, seed: u64) -> (Dataset, Dataset) {
        let complete = independent(n, 4, 8, seed);
        let (incomplete, _) = inject_mcar(&complete, rate, seed + 1);
        (complete, incomplete)
    }

    #[test]
    fn perfect_workers_and_full_budget_recover_the_skyline() {
        let (complete, incomplete) = setup(100, 0.2, 5);
        let oracle = GroundTruthOracle::new(complete);
        let report = CrowdImpute::default().run(&incomplete, &oracle);
        assert_eq!(report.accuracy.unwrap().f1, 1.0);
        assert_eq!(report.tasks_posted, incomplete.n_missing());
        assert_eq!(report.machine_imputed, 0);
        assert_eq!(report.worker_answers, report.tasks_posted * 3);
    }

    #[test]
    fn cost_scales_with_missing_cells() {
        let (complete, incomplete) = setup(200, 0.25, 6);
        let oracle = GroundTruthOracle::new(complete);
        let report = CrowdImpute::default().run(&incomplete, &oracle);
        assert_eq!(report.tasks_posted, incomplete.n_missing());
        assert_eq!(
            report.rounds,
            incomplete.n_missing().div_ceil(20),
            "rounds are ceil(tasks / round_size)"
        );
    }

    #[test]
    fn budget_caps_tasks_and_triggers_machine_fallback() {
        let (complete, incomplete) = setup(100, 0.2, 7);
        let oracle = GroundTruthOracle::new(complete);
        let config = CrowdImputeConfig {
            budget: Some(10),
            ..Default::default()
        };
        let report = CrowdImpute::new(config).run(&incomplete, &oracle);
        assert_eq!(report.tasks_posted, 10);
        assert_eq!(report.machine_imputed, incomplete.n_missing() - 10);
        // Still a complete, well-formed answer.
        assert!(!report.result.is_empty());
    }

    #[test]
    fn noisy_estimates_degrade_accuracy() {
        // The paper's critique: unary estimates carry noise with no
        // hedging. Averaged over seeds, noisy CrowdImpute must be worse
        // than noiseless CrowdImpute.
        let mut clean = 0.0;
        let mut noisy = 0.0;
        for seed in 0..6 {
            let (complete, incomplete) = setup(150, 0.2, 20 + seed);
            let oracle = GroundTruthOracle::new(complete);
            clean += CrowdImpute::default()
                .run(&incomplete, &oracle)
                .accuracy
                .unwrap()
                .f1;
            let config = CrowdImputeConfig {
                worker_accuracy: 0.6,
                seed,
                ..Default::default()
            };
            noisy += CrowdImpute::new(config)
                .run(&incomplete, &oracle)
                .accuracy
                .unwrap()
                .f1;
        }
        assert!(
            noisy < clean - 0.02,
            "noise should hurt: noisy {noisy} vs clean {clean}"
        );
        assert!((clean / 6.0 - 1.0).abs() < 1e-9);
    }
}
