//! A generalized (weighted) ApproxCount estimator.
//!
//! The paper generalizes the ApproxCount model counter of Wei & Selman to
//! multi-valued weighted variables and reports it *worse than ADPLL in both
//! efficiency and accuracy* — its Section 5 discussion. This module
//! implements that comparator so the claim can be measured:
//!
//! ApproxCount estimates `Pr(φ)` by a chain of conditioning steps. At each
//! level it samples assignments of the condition's variables from their
//! distributions, keeps the satisfying ones (the "models"), picks the
//! variable/value pair `(v, a)` most common among the models, and uses the
//! sampled conditional `q ≈ Pr(v = a | φ)` in the identity
//!
//! ```text
//! Pr(φ) = p(v = a) · Pr(φ[v := a]) / q
//! ```
//!
//! recursing on the simplified condition. Small residual conditions are
//! finished exactly. Sampling models by rejection is exactly why the method
//! struggles: conditions with low probability yield few models per batch.

use crate::dists::VarDists;
use crate::naive::NaiveSolver;
use crate::{Solver, SolverError};
use bc_ctable::Condition;
use bc_data::{Value, VarId};
use rand::Rng;
use rand::SeedableRng;

/// The weighted-ApproxCount estimator.
#[derive(Clone, Debug)]
pub struct ApproxCountSolver {
    /// Assignments sampled per conditioning level.
    pub samples_per_level: u32,
    /// Independent estimation chains whose results are averaged (the usual
    /// variance-reduction step of ApproxCount-style counters).
    pub repeats: u32,
    /// RNG seed (re-seeded per call, so the estimator is deterministic).
    pub seed: u64,
    /// Residual state-space size below which the exact enumerator finishes
    /// the computation.
    pub exact_cutoff: u128,
}

impl Default for ApproxCountSolver {
    fn default() -> Self {
        ApproxCountSolver {
            samples_per_level: 2_000,
            repeats: 5,
            seed: 0xac0,
            exact_cutoff: 4_096,
        }
    }
}

impl ApproxCountSolver {
    /// An estimator with explicit parameters.
    pub fn new(samples_per_level: u32, seed: u64) -> ApproxCountSolver {
        ApproxCountSolver {
            samples_per_level,
            seed,
            ..Default::default()
        }
    }

    fn state_space(cond: &Condition, dists: &VarDists) -> Result<u128, SolverError> {
        let mut states: u128 = 1;
        for v in cond.vars() {
            states = states.saturating_mul(dists.pmf(v)?.support_size() as u128);
        }
        Ok(states)
    }

    fn estimate(
        &self,
        cond: &Condition,
        dists: &VarDists,
        rng: &mut impl Rng,
        exact: &NaiveSolver,
    ) -> Result<f64, SolverError> {
        match cond {
            Condition::True => return Ok(1.0),
            Condition::False => return Ok(0.0),
            Condition::Cnf(_) => {}
        }
        if Self::state_space(cond, dists)? <= self.exact_cutoff {
            return exact.probability(cond, dists);
        }

        let vars: Vec<VarId> = cond.vars().into_iter().collect();
        let pmfs = vars
            .iter()
            .map(|&v| dists.pmf(v).cloned())
            .collect::<Result<Vec<_>, _>>()?;

        // Sample assignments; keep per-(var, value) model counts.
        let mut model_counts: Vec<Vec<u32>> = pmfs.iter().map(|p| vec![0u32; p.card()]).collect();
        let mut models = 0u32;
        let mut assignment: Vec<Value> = vec![0; vars.len()];
        for _ in 0..self.samples_per_level {
            for (slot, pmf) in assignment.iter_mut().zip(&pmfs) {
                *slot = pmf.sample(rng);
            }
            let lookup = |q: VarId| {
                let i = vars.binary_search(&q).expect("var collected");
                assignment[i]
            };
            if cond.eval(lookup) {
                models += 1;
                for (i, &val) in assignment.iter().enumerate() {
                    model_counts[i][val as usize] += 1;
                }
            }
        }
        if models == 0 {
            // No model found: the condition probability is below the
            // sampling resolution — report the Monte-Carlo-style zero.
            return Ok(0.0);
        }

        // Pick the (var, value) with the highest conditional frequency to
        // keep the divisor q large (ApproxCount's stabilizing choice).
        let (best_i, best_val, best_count) = model_counts
            .iter()
            .enumerate()
            .flat_map(|(i, counts)| {
                counts
                    .iter()
                    .enumerate()
                    .map(move |(val, &c)| (i, val as Value, c))
            })
            .max_by_key(|&(i, val, c)| (c, std::cmp::Reverse(i), val))
            .expect("at least one variable");
        let q = best_count as f64 / models as f64;
        let v = vars[best_i];
        let p_a = pmfs[best_i].p(best_val);
        let sub = cond.substitute(v, best_val);
        Ok((p_a * self.estimate(&sub, dists, rng, exact)? / q).clamp(0.0, 1.0))
    }
}

impl Solver for ApproxCountSolver {
    fn probability(&self, cond: &Condition, dists: &VarDists) -> Result<f64, SolverError> {
        let exact = NaiveSolver::with_limit(self.exact_cutoff.saturating_mul(4));
        let mut total = 0.0;
        for chain in 0..self.repeats.max(1) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed.wrapping_add(chain as u64));
            total += self.estimate(cond, dists, &mut rng, &exact)?;
        }
        Ok(total / self.repeats.max(1) as f64)
    }

    fn name(&self) -> &'static str {
        "ApproxCount"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_bayes::Pmf;
    use bc_ctable::Expr;

    fn v(o: u32) -> VarId {
        VarId::new(o, 0)
    }

    fn big_dists(n: u32, card: usize) -> VarDists {
        (0..n).map(|i| (v(i), Pmf::uniform(card))).collect()
    }

    #[test]
    fn exact_on_small_conditions() {
        // Below the cutoff it delegates to the exact enumerator.
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0), 3)]]);
        let d = big_dists(1, 10);
        let p = ApproxCountSolver::default().probability(&cond, &d).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn approximates_larger_conditions() {
        // 8 variables of cardinality 8 → 16M states, far over the cutoff.
        let clauses: Vec<Vec<Expr>> = (0..4)
            .map(|i| vec![Expr::lt(v(2 * i), 6), Expr::gt(v(2 * i + 1), 1)])
            .collect();
        let cond = Condition::from_clauses(clauses);
        let d = big_dists(8, 8);
        let exact = crate::adpll::AdpllSolver::new()
            .probability(&cond, &d)
            .unwrap();
        let est = ApproxCountSolver::new(8_000, 3)
            .probability(&cond, &d)
            .unwrap();
        // The chained conditional estimates compound sampling error — the
        // inaccuracy the paper reports. Averaged over chains it lands in
        // the right region but visibly off the exact value.
        assert!(
            (exact - est).abs() < 0.12,
            "exact {exact} vs ApproxCount {est}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let clauses: Vec<Vec<Expr>> = (0..4)
            .map(|i| vec![Expr::lt(v(2 * i), 5), Expr::gt(v(2 * i + 1), 2)])
            .collect();
        let cond = Condition::from_clauses(clauses);
        let d = big_dists(8, 8);
        let s = ApproxCountSolver::new(1_000, 17);
        assert_eq!(
            s.probability(&cond, &d).unwrap(),
            s.probability(&cond, &d).unwrap()
        );
    }

    #[test]
    fn rare_conditions_underflow_to_zero() {
        // Every variable must be exactly 0: probability 8^-8 ≈ 6e-8, far
        // below the sampling resolution — the estimator reports 0, which is
        // precisely the weakness the paper describes.
        let clauses: Vec<Vec<Expr>> = (0..8).map(|i| vec![Expr::lt(v(i), 1)]).collect();
        let cond = Condition::from_clauses(clauses);
        let d = big_dists(8, 8);
        let est = ApproxCountSolver::new(500, 5)
            .probability(&cond, &d)
            .unwrap();
        assert_eq!(est, 0.0);
    }

    #[test]
    fn trivial_conditions() {
        let s = ApproxCountSolver::default();
        let d = VarDists::default();
        assert_eq!(s.probability(&Condition::True, &d).unwrap(), 1.0);
        assert_eq!(s.probability(&Condition::False, &d).unwrap(), 0.0);
    }
}
