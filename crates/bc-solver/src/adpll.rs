//! The adaptive DPLL solver (Algorithm 3).
//!
//! ADPLL computes `Pr(φ)` exactly. It first splits the CNF into
//! variable-disjoint components (the generalization of Algorithm 3's
//! "conjuncts are independent" check): component probabilities multiply by
//! the *special conjunctive rule*. A component that is a single clause with
//! variable-disjoint expressions is closed directly by the *general
//! disjunctive rule* `Pr(∨ eⱼ) = 1 − Π (1 − Pr(eⱼ))`. Otherwise the solver
//! branches on a variable (by default the most frequent one, the paper's
//! heuristic), summing `p(v = a) · Pr(φ[v := a])` over the variable's
//! support — weakening the expression correlation at every level exactly as
//! the paper describes.

use crate::dists::VarDists;
use crate::{Solver, SolverError};
use bc_ctable::{Clause, Condition};
use bc_data::VarId;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

/// Which variable to branch on when a component is correlated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BranchHeuristic {
    /// The paper's choice: the variable occurring in the most expressions
    /// (ties break toward the smallest variable id, deterministically).
    #[default]
    MostFrequent,
    /// The first (smallest-id) variable — the ablation baseline showing the
    /// value of the frequency heuristic.
    First,
}

/// Counters describing one solve — the shape of the ADPLL search tree.
///
/// All fields but `max_depth` are monotone event counts; `max_depth` is the
/// deepest branching recursion reached, combined by `max` rather than `+`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of value-branching decisions taken.
    pub branches: u64,
    /// Number of independent components closed directly by the general
    /// disjunctive rule (no branching).
    pub direct_components: u64,
    /// Number of times connected-component decomposition split a condition
    /// into more than one independent sub-problem.
    pub component_splits: u64,
    /// Number of component probabilities served from the cache.
    pub cache_hits: u64,
    /// Number of correlated components that had to be solved by branching
    /// because the cache had no entry (or caching was disabled).
    pub cache_misses: u64,
    /// Deepest branching recursion reached.
    pub max_depth: u64,
}

impl SolveStats {
    /// Counter-wise difference `self - earlier`, for before/after
    /// snapshots around a single call. Event counts subtract saturating
    /// (a reset in between must not wrap a reused solver's counters
    /// around); `max_depth` is not a count and carries over as the
    /// cumulative maximum.
    pub fn since(&self, earlier: &SolveStats) -> SolveStats {
        SolveStats {
            branches: self.branches.saturating_sub(earlier.branches),
            direct_components: self
                .direct_components
                .saturating_sub(earlier.direct_components),
            component_splits: self
                .component_splits
                .saturating_sub(earlier.component_splits),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            max_depth: self.max_depth,
        }
    }
}

impl std::ops::AddAssign for SolveStats {
    fn add_assign(&mut self, rhs: SolveStats) {
        self.branches += rhs.branches;
        self.direct_components += rhs.direct_components;
        self.component_splits += rhs.component_splits;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.max_depth = self.max_depth.max(rhs.max_depth);
    }
}

/// The adaptive DPLL solver.
///
/// ```
/// use bc_bayes::Pmf;
/// use bc_ctable::{Condition, Expr};
/// use bc_data::VarId;
/// use bc_solver::{AdpllSolver, Solver, VarDists};
///
/// // φ = (x < 2) ∧ (y > 4), x and y uniform over 0..10.
/// let x = VarId::new(0, 0);
/// let y = VarId::new(1, 0);
/// let cond = Condition::from_clauses(vec![
///     vec![Expr::lt(x, 2)],
///     vec![Expr::gt(y, 4)],
/// ]);
/// let dists: VarDists = [(x, Pmf::uniform(10)), (y, Pmf::uniform(10))]
///     .into_iter()
///     .collect();
/// let p = AdpllSolver::new().probability(&cond, &dists).unwrap();
/// assert!((p - 0.2 * 0.5).abs() < 1e-12);
/// ```
///
/// By default the solver memoizes component probabilities *within one
/// `probability` call* (component/formula caching in the style of Sang,
/// Beame & Kautz — reference \[32\] of the paper). Sibling branches whose
/// substitutions collapse to the same residual component are then solved
/// once. Caching is sound per call because the distributions are fixed for
/// its duration; it is cleared between calls.
#[derive(Clone, Debug)]
pub struct AdpllSolver {
    heuristic: BranchHeuristic,
    caching: bool,
    branches: Cell<u64>,
    direct: Cell<u64>,
    splits: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    /// Current branching recursion depth (transient within one call).
    depth: Cell<u64>,
    max_depth: Cell<u64>,
}

impl Default for AdpllSolver {
    fn default() -> Self {
        AdpllSolver {
            heuristic: BranchHeuristic::default(),
            caching: true,
            branches: Cell::new(0),
            direct: Cell::new(0),
            splits: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            depth: Cell::new(0),
            max_depth: Cell::new(0),
        }
    }
}

impl AdpllSolver {
    /// A solver with the paper's most-frequent-variable heuristic and
    /// component caching enabled.
    pub fn new() -> AdpllSolver {
        AdpllSolver::default()
    }

    /// A solver with an explicit branching heuristic (for the ablation).
    pub fn with_heuristic(heuristic: BranchHeuristic) -> AdpllSolver {
        AdpllSolver {
            heuristic,
            ..Default::default()
        }
    }

    /// Enables or disables per-call component caching (the ablation knob).
    pub fn with_caching(mut self, caching: bool) -> AdpllSolver {
        self.caching = caching;
        self
    }

    /// Statistics accumulated since construction (or the last reset).
    pub fn stats(&self) -> SolveStats {
        SolveStats {
            branches: self.branches.get(),
            direct_components: self.direct.get(),
            component_splits: self.splits.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            max_depth: self.max_depth.get(),
        }
    }

    /// Clears the counters.
    pub fn reset_stats(&self) {
        self.branches.set(0);
        self.direct.set(0);
        self.splits.set(0);
        self.cache_hits.set(0);
        self.cache_misses.set(0);
        self.max_depth.set(0);
    }

    fn clause_probability(&self, clause: &Clause, dists: &VarDists) -> Result<f64, SolverError> {
        // Within-clause expressions are variable-disjoint by construction;
        // verify and fall back to local branching if a manually built clause
        // violates it.
        let mut seen: Vec<VarId> = Vec::with_capacity(clause.len() * 2);
        let mut disjoint = true;
        'outer: for e in clause.exprs() {
            for v in e.vars() {
                if seen.contains(&v) {
                    disjoint = false;
                    break 'outer;
                }
                seen.push(v);
            }
        }
        if disjoint {
            // General disjunctive rule (clamped: pmf normalization can
            // leave 1e-16-scale slack in the complement products).
            let mut none = 1.0;
            for e in clause.exprs() {
                none *= (1.0 - dists.expr_prob(e)?).clamp(0.0, 1.0);
            }
            Ok((1.0 - none).clamp(0.0, 1.0))
        } else {
            // Shared variables inside one clause: treat it as a one-clause
            // condition and branch.
            let cond = Condition::from_clauses(vec![clause.exprs().to_vec()]);
            let mut cache = HashMap::new();
            self.branch(&cond, dists, &mut cache)
        }
    }

    fn pick_branch_var(&self, cond: &Condition) -> Option<VarId> {
        match self.heuristic {
            BranchHeuristic::MostFrequent => cond.most_frequent_var(),
            BranchHeuristic::First => cond.vars().into_iter().next(),
        }
    }

    fn branch(
        &self,
        cond: &Condition,
        dists: &VarDists,
        cache: &mut HashMap<Condition, f64>,
    ) -> Result<f64, SolverError> {
        let v = self
            .pick_branch_var(cond)
            .expect("branch() is only called on undecided conditions");
        let pmf = dists.pmf(v)?.clone();
        let d = self.depth.get() + 1;
        self.depth.set(d);
        self.max_depth.set(self.max_depth.get().max(d));
        let mut total = 0.0;
        for value in pmf.support() {
            self.branches.set(self.branches.get() + 1);
            let sub = cond.substitute(v, value);
            let p = self.solve(&sub, dists, cache);
            match p {
                Ok(p) => total += pmf.p(value) * p,
                Err(e) => {
                    self.depth.set(d - 1);
                    return Err(e);
                }
            }
        }
        self.depth.set(d - 1);
        Ok(total.clamp(0.0, 1.0))
    }

    fn solve(
        &self,
        cond: &Condition,
        dists: &VarDists,
        cache: &mut HashMap<Condition, f64>,
    ) -> Result<f64, SolverError> {
        let clauses = match cond {
            Condition::True => return Ok(1.0),
            Condition::False => return Ok(0.0),
            Condition::Cnf(clauses) => clauses,
        };

        // Split clauses into variable-connected components.
        let components = connected_components(clauses);
        if components.len() > 1 {
            self.splits.set(self.splits.get() + 1);
        }
        let mut total = 1.0;
        for comp in components {
            let p = if comp.len() == 1 {
                self.direct.set(self.direct.get() + 1);
                self.clause_probability(comp[0], dists)?
            } else {
                let cond = Condition::from_clauses(comp.iter().map(|c| c.exprs().to_vec()));
                match &cond {
                    Condition::True => 1.0,
                    Condition::False => 0.0,
                    Condition::Cnf(_) => {
                        if self.caching {
                            if let Some(&hit) = cache.get(&cond) {
                                self.cache_hits.set(self.cache_hits.get() + 1);
                                hit
                            } else {
                                self.cache_misses.set(self.cache_misses.get() + 1);
                                let p = self.branch(&cond, dists, cache)?;
                                cache.insert(cond, p);
                                p
                            }
                        } else {
                            self.cache_misses.set(self.cache_misses.get() + 1);
                            self.branch(&cond, dists, cache)?
                        }
                    }
                }
            };
            total *= p;
            if total == 0.0 {
                break;
            }
        }
        Ok(total.clamp(0.0, 1.0))
    }
}

/// Groups clauses into variable-connected components.
fn connected_components(clauses: &[Clause]) -> Vec<Vec<&Clause>> {
    let n = clauses.len();
    // Union-find over clause indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: BTreeMap<VarId, usize> = BTreeMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        for e in clause.exprs() {
            for v in e.vars() {
                match owner.get(&v) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        if ri != rj {
                            parent[ri] = rj;
                        }
                    }
                    None => {
                        owner.insert(v, i);
                    }
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<&Clause>> = BTreeMap::new();
    for (i, clause) in clauses.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(clause);
    }
    groups.into_values().collect()
}

impl Solver for AdpllSolver {
    fn probability(&self, cond: &Condition, dists: &VarDists) -> Result<f64, SolverError> {
        let mut cache = HashMap::new();
        self.solve(cond, dists, &mut cache)
    }

    fn probability_with_stats(
        &self,
        cond: &Condition,
        dists: &VarDists,
    ) -> Result<(f64, SolveStats), SolverError> {
        let before = self.stats();
        let p = self.probability(cond, dists)?;
        Ok((p, self.stats().since(&before)))
    }

    fn name(&self) -> &'static str {
        "ADPLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_bayes::Pmf;
    use bc_ctable::Expr;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn trivial_conditions() {
        let s = AdpllSolver::new();
        let d = VarDists::default();
        assert_eq!(s.probability(&Condition::True, &d).unwrap(), 1.0);
        assert_eq!(s.probability(&Condition::False, &d).unwrap(), 0.0);
    }

    #[test]
    fn independent_clauses_use_the_product_rule() {
        // (x < 2) ∧ (y < 5), x,y uniform over 10 → 0.2 * 0.5.
        let cond =
            Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 2)], vec![Expr::lt(v(1, 0), 5)]]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(10)), (v(1, 0), Pmf::uniform(10))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        let p = s.probability(&cond, &d).unwrap();
        assert!((p - 0.1).abs() < 1e-12);
        // No branching should have happened.
        assert_eq!(s.stats().branches, 0);
        assert_eq!(s.stats().direct_components, 2);
    }

    #[test]
    fn disjunctive_rule_within_a_clause() {
        // (x < 2 ∨ y < 5) → 1 - 0.8*0.5 = 0.6.
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 2), Expr::lt(v(1, 0), 5)]]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(10)), (v(1, 0), Pmf::uniform(10))]
            .into_iter()
            .collect();
        let p = AdpllSolver::new().probability(&cond, &d).unwrap();
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn correlated_clauses_branch_correctly() {
        // (x < 2) ∧ (x > 0 ∨ y < 5) with x,y uniform over 4.
        // Exact: P(x=1)·1 + P(x=0)·P(y<5=1)… compute by hand:
        // x<2 → x ∈ {0,1}. If x=1: second clause true (x>0). If x=0: second
        // clause iff y<5 (always true for card 4). So P = P(x<2) = 0.5.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 2)],
            vec![Expr::gt(v(0, 0), 0), Expr::lt(v(1, 0), 5)],
        ]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::uniform(4))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        let p = s.probability(&cond, &d).unwrap();
        assert!((p - 0.5).abs() < 1e-12, "got {p}");
        assert!(s.stats().branches > 0);
    }

    #[test]
    fn narrower_y_matters() {
        // Same shape but y uniform over 8 and clause needs y < 2:
        // P = P(x=1) + P(x=0)·P(y<2) = 0.25 + 0.25·0.25 = 0.3125.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 2)],
            vec![Expr::gt(v(0, 0), 0), Expr::lt(v(1, 0), 2)],
        ]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::uniform(8))]
            .into_iter()
            .collect();
        let p = AdpllSolver::new().probability(&cond, &d).unwrap();
        assert!((p - 0.3125).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn heuristics_agree_on_probability() {
        let cond = Condition::from_clauses(vec![
            vec![Expr::gt(v(0, 0), 2), Expr::gt(v(0, 1), 3)],
            vec![Expr::var_gt(v(0, 0), v(1, 0)), Expr::gt(v(0, 1), 2)],
        ]);
        let d: VarDists = [
            (v(0, 0), Pmf::uniform(10)),
            (v(0, 1), Pmf::uniform(8)),
            (v(1, 0), Pmf::uniform(10)),
        ]
        .into_iter()
        .collect();
        let a = AdpllSolver::with_heuristic(BranchHeuristic::MostFrequent)
            .probability(&cond, &d)
            .unwrap();
        let b = AdpllSolver::with_heuristic(BranchHeuristic::First)
            .probability(&cond, &d)
            .unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn caching_does_not_change_results_and_saves_branches() {
        // A condition whose branches collapse to repeated residuals: the
        // cached solver must agree with the uncached one and record hits.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 5), Expr::lt(v(1, 0), 3)],
            vec![Expr::gt(v(0, 0), 1), Expr::gt(v(2, 0), 6)],
            vec![
                Expr::lt(v(0, 0), 8),
                Expr::gt(v(1, 0), 1),
                Expr::lt(v(2, 0), 9),
            ],
        ]);
        let d: VarDists = (0..3).map(|o| (v(o, 0), Pmf::uniform(10))).collect();
        let cached = AdpllSolver::new();
        let uncached = AdpllSolver::new().with_caching(false);
        let a = cached.probability(&cond, &d).unwrap();
        let b = uncached.probability(&cond, &d).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!(cached.stats().cache_hits > 0, "expected cache hits");
        assert!(
            cached.stats().branches < uncached.stats().branches,
            "caching should prune branches: {} vs {}",
            cached.stats().branches,
            uncached.stats().branches
        );
    }

    #[test]
    fn cache_is_per_call() {
        // Two calls with different distributions must not contaminate each
        // other even though the conditions are identical.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 2)],
            vec![Expr::gt(v(0, 0), 0), Expr::lt(v(1, 0), 2)],
        ]);
        let s = AdpllSolver::new();
        let d1: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::uniform(4))]
            .into_iter()
            .collect();
        let d2: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::delta(4, 3))]
            .into_iter()
            .collect();
        let p1 = s.probability(&cond, &d1).unwrap();
        let p2 = s.probability(&cond, &d2).unwrap();
        // P(x<2)·[P(x=1)/P(x<2) + P(x=0)/P(x<2)·P(y<2)] = .25 + .25·.5.
        assert!((p1 - 0.375).abs() < 1e-12, "got {p1}");
        // With y pinned to 3, the clause (x>0 ∨ y<2) needs x>0:
        // P = P(x=1) = 0.25.
        assert!((p2 - 0.25).abs() < 1e-12, "got {p2}");
    }

    #[test]
    fn per_call_stats_are_not_cumulative() {
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 2)],
            vec![Expr::gt(v(0, 0), 0), Expr::lt(v(1, 0), 2)],
        ]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::uniform(4))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        let (_, first) = s.probability_with_stats(&cond, &d).unwrap();
        let (_, second) = s.probability_with_stats(&cond, &d).unwrap();
        assert!(first.branches > 0);
        // The second call reports only its own work, while the cumulative
        // counters keep growing.
        assert_eq!(first.branches, second.branches);
        assert_eq!(s.stats().branches, first.branches + second.branches);
    }

    #[test]
    fn since_saturates_when_solver_is_reset_between_snapshots() {
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 2)],
            vec![Expr::gt(v(0, 0), 0), Expr::lt(v(1, 0), 2)],
        ]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(4)), (v(1, 0), Pmf::uniform(4))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        s.probability(&cond, &d).unwrap();
        let before = s.stats();
        assert!(before.branches > 0 && before.cache_misses > 0);
        // A reset between the snapshot and the diff — exactly what happens
        // when a solver is reused across rounds — must saturate to zero,
        // not wrap around.
        s.reset_stats();
        s.probability(&Condition::True, &d).unwrap();
        let diff = s.stats().since(&before);
        assert_eq!(diff.branches, 0);
        assert_eq!(diff.direct_components, 0);
        assert_eq!(diff.component_splits, 0);
        assert_eq!(diff.cache_hits, 0);
        assert_eq!(diff.cache_misses, 0);
        // max_depth is not a count: it carries over as the cumulative max.
        assert_eq!(diff.max_depth, s.stats().max_depth);

        // Normal forward diffs still report exactly the delta.
        let mid = s.stats();
        s.probability(&cond, &d).unwrap();
        let fwd = s.stats().since(&mid);
        assert_eq!(fwd.branches, before.branches);
        assert_eq!(fwd.cache_misses, before.cache_misses);
    }

    #[test]
    fn missing_distribution_propagates() {
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(7, 7), 1)]]);
        let d = VarDists::default();
        assert!(matches!(
            AdpllSolver::new().probability(&cond, &d),
            Err(SolverError::MissingDistribution(_))
        ));
    }
}
