#![warn(missing_docs)]
//! Probability computation for c-table conditions.
//!
//! The probability that a condition `φ(o)` holds — i.e. that object `o` is a
//! skyline answer — is a weighted model-counting problem, at least as hard
//! as #SAT (Section 5 of the paper). This crate provides:
//!
//! * [`AdpllSolver`] — the paper's adaptive DPLL (Algorithm 3): splits the
//!   CNF into variable-disjoint components, applies the special conjunctive
//!   rule and the general disjunctive rule on independent parts, and
//!   branches on the most frequent variable otherwise,
//! * [`NaiveSolver`] — brute-force enumeration of all variable assignments,
//! * [`ApproxCountSolver`] — the generalized weighted ApproxCount the paper
//!   compares against (and finds inferior),
//! * [`MonteCarloSolver`] — a plain sampling estimator,
//! * [`VarDists`] — per-variable value distributions (from the Bayesian
//!   network) with expression-probability helpers, and
//! * [`utility`] — the marginal-utility function `G(o, e)` (Definition 6).

pub mod adpll;
pub mod approxcount;
pub mod dists;
pub mod montecarlo;
pub mod naive;
pub mod utility;

pub use adpll::{AdpllSolver, BranchHeuristic, SolveStats};
pub use approxcount::ApproxCountSolver;
pub use dists::VarDists;
pub use montecarlo::MonteCarloSolver;
pub use naive::{ModelCount, NaiveSolver};

use bc_ctable::Condition;
use std::fmt;

/// Errors raised by probability computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// A variable in the condition has no distribution.
    MissingDistribution(bc_data::VarId),
    /// The naive enumerator would visit more states than allowed.
    StateSpaceTooLarge {
        /// States the enumeration would need.
        states: u128,
        /// The configured cap.
        limit: u128,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::MissingDistribution(v) => {
                write!(f, "no distribution for variable {v}")
            }
            SolverError::StateSpaceTooLarge { states, limit } => {
                write!(f, "enumeration needs {states} states (limit {limit})")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// A probability solver for c-table conditions.
pub trait Solver {
    /// `Pr(φ)` under the given per-variable distributions.
    fn probability(&self, cond: &Condition, dists: &VarDists) -> Result<f64, SolverError>;

    /// `Pr(φ)` plus the effort counters attributable to *this call alone*.
    ///
    /// The default implementation reports empty stats; solvers that keep
    /// counters (like [`AdpllSolver`]) override it with a snapshot diff so
    /// callers can attribute work per condition without resetting the
    /// solver's cumulative counters.
    fn probability_with_stats(
        &self,
        cond: &Condition,
        dists: &VarDists,
    ) -> Result<(f64, SolveStats), SolverError> {
        Ok((self.probability(cond, dists)?, SolveStats::default()))
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}
