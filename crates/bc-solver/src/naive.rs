//! The brute-force baseline: enumerate every assignment of the variables in
//! the condition and aggregate the probabilities of the satisfying ones
//! (Section 5's "Naive" method, complexity `O(N^(d·|D|))`).

use crate::dists::VarDists;
use crate::{Solver, SolverError};
use bc_ctable::Condition;
use bc_data::{Value, VarId};

/// The naive enumerator. Guards against state-space explosion via a
/// configurable cap.
#[derive(Clone, Debug)]
pub struct NaiveSolver {
    /// Maximum number of assignments to enumerate.
    pub max_states: u128,
}

impl Default for NaiveSolver {
    fn default() -> Self {
        NaiveSolver {
            max_states: 200_000_000,
        }
    }
}

/// The full enumeration behind one [`NaiveSolver`] probability: how many
/// assignments exist, how many satisfy the condition, and their total
/// weight. `weight` *is* `Pr(φ)`; the raw counts let a differential oracle
/// compare per-condition model counts across solvers, not just the final
/// float.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelCount {
    /// Assignments enumerated (the product of the variables' support sizes).
    pub states: u128,
    /// Assignments satisfying the condition.
    pub satisfying: u128,
    /// Total probability mass of the satisfying assignments — `Pr(φ)`.
    pub weight: f64,
}

impl NaiveSolver {
    /// A solver with the default state cap.
    pub fn new() -> NaiveSolver {
        NaiveSolver::default()
    }

    /// A solver with an explicit state cap.
    pub fn with_limit(max_states: u128) -> NaiveSolver {
        NaiveSolver { max_states }
    }

    /// Enumerates every assignment and returns the per-condition counts.
    /// `Condition::True` counts as one satisfying state over zero variables;
    /// `Condition::False` as zero satisfying states.
    pub fn count_models(
        &self,
        cond: &Condition,
        dists: &VarDists,
    ) -> Result<ModelCount, SolverError> {
        let clauses = match cond {
            Condition::True => {
                return Ok(ModelCount {
                    states: 1,
                    satisfying: 1,
                    weight: 1.0,
                })
            }
            Condition::False => {
                return Ok(ModelCount {
                    states: 1,
                    satisfying: 0,
                    weight: 0.0,
                })
            }
            Condition::Cnf(_) => cond,
        };

        let vars: Vec<VarId> = clauses.vars().into_iter().collect();
        // Enumerate over each variable's support only.
        let supports: Vec<Vec<Value>> = vars
            .iter()
            .map(|&v| Ok(dists.pmf(v)?.support().collect()))
            .collect::<Result<_, SolverError>>()?;

        let states = supports
            .iter()
            .fold(1u128, |acc, s| acc.saturating_mul(s.len() as u128));
        if states > self.max_states {
            return Err(SolverError::StateSpaceTooLarge {
                states,
                limit: self.max_states,
            });
        }

        let mut assignment: Vec<Value> = supports.iter().map(|s| s[0]).collect();
        let mut indices = vec![0usize; vars.len()];
        let mut count = ModelCount {
            states,
            ..ModelCount::default()
        };
        loop {
            // Weight of this assignment.
            let mut weight = 1.0;
            for (i, &v) in vars.iter().enumerate() {
                weight *= dists.pmf(v)?.p(assignment[i]);
            }
            let lookup = |q: VarId| {
                let i = vars.binary_search(&q).expect("all vars collected");
                assignment[i]
            };
            if clauses.eval(lookup) {
                count.satisfying += 1;
                count.weight += weight;
            }
            // Odometer increment.
            let mut k = vars.len();
            loop {
                if k == 0 {
                    count.weight = count.weight.clamp(0.0, 1.0);
                    return Ok(count);
                }
                k -= 1;
                indices[k] += 1;
                if indices[k] < supports[k].len() {
                    assignment[k] = supports[k][indices[k]];
                    break;
                }
                indices[k] = 0;
                assignment[k] = supports[k][0];
            }
        }
    }
}

impl Solver for NaiveSolver {
    fn probability(&self, cond: &Condition, dists: &VarDists) -> Result<f64, SolverError> {
        Ok(self.count_models(cond, dists)?.weight)
    }

    fn name(&self) -> &'static str {
        "Naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpll::AdpllSolver;
    use bc_bayes::Pmf;
    use bc_ctable::Expr;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn count_models_exposes_the_enumeration() {
        // (x < 2) over uniform 0..4: 2 of 4 states satisfy.
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 2)]]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(4))].into_iter().collect();
        let count = NaiveSolver::new().count_models(&cond, &d).unwrap();
        assert_eq!(count.states, 4);
        assert_eq!(count.satisfying, 2);
        assert!((count.weight - 0.5).abs() < 1e-12);
        // Decided conditions have trivial counts.
        let t = NaiveSolver::new()
            .count_models(&Condition::True, &d)
            .unwrap();
        assert_eq!((t.states, t.satisfying), (1, 1));
        let f = NaiveSolver::new()
            .count_models(&Condition::False, &d)
            .unwrap();
        assert_eq!((f.states, f.satisfying), (1, 0));
    }

    #[test]
    fn matches_closed_forms() {
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 2), Expr::lt(v(1, 0), 5)]]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(10)), (v(1, 0), Pmf::uniform(10))]
            .into_iter()
            .collect();
        let p = NaiveSolver::new().probability(&cond, &d).unwrap();
        assert!((p - 0.6).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_adpll_on_correlated_conditions() {
        let cond = Condition::from_clauses(vec![
            vec![Expr::gt(v(0, 0), 2), Expr::gt(v(0, 1), 3)],
            vec![Expr::var_gt(v(0, 0), v(1, 0)), Expr::gt(v(0, 1), 2)],
        ]);
        let d: VarDists = [
            (v(0, 0), Pmf::uniform(10)),
            (v(0, 1), Pmf::uniform(8)),
            (
                v(1, 0),
                Pmf::from_weights(vec![1.0, 2.0, 3.0, 2.0, 1.0, 1.0]),
            ),
        ]
        .into_iter()
        .collect();
        let naive = NaiveSolver::new().probability(&cond, &d).unwrap();
        let adpll = AdpllSolver::new().probability(&cond, &d).unwrap();
        assert!((naive - adpll).abs() < 1e-9, "{naive} vs {adpll}");
    }

    #[test]
    fn state_cap_is_enforced() {
        let cond = Condition::from_clauses(vec![vec![
            Expr::lt(v(0, 0), 2),
            Expr::lt(v(1, 0), 2),
            Expr::lt(v(2, 0), 2),
        ]]);
        let d: VarDists = (0..3).map(|o| (v(o, 0), Pmf::uniform(10))).collect();
        let s = NaiveSolver::with_limit(100);
        assert!(matches!(
            s.probability(&cond, &d),
            Err(SolverError::StateSpaceTooLarge { states: 1000, .. })
        ));
    }

    #[test]
    fn respects_truncated_supports() {
        // After crowd answers, supports shrink; enumeration must follow.
        let pmf = Pmf::uniform(10).conditioned(0b11).unwrap(); // {0, 1}
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 2)]]);
        let d: VarDists = [(v(0, 0), pmf)].into_iter().collect();
        let p = NaiveSolver::new().probability(&cond, &d).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
