//! Object entropy and the marginal-utility function (Definition 6).

use crate::dists::VarDists;
use crate::{Solver, SolverError};
use bc_bayes::pmf::binary_entropy;
use bc_ctable::{Condition, Expr};

/// The entropy `H(o)` of an object whose condition holds with probability
/// `p` (Eq. 3): maximal at a fair coin flip, zero when decided.
pub fn object_entropy(p: f64) -> f64 {
    binary_entropy(p)
}

/// The expected marginal utility `G(o, e) = H(o) − E[H(o | e)]` of
/// crowdsourcing expression `e` from condition `φ(o)` (Eq. 4/5).
///
/// `Pr(e)` comes from the variable distributions; the conditional
/// probabilities are computed exactly as `Pr(φ ∧ e) / Pr(e)` and
/// `Pr(φ ∧ ¬e) / Pr(¬e)`. When `e` is (probabilistically) already decided,
/// the utility is zero.
pub fn marginal_utility(
    solver: &dyn Solver,
    cond: &Condition,
    e: &Expr,
    dists: &VarDists,
) -> Result<f64, SolverError> {
    let p_phi = solver.probability(cond, dists)?;
    marginal_utility_with_prior(solver, cond, e, dists, p_phi)
}

/// [`marginal_utility`] with `Pr(φ)` already known (the framework computes
/// it once per round for the entropy ranking and reuses it here).
pub fn marginal_utility_with_prior(
    solver: &dyn Solver,
    cond: &Condition,
    e: &Expr,
    dists: &VarDists,
    p_phi: f64,
) -> Result<f64, SolverError> {
    let p_e = dists.expr_prob(e)?;
    let h = object_entropy(p_phi);
    if p_e <= f64::EPSILON || p_e >= 1.0 - f64::EPSILON {
        return Ok(0.0);
    }
    let p_and_true = solver.probability(&cond.and_expr(*e), dists)?;
    let p_and_false = solver.probability(&cond.and_expr(e.negated()), dists)?;
    let p_true = (p_and_true / p_e).clamp(0.0, 1.0);
    let p_false = (p_and_false / (1.0 - p_e)).clamp(0.0, 1.0);
    let expected = p_e * binary_entropy(p_true) + (1.0 - p_e) * binary_entropy(p_false);
    Ok((h - expected).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adpll::AdpllSolver;
    use bc_bayes::Pmf;
    use bc_data::VarId;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn entropy_peaks_at_half() {
        assert!(object_entropy(0.5) > object_entropy(0.3));
        assert!(object_entropy(0.3) > object_entropy(0.05));
        assert_eq!(object_entropy(0.0), 0.0);
        assert_eq!(object_entropy(1.0), 0.0);
    }

    #[test]
    fn resolving_the_only_expression_removes_all_uncertainty() {
        // φ = (x < 5), x uniform over 10 → H(o) = 1 bit; knowing e's truth
        // decides φ, so the utility equals the full entropy.
        let x = v(0, 0);
        let e = Expr::lt(x, 5);
        let cond = Condition::from_clauses(vec![vec![e]]);
        let d: VarDists = [(x, Pmf::uniform(10))].into_iter().collect();
        let s = AdpllSolver::new();
        let g = marginal_utility(&s, &cond, &e, &d).unwrap();
        assert!((g - 1.0).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn informative_expressions_score_higher() {
        // φ = (x < 5 ∨ y < 1), y uniform over 10.
        // Asking x (big swing) beats asking y (rarely flips anything).
        let x = v(0, 0);
        let y = v(1, 0);
        let ex = Expr::lt(x, 5);
        let ey = Expr::lt(y, 1);
        let cond = Condition::from_clauses(vec![vec![ex, ey]]);
        let d: VarDists = [(x, Pmf::uniform(10)), (y, Pmf::uniform(10))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        let gx = marginal_utility(&s, &cond, &ex, &d).unwrap();
        let gy = marginal_utility(&s, &cond, &ey, &d).unwrap();
        assert!(gx > gy, "G(x)={gx} should beat G(y)={gy}");
    }

    #[test]
    fn decided_expression_has_zero_utility() {
        let x = v(0, 0);
        // x only takes values {0,1} → "x < 5" is certain.
        let e = Expr::lt(x, 5);
        let cond = Condition::from_clauses(vec![vec![e, Expr::gt(v(1, 0), 3)]]);
        let d: VarDists = [
            (x, Pmf::uniform(10).conditioned(0b11).unwrap()),
            (v(1, 0), Pmf::uniform(10)),
        ]
        .into_iter()
        .collect();
        let s = AdpllSolver::new();
        assert_eq!(marginal_utility(&s, &cond, &e, &d).unwrap(), 0.0);
    }

    #[test]
    fn utility_never_exceeds_entropy() {
        let x = v(0, 0);
        let y = v(1, 0);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(x, 3), Expr::gt(y, 6)],
            vec![Expr::gt(x, 0)],
        ]);
        let d: VarDists = [(x, Pmf::uniform(8)), (y, Pmf::uniform(8))]
            .into_iter()
            .collect();
        let s = AdpllSolver::new();
        let p = s.probability(&cond, &d).unwrap();
        let h = object_entropy(p);
        for e in cond.exprs() {
            let g = marginal_utility(&s, &cond, e, &d).unwrap();
            assert!(g <= h + 1e-9, "G={g} exceeds H={h}");
            assert!(g >= 0.0);
        }
    }
}
