//! Monte-Carlo probability estimation.
//!
//! Stands in for the generalized weighted ApproxCount the paper evaluates
//! (and finds inferior to ADPLL): sample each variable from its
//! distribution, evaluate the condition, and average.

use crate::dists::VarDists;
use crate::{Solver, SolverError};
use bc_ctable::Condition;
use bc_data::{Value, VarId};
use rand::SeedableRng;

/// Sampling estimator of `Pr(φ)`.
#[derive(Clone, Debug)]
pub struct MonteCarloSolver {
    /// Number of sampled assignments.
    pub samples: u32,
    /// RNG seed (each call re-seeds, keeping the estimator deterministic).
    pub seed: u64,
}

impl Default for MonteCarloSolver {
    fn default() -> Self {
        MonteCarloSolver {
            samples: 10_000,
            seed: 0x5eed,
        }
    }
}

impl MonteCarloSolver {
    /// An estimator with explicit sample count and seed.
    pub fn new(samples: u32, seed: u64) -> MonteCarloSolver {
        MonteCarloSolver { samples, seed }
    }
}

impl Solver for MonteCarloSolver {
    fn probability(&self, cond: &Condition, dists: &VarDists) -> Result<f64, SolverError> {
        match cond {
            Condition::True => return Ok(1.0),
            Condition::False => return Ok(0.0),
            Condition::Cnf(_) => {}
        }
        let vars: Vec<VarId> = cond.vars().into_iter().collect();
        let pmfs = vars
            .iter()
            .map(|&v| dists.pmf(v).cloned())
            .collect::<Result<Vec<_>, _>>()?;

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut hits = 0u64;
        let mut assignment: Vec<Value> = vec![0; vars.len()];
        for _ in 0..self.samples {
            for (slot, pmf) in assignment.iter_mut().zip(&pmfs) {
                *slot = pmf.sample(&mut rng);
            }
            let lookup = |q: VarId| {
                let i = vars.binary_search(&q).expect("all vars collected");
                assignment[i]
            };
            if cond.eval(lookup) {
                hits += 1;
            }
        }
        Ok(hits as f64 / self.samples as f64)
    }

    fn name(&self) -> &'static str {
        "MonteCarlo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveSolver;
    use bc_bayes::Pmf;
    use bc_ctable::Expr;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn converges_to_the_exact_answer() {
        let cond = Condition::from_clauses(vec![
            vec![Expr::gt(v(0, 0), 2), Expr::gt(v(0, 1), 3)],
            vec![Expr::var_gt(v(0, 0), v(1, 0)), Expr::gt(v(0, 1), 2)],
        ]);
        let d: VarDists = [
            (v(0, 0), Pmf::uniform(10)),
            (v(0, 1), Pmf::uniform(8)),
            (v(1, 0), Pmf::uniform(10)),
        ]
        .into_iter()
        .collect();
        let exact = NaiveSolver::new().probability(&cond, &d).unwrap();
        let est = MonteCarloSolver::new(50_000, 1)
            .probability(&cond, &d)
            .unwrap();
        assert!((exact - est).abs() < 0.01, "{exact} vs {est}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cond = Condition::from_clauses(vec![vec![Expr::lt(v(0, 0), 3)]]);
        let d: VarDists = [(v(0, 0), Pmf::uniform(10))].into_iter().collect();
        let s = MonteCarloSolver::new(1000, 42);
        let a = s.probability(&cond, &d).unwrap();
        let b = s.probability(&cond, &d).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_conditions_short_circuit() {
        let s = MonteCarloSolver::default();
        let d = VarDists::default();
        assert_eq!(s.probability(&Condition::True, &d).unwrap(), 1.0);
        assert_eq!(s.probability(&Condition::False, &d).unwrap(), 0.0);
    }
}
