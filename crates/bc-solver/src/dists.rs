//! Per-variable value distributions and expression probabilities.

use crate::SolverError;
use bc_bayes::Pmf;
use bc_ctable::{CmpOp, Expr, Operand};
use bc_data::VarId;
use std::collections::BTreeMap;

/// The value distributions of every missing-value variable, as produced by
/// the Bayesian-network preprocessing step (and later truncated by crowd
/// answers).
///
/// Distinct variables are treated as independent — the modeling assumption
/// the paper's ADPLL weighting (`prob · p(v_a)`) encodes.
#[derive(Clone, Debug, Default)]
pub struct VarDists {
    map: BTreeMap<VarId, Pmf>,
}

impl VarDists {
    /// Wraps a variable-to-distribution map.
    pub fn new(map: BTreeMap<VarId, Pmf>) -> VarDists {
        VarDists { map }
    }

    /// The distribution of `v`.
    pub fn pmf(&self, v: VarId) -> Result<&Pmf, SolverError> {
        self.map.get(&v).ok_or(SolverError::MissingDistribution(v))
    }

    /// Inserts or replaces a distribution.
    pub fn insert(&mut self, v: VarId, pmf: Pmf) {
        self.map.insert(v, pmf);
    }

    /// Removes a distribution (e.g. once the variable's value is pinned and
    /// substituted away).
    pub fn remove(&mut self, v: VarId) -> Option<Pmf> {
        self.map.remove(&v)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(variable, pmf)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Pmf)> {
        self.map.iter()
    }

    /// `Pr(e)`: the probability of a single expression under variable
    /// independence.
    pub fn expr_prob(&self, e: &Expr) -> Result<f64, SolverError> {
        let l = self.pmf(e.var())?;
        match e.rhs() {
            Operand::Const(c) => Ok(match e.op() {
                CmpOp::Lt => l.pr_lt(c),
                CmpOp::Le => l.pr_le(c),
                CmpOp::Gt => l.pr_gt(c),
                CmpOp::Ge => l.pr_ge(c),
                CmpOp::Eq => l.p(c),
                CmpOp::Ne => 1.0 - l.p(c),
            }),
            Operand::Var(rv) => {
                let r = self.pmf(rv)?;
                let mut total = 0.0;
                for lv in l.support() {
                    let pl = l.p(lv);
                    for rv_val in r.support() {
                        if e.op().eval(lv, rv_val) {
                            total += pl * r.p(rv_val);
                        }
                    }
                }
                Ok(total.clamp(0.0, 1.0))
            }
        }
    }
}

impl FromIterator<(VarId, Pmf)> for VarDists {
    fn from_iter<T: IntoIterator<Item = (VarId, Pmf)>>(iter: T) -> Self {
        VarDists {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    fn dists() -> VarDists {
        [
            (v(0, 0), Pmf::uniform(10)),
            (v(1, 0), Pmf::from_weights(vec![0.5, 0.5])),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn const_expression_probabilities() {
        let d = dists();
        assert!((d.expr_prob(&Expr::lt(v(0, 0), 2)).unwrap() - 0.2).abs() < 1e-12);
        assert!((d.expr_prob(&Expr::gt(v(0, 0), 2)).unwrap() - 0.7).abs() < 1e-12);
        let eq = Expr::new(v(0, 0), CmpOp::Eq, Operand::Const(3));
        assert!((d.expr_prob(&eq).unwrap() - 0.1).abs() < 1e-12);
        assert!((d.expr_prob(&eq.negated()).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn var_var_probability_by_double_sum() {
        let mut d = dists();
        d.insert(v(2, 0), Pmf::uniform(4));
        d.insert(v(3, 0), Pmf::uniform(4));
        // P(X > Y) for iid uniform over 4 values = (16 - 4) / 2 / 16 = 0.375.
        let e = Expr::var_gt(v(2, 0), v(3, 0));
        assert!((d.expr_prob(&e).unwrap() - 0.375).abs() < 1e-12);
        // Complement includes ties: P(X <= Y) = 0.625.
        assert!((d.expr_prob(&e.negated()).unwrap() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn missing_distribution_is_an_error() {
        let d = dists();
        let e = Expr::lt(v(9, 9), 1);
        assert_eq!(
            d.expr_prob(&e),
            Err(SolverError::MissingDistribution(v(9, 9)))
        );
    }

    #[test]
    fn probability_complement_identity() {
        let d = dists();
        for c in 0..11 {
            let e = Expr::lt(v(0, 0), c);
            let p = d.expr_prob(&e).unwrap();
            let q = d.expr_prob(&e.negated()).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }
}
