//! Structure and parameter learning.
//!
//! The paper trains its Bayesian network with Banjo (a greedy/annealed
//! structure searcher) and Infer.Net (parameter estimation). We implement
//! the same roles: greedy hill-climbing over single-edge moves maximizing
//! the BIC score, and Laplace-smoothed maximum-likelihood CPTs.

use crate::cpt::Cpt;
use crate::graph::Dag;
use crate::pmf::Pmf;
use crate::BayesianNetwork;
use std::collections::HashMap;

/// Knobs for structure learning.
#[derive(Clone, Debug)]
pub struct LearnConfig {
    /// Maximum number of parents per node (keeps CPTs and elimination
    /// tractable; the paper's networks are similarly sparse).
    pub max_parents: usize,
    /// Laplace smoothing pseudo-count added to every CPT cell.
    pub laplace: f64,
    /// Cap on rows used for scoring (rows beyond this are ignored during the
    /// structure search only; parameters still use all rows).
    pub max_rows_for_scoring: usize,
    /// Hard cap on hill-climbing passes.
    pub max_iterations: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            max_parents: 2,
            laplace: 1.0,
            max_rows_for_scoring: 20_000,
            max_iterations: 200,
        }
    }
}

/// BIC score of the family `(node | parents)` on complete rows.
///
/// `Σ_config Σ_v n(config, v) ln( n(config, v) / n(config) )
///  − (ln N / 2) · (card − 1) · Π parent_cards`
pub(crate) fn family_bic(
    rows: &[Vec<u16>],
    cards: &[usize],
    node: usize,
    parents: &[usize],
) -> f64 {
    let n = rows.len();
    if n == 0 {
        return 0.0;
    }
    let card = cards[node];
    let n_configs: usize = parents.iter().map(|&p| cards[p]).product::<usize>().max(1);
    let mut counts = vec![0u32; n_configs * card];
    for row in rows {
        let mut cfg = 0usize;
        for &p in parents {
            cfg = cfg * cards[p] + row[p] as usize;
        }
        counts[cfg * card + row[node] as usize] += 1;
    }
    let mut ll = 0.0;
    for cfg in 0..n_configs {
        let slice = &counts[cfg * card..(cfg + 1) * card];
        let total: u32 = slice.iter().sum();
        if total == 0 {
            continue;
        }
        let total_f = total as f64;
        for &c in slice {
            if c > 0 {
                let c = c as f64;
                ll += c * (c / total_f).ln();
            }
        }
    }
    let penalty = 0.5 * (n as f64).ln() * ((card - 1) * n_configs) as f64;
    ll - penalty
}

/// Greedy hill-climbing structure search: repeatedly applies the single
/// edge addition, deletion, or reversal with the best BIC improvement until
/// no move helps.
pub fn hill_climb(rows: &[Vec<u16>], cards: &[usize], config: &LearnConfig) -> Dag {
    hill_climb_with_iters(rows, cards, config).0
}

/// [`hill_climb`] plus the number of improving moves applied — the
/// structure-search effort counter the profiler reports.
pub fn hill_climb_with_iters(
    rows: &[Vec<u16>],
    cards: &[usize],
    config: &LearnConfig,
) -> (Dag, usize) {
    let d = cards.len();
    let rows = &rows[..rows.len().min(config.max_rows_for_scoring)];
    let mut dag = Dag::empty(d);
    let mut iters = 0;
    if rows.is_empty() || d < 2 {
        return (dag, iters);
    }

    let mut score_cache: HashMap<(usize, Vec<usize>), f64> = HashMap::new();
    let mut family_score = |node: usize, parents: &[usize]| -> f64 {
        let key = (node, parents.to_vec());
        if let Some(&s) = score_cache.get(&key) {
            return s;
        }
        let s = family_bic(rows, cards, node, parents);
        score_cache.insert(key, s);
        s
    };

    let mut node_score: Vec<f64> = (0..d).map(|v| family_score(v, dag.parents(v))).collect();

    for _ in 0..config.max_iterations {
        // (delta, kind, parent, child): kind 0 = add, 1 = delete, 2 = reverse.
        let mut best: Option<(f64, u8, usize, usize)> = None;
        let consider = |cand: (f64, u8, usize, usize),
                        best: &mut Option<(f64, u8, usize, usize)>| {
            if cand.0 > 1e-9 && best.is_none_or(|b| cand.0 > b.0) {
                *best = Some(cand);
            }
        };

        for p in 0..d {
            for c in 0..d {
                if p == c {
                    continue;
                }
                if !dag.has_edge(p, c) {
                    // Try add p -> c.
                    if dag.parents(c).len() < config.max_parents && !dag.reaches(c, p) {
                        let mut parents = dag.parents(c).to_vec();
                        let pos = parents.binary_search(&p).unwrap_err();
                        parents.insert(pos, p);
                        let delta = family_score(c, &parents) - node_score[c];
                        consider((delta, 0, p, c), &mut best);
                    }
                } else {
                    // Try delete p -> c.
                    let parents: Vec<usize> =
                        dag.parents(c).iter().copied().filter(|&x| x != p).collect();
                    let delta_del = family_score(c, &parents) - node_score[c];
                    consider((delta_del, 1, p, c), &mut best);

                    // Try reverse p -> c (becomes c -> p).
                    if dag.parents(p).len() < config.max_parents {
                        let mut trial = dag.clone();
                        trial.remove_edge(p, c);
                        if trial.try_add_edge(c, p) {
                            let mut new_p_parents = dag.parents(p).to_vec();
                            let pos = new_p_parents.binary_search(&c).unwrap_err();
                            new_p_parents.insert(pos, c);
                            let delta = (family_score(c, &parents) - node_score[c])
                                + (family_score(p, &new_p_parents) - node_score[p]);
                            consider((delta, 2, p, c), &mut best);
                        }
                    }
                }
            }
        }

        let Some((_, kind, p, c)) = best else { break };
        iters += 1;
        match kind {
            0 => {
                let added = dag.try_add_edge(p, c);
                debug_assert!(added);
            }
            1 => {
                dag.remove_edge(p, c);
            }
            _ => {
                dag.remove_edge(p, c);
                let added = dag.try_add_edge(c, p);
                debug_assert!(added);
            }
        }
        node_score[c] = family_score(c, dag.parents(c));
        node_score[p] = family_score(p, dag.parents(p));
    }
    (dag, iters)
}

/// Fits Laplace-smoothed maximum-likelihood CPTs for a fixed structure.
pub fn fit_parameters(dag: &Dag, rows: &[Vec<u16>], cards: &[usize], laplace: f64) -> Vec<Cpt> {
    let d = cards.len();
    (0..d)
        .map(|node| {
            let parents = dag.parents(node).to_vec();
            let parent_cards: Vec<usize> = parents.iter().map(|&p| cards[p]).collect();
            let n_configs: usize = parent_cards.iter().product::<usize>().max(1);
            let card = cards[node];
            let mut counts = vec![laplace.max(1e-9); n_configs * card];
            for row in rows {
                let mut cfg = 0usize;
                for &p in &parents {
                    cfg = cfg * cards[p] + row[p] as usize;
                }
                counts[cfg * card + row[node] as usize] += 1.0;
            }
            let table = (0..n_configs)
                .map(|cfg| Pmf::from_weights(counts[cfg * card..(cfg + 1) * card].to_vec()))
                .collect();
            Cpt::new(node, parents, parent_cards, table)
        })
        .collect()
}

/// BIC score of one family, exposed for the annealed structure search.
pub fn family_bic_score(rows: &[Vec<u16>], cards: &[usize], node: usize, parents: &[usize]) -> f64 {
    family_bic(rows, cards, node, parents)
}

/// End-to-end learning: structure (hill climbing) plus parameters (smoothed
/// MLE). With no complete rows at all, returns the empty-graph network with
/// uniform CPTs — the paper's "no prior knowledge" default.
pub fn learn_network(rows: &[Vec<u16>], cards: &[usize], config: &LearnConfig) -> BayesianNetwork {
    let dag = hill_climb(rows, cards, config);
    let cpts = fit_parameters(&dag, rows, cards, config.laplace);
    BayesianNetwork::new(dag, cpts, cards.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Rows where X1 is a noisy copy of X0 and X2 is independent.
    fn dependent_rows(n: usize, seed: u64) -> Vec<Vec<u16>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0: u16 = rng.gen_range(0..4);
                let x1 = if rng.gen_bool(0.9) {
                    x0
                } else {
                    rng.gen_range(0..4)
                };
                let x2: u16 = rng.gen_range(0..4);
                vec![x0, x1, x2]
            })
            .collect()
    }

    #[test]
    fn hill_climb_finds_the_dependency() {
        let rows = dependent_rows(2000, 1);
        let dag = hill_climb(&rows, &[4, 4, 4], &LearnConfig::default());
        assert!(
            dag.has_edge(0, 1) || dag.has_edge(1, 0),
            "expected an edge between the correlated pair, got {:?}",
            dag.edges()
        );
        assert!(!dag.has_edge(0, 2) && !dag.has_edge(2, 0));
        assert!(!dag.has_edge(1, 2) && !dag.has_edge(2, 1));
    }

    #[test]
    fn independent_data_learns_empty_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rows: Vec<Vec<u16>> = (0..1500)
            .map(|_| (0..3).map(|_| rng.gen_range(0..4u16)).collect())
            .collect();
        let dag = hill_climb(&rows, &[4, 4, 4], &LearnConfig::default());
        assert_eq!(dag.n_edges(), 0, "got {:?}", dag.edges());
    }

    #[test]
    fn fitted_parameters_recover_conditionals() {
        let rows = dependent_rows(5000, 2);
        let dag = Dag::from_edges(3, &[(0, 1)]);
        let cpts = fit_parameters(&dag, &rows, &[4, 4, 4], 1.0);
        // P(X1 = v | X0 = v) should be around 0.9 + 0.1/4 = 0.925.
        let pmf = cpts[1].pmf(&[2]);
        assert!((pmf.p(2) - 0.925).abs() < 0.05, "got {}", pmf.p(2));
    }

    #[test]
    fn empty_rows_fall_back_to_uniform() {
        let bn = learn_network(&[], &[3, 3], &LearnConfig::default());
        assert_eq!(bn.dag().n_edges(), 0);
        assert!((bn.cpts()[0].pmf(&[]).p(0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_parents_is_respected() {
        // Make every pair strongly dependent; with max_parents = 1 no node
        // may have two parents.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rows: Vec<Vec<u16>> = (0..1000)
            .map(|_| {
                let x: u16 = rng.gen_range(0..4);
                vec![x, x, x, x]
            })
            .collect();
        let cfg = LearnConfig {
            max_parents: 1,
            ..LearnConfig::default()
        };
        let dag = hill_climb(&rows, &[4, 4, 4, 4], &cfg);
        for v in 0..4 {
            assert!(dag.parents(v).len() <= 1);
        }
    }
}
