//! Exact joint distributions over small sets of independent variables.
//!
//! The possible-worlds oracle (`bc-oracle`) needs to walk every completion
//! of a small incomplete dataset together with its exact probability. Under
//! the modeling assumption the whole pipeline shares — distinct missing
//! cells are independent once the Bayesian network has produced their
//! per-cell [`Pmf`]s — the joint over `k` variables is the product measure
//! over their supports. This module materializes that product as a
//! deterministic odometer iterator with an explicit state-space guard, so
//! callers cannot accidentally enumerate an astronomically large joint.

use crate::pmf::Pmf;
use bc_data::VarId;
use std::fmt;

/// Error raised when the joint would be too large to enumerate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JointTooLarge {
    /// Assignments the enumeration would need.
    pub states: u128,
    /// The configured cap.
    pub limit: u128,
}

impl fmt::Display for JointTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joint enumeration needs {} states (limit {})",
            self.states, self.limit
        )
    }
}

impl std::error::Error for JointTooLarge {}

/// The exact joint over a set of independent variables, enumerated as
/// `(assignment, probability)` pairs in lexicographic support order.
///
/// Assignments pair each variable (in the order given at construction) with
/// one value from its pmf's support; the probability is the product of the
/// per-variable masses, so the weights of all yielded assignments sum to 1.
///
/// ```
/// use bc_bayes::{joint::JointAssignments, Pmf};
/// use bc_data::VarId;
///
/// let vars = vec![
///     (VarId::new(0, 0), Pmf::from_weights(vec![1.0, 3.0])),
///     (VarId::new(1, 0), Pmf::uniform(2)),
/// ];
/// let joint = JointAssignments::new(vars, 1_000).unwrap();
/// assert_eq!(joint.n_states(), 4);
/// let total: f64 = joint.map(|(_, w)| w).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct JointAssignments {
    vars: Vec<VarId>,
    supports: Vec<Vec<u16>>,
    masses: Vec<Vec<f64>>,
    idxs: Vec<usize>,
    n_states: u128,
    done: bool,
}

impl JointAssignments {
    /// Builds the joint over `vars`, enumerating each variable's support
    /// only. Fails with [`JointTooLarge`] when the product of support sizes
    /// exceeds `max_states`. An empty variable set yields exactly one empty
    /// assignment of probability 1 (the single fully-observed world).
    pub fn new(
        vars: impl IntoIterator<Item = (VarId, Pmf)>,
        max_states: u128,
    ) -> Result<JointAssignments, JointTooLarge> {
        let mut ids = Vec::new();
        let mut supports: Vec<Vec<u16>> = Vec::new();
        let mut masses: Vec<Vec<f64>> = Vec::new();
        for (v, pmf) in vars {
            let support: Vec<u16> = pmf.support().collect();
            masses.push(support.iter().map(|&x| pmf.p(x)).collect());
            supports.push(support);
            ids.push(v);
        }
        let n_states = supports
            .iter()
            .fold(1u128, |acc, s| acc.saturating_mul(s.len() as u128));
        if n_states > max_states {
            return Err(JointTooLarge {
                states: n_states,
                limit: max_states,
            });
        }
        Ok(JointAssignments {
            idxs: vec![0; ids.len()],
            vars: ids,
            supports,
            masses,
            n_states,
            done: false,
        })
    }

    /// Number of assignments the iterator will yield.
    pub fn n_states(&self) -> u128 {
        self.n_states
    }

    /// The variables, in assignment order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }
}

impl Iterator for JointAssignments {
    type Item = (Vec<(VarId, u16)>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut assignment = Vec::with_capacity(self.vars.len());
        let mut weight = 1.0;
        for (slot, &i) in self.idxs.iter().enumerate() {
            assignment.push((self.vars[slot], self.supports[slot][i]));
            weight *= self.masses[slot][i];
        }
        // Odometer step: rightmost slot advances first.
        self.done = true;
        for slot in (0..self.idxs.len()).rev() {
            self.idxs[slot] += 1;
            if self.idxs[slot] < self.supports[slot].len() {
                self.done = false;
                break;
            }
            self.idxs[slot] = 0;
        }
        Some((assignment, weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(o: u32) -> VarId {
        VarId::new(o, 0)
    }

    #[test]
    fn empty_joint_is_the_single_world() {
        let mut j = JointAssignments::new(Vec::new(), 10).unwrap();
        assert_eq!(j.n_states(), 1);
        let (a, w) = j.next().unwrap();
        assert!(a.is_empty());
        assert_eq!(w, 1.0);
        assert!(j.next().is_none());
    }

    #[test]
    fn weights_form_the_product_measure() {
        let j = JointAssignments::new(
            vec![
                (v(0), Pmf::from_weights(vec![1.0, 1.0, 2.0])),
                (v(1), Pmf::from_weights(vec![3.0, 1.0])),
            ],
            100,
        )
        .unwrap();
        assert_eq!(j.n_states(), 6);
        let all: Vec<(Vec<(VarId, u16)>, f64)> = j.collect();
        assert_eq!(all.len(), 6);
        let total: f64 = all.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // First assignment is the lexicographically smallest support combo.
        assert_eq!(all[0].0, vec![(v(0), 0), (v(1), 0)]);
        assert!((all[0].1 - 0.25 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_values_are_skipped() {
        let j = JointAssignments::new(
            vec![(v(0), Pmf::from_weights(vec![0.0, 1.0, 0.0, 1.0]))],
            100,
        )
        .unwrap();
        let values: Vec<u16> = j.map(|(a, _)| a[0].1).collect();
        assert_eq!(values, vec![1, 3]);
    }

    #[test]
    fn state_cap_is_enforced() {
        let err = JointAssignments::new(vec![(v(0), Pmf::uniform(4)), (v(1), Pmf::uniform(4))], 15)
            .unwrap_err();
        assert_eq!(err.states, 16);
        assert_eq!(err.limit, 15);
    }
}
