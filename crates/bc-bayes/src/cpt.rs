//! Conditional probability tables.

use crate::pmf::Pmf;

/// The conditional distribution `P(node | parents)`: one [`Pmf`] per parent
/// configuration, indexed mixed-radix with the *first* parent most
/// significant.
#[derive(Clone, Debug, PartialEq)]
pub struct Cpt {
    node: usize,
    parents: Vec<usize>,
    parent_cards: Vec<usize>,
    table: Vec<Pmf>,
}

impl Cpt {
    /// Builds a CPT. `table` must have one pmf per parent configuration
    /// (`Π parent_cards`, or 1 when there are no parents), all with the same
    /// cardinality.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn new(node: usize, parents: Vec<usize>, parent_cards: Vec<usize>, table: Vec<Pmf>) -> Cpt {
        assert_eq!(parents.len(), parent_cards.len());
        let configs: usize = parent_cards.iter().product();
        assert_eq!(
            table.len(),
            configs.max(1),
            "one pmf per parent configuration"
        );
        let card = table[0].card();
        assert!(
            table.iter().all(|p| p.card() == card),
            "inconsistent pmf cardinality"
        );
        Cpt {
            node,
            parents,
            parent_cards,
            table,
        }
    }

    /// The node this CPT belongs to.
    #[inline]
    pub fn node(&self) -> usize {
        self.node
    }

    /// The parent node indices (sorted, matching the DAG).
    #[inline]
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// Cardinality of each parent's domain.
    #[inline]
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Cardinality of the node's own domain.
    #[inline]
    pub fn card(&self) -> usize {
        self.table[0].card()
    }

    /// Number of parent configurations.
    #[inline]
    pub fn n_configs(&self) -> usize {
        self.table.len()
    }

    /// Mixed-radix index of a parent value assignment.
    pub fn config_index(&self, parent_vals: &[u16]) -> usize {
        assert_eq!(parent_vals.len(), self.parents.len());
        let mut idx = 0usize;
        for (&v, &card) in parent_vals.iter().zip(&self.parent_cards) {
            debug_assert!((v as usize) < card);
            idx = idx * card + v as usize;
        }
        idx
    }

    /// The conditional pmf for a parent value assignment (values in the same
    /// order as [`Cpt::parents`]).
    pub fn pmf(&self, parent_vals: &[u16]) -> &Pmf {
        &self.table[self.config_index(parent_vals)]
    }

    /// The pmf at a raw configuration index.
    #[inline]
    pub fn pmf_at(&self, config: usize) -> &Pmf {
        &self.table[config]
    }

    /// Decodes a configuration index back into parent values.
    pub fn decode_config(&self, mut config: usize) -> Vec<u16> {
        let mut vals = vec![0u16; self.parents.len()];
        for i in (0..self.parents.len()).rev() {
            let card = self.parent_cards[i];
            vals[i] = (config % card) as u16;
            config /= card;
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpt() -> Cpt {
        // node 2 with parents {0 (card 2), 1 (card 3)}.
        let table = (0..6)
            .map(|i| Pmf::from_weights(vec![1.0 + i as f64, 1.0]))
            .collect();
        Cpt::new(2, vec![0, 1], vec![2, 3], table)
    }

    #[test]
    fn config_indexing_roundtrips() {
        let c = cpt();
        for cfg in 0..c.n_configs() {
            let vals = c.decode_config(cfg);
            assert_eq!(c.config_index(&vals), cfg);
        }
        assert_eq!(c.config_index(&[1, 2]), 5);
        assert_eq!(c.decode_config(5), vec![1, 2]);
    }

    #[test]
    fn lookup_selects_the_right_pmf() {
        let c = cpt();
        assert_eq!(c.pmf(&[1, 2]), c.pmf_at(5));
        assert!((c.pmf(&[0, 0]).p(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn root_cpt_has_single_config() {
        let c = Cpt::new(0, vec![], vec![], vec![Pmf::uniform(4)]);
        assert_eq!(c.n_configs(), 1);
        assert_eq!(c.pmf(&[]).card(), 4);
    }

    #[test]
    #[should_panic(expected = "one pmf per parent configuration")]
    fn shape_mismatch_panics() {
        let _ = Cpt::new(0, vec![1], vec![3], vec![Pmf::uniform(2)]);
    }
}
