#![warn(missing_docs)]
//! Bayesian-network substrate for BayesCrowd.
//!
//! The paper's preprocessing step trains a Bayesian network over the data
//! attributes (Banjo for structure, Infer.Net for parameters) and then uses
//! it to learn, for every missing cell `Var(o, a)`, a discrete probability
//! distribution conditioned on the *observed* attributes of object `o`.
//! This crate provides all of that from scratch:
//!
//! * [`Pmf`] — discrete distributions with the operations the solver needs
//!   (comparison probabilities, entropy, truncation by candidate-value mask),
//! * [`Dag`] / [`Cpt`] / [`BayesianNetwork`] — the network representation,
//! * [`learn`] — greedy hill-climbing structure search maximizing BIC plus
//!   Laplace-smoothed maximum-likelihood parameter fitting,
//! * [`em`] — expectation-maximization parameter refinement over the
//!   *incomplete* rows (listwise deletion starves at high missing rates),
//! * [`infer`] — exact inference by variable elimination,
//! * [`joint`] — the exact joint over independent per-cell pmfs on small
//!   domains (the possible-worlds oracle's weighting),
//! * [`discretize`] — equi-width/equi-depth binning of continuous columns
//!   (the paper's preprocessing for non-discrete attributes),
//! * [`model`] — the end-to-end step: dataset in, per-missing-cell
//!   conditional [`Pmf`]s out, and
//! * [`synthetic`] — a hand-built Adult-like 9-node network standing in for
//!   the UCI-Adult-derived network behind the paper's Synthetic dataset.

pub mod anneal;
pub mod cpt;
pub mod discretize;
pub mod em;
pub mod graph;
pub mod infer;
pub mod joint;
pub mod learn;
pub mod model;
pub mod pmf;
pub mod synthetic;

pub use cpt::Cpt;
pub use graph::Dag;
pub use model::{MissingValueModel, ModelConfig, ModelStats, StructureSearch};
pub use pmf::Pmf;

use bc_data::{DataError, Dataset};
use rand::Rng;

/// A Bayesian network over the attributes of a dataset: a DAG plus one CPT
/// per node. Node `i` corresponds to attribute `i`.
#[derive(Clone, Debug)]
pub struct BayesianNetwork {
    dag: Dag,
    cpts: Vec<Cpt>,
    cards: Vec<usize>,
}

impl BayesianNetwork {
    /// Assembles a network from a DAG and one CPT per node (in node order).
    ///
    /// # Panics
    ///
    /// Panics if the CPTs do not match the DAG's parent sets.
    pub fn new(dag: Dag, cpts: Vec<Cpt>, cards: Vec<usize>) -> Self {
        assert_eq!(dag.n_nodes(), cpts.len());
        assert_eq!(dag.n_nodes(), cards.len());
        for (i, cpt) in cpts.iter().enumerate() {
            assert_eq!(cpt.node(), i, "CPT {i} is for the wrong node");
            assert_eq!(
                cpt.parents(),
                dag.parents(i),
                "CPT {i} disagrees with the DAG's parents"
            );
        }
        BayesianNetwork { dag, cpts, cards }
    }

    /// The network structure.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The conditional probability tables, one per node.
    #[inline]
    pub fn cpts(&self) -> &[Cpt] {
        &self.cpts
    }

    /// Cardinality of each node's domain.
    #[inline]
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Number of nodes (attributes).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.cards.len()
    }

    /// Draws one complete row by ancestral sampling.
    pub fn sample_row(&self, rng: &mut impl Rng) -> Vec<u16> {
        let order = self.dag.topological_order();
        let mut row = vec![0u16; self.n_nodes()];
        for &node in &order {
            let parent_vals: Vec<u16> = self.dag.parents(node).iter().map(|&p| row[p]).collect();
            row[node] = self.cpts[node].pmf(&parent_vals).sample(rng);
        }
        row
    }

    /// Samples a complete [`Dataset`] of `n` rows (attribute names `a1..ad`).
    pub fn sample_dataset(
        &self,
        name: &str,
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<Dataset, DataError> {
        let domains = self
            .cards
            .iter()
            .enumerate()
            .map(|(i, &c)| bc_data::Domain::new(format!("a{}", i + 1), c as u16))
            .collect::<Result<Vec<_>, _>>()?;
        let rows = (0..n).map(|_| self.sample_row(rng)).collect();
        Dataset::from_complete_rows(name, domains, rows)
    }

    /// Exact posterior marginal `P(target | evidence)` by variable
    /// elimination. `evidence` maps node index to observed value.
    pub fn posterior(&self, target: usize, evidence: &[(usize, u16)]) -> Pmf {
        infer::posterior(self, target, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_dataset_has_right_shape() {
        let bn = synthetic::adult_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ds = bn.sample_dataset("syn", 100, &mut rng).unwrap();
        assert_eq!(ds.n_objects(), 100);
        assert_eq!(ds.n_attrs(), bn.n_nodes());
        assert!(ds.is_complete());
    }
}
