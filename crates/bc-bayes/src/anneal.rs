//! Simulated-annealing structure search.
//!
//! Banjo — the tool the paper uses for structure learning — offers both
//! greedy search and simulated annealing. [`crate::learn::hill_climb`] is
//! the greedy mode; this module is the annealed one: random single-edge
//! moves (add / delete / reverse) accepted by the Metropolis criterion on
//! the BIC delta, with geometric cooling, returning the best structure
//! visited. Annealing escapes the local optima greedy search gets stuck in
//! on equivalence-class ridges.

use crate::graph::Dag;
use crate::learn::{family_bic_score, LearnConfig};
use rand::Rng;
use rand::SeedableRng;

/// Annealing-schedule knobs.
#[derive(Clone, Debug)]
pub struct AnnealConfig {
    /// Shared learning limits (max parents, row caps, …).
    pub learn: LearnConfig,
    /// Starting temperature (in BIC units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per move.
    pub cooling: f64,
    /// Number of proposed moves.
    pub moves: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            learn: LearnConfig::default(),
            initial_temperature: 50.0,
            cooling: 0.995,
            moves: 2_000,
            seed: 0xba27,
        }
    }
}

/// Total BIC of a structure.
fn total_score(rows: &[Vec<u16>], cards: &[usize], dag: &Dag) -> f64 {
    (0..cards.len())
        .map(|v| family_bic_score(rows, cards, v, dag.parents(v)))
        .sum()
}

/// Runs simulated annealing and returns the best structure visited.
pub fn anneal(rows: &[Vec<u16>], cards: &[usize], config: &AnnealConfig) -> Dag {
    anneal_with_iters(rows, cards, config).0
}

/// [`anneal`] plus the number of accepted moves — the structure-search
/// effort counter the profiler reports.
pub fn anneal_with_iters(
    rows: &[Vec<u16>],
    cards: &[usize],
    config: &AnnealConfig,
) -> (Dag, usize) {
    let d = cards.len();
    let rows = &rows[..rows.len().min(config.learn.max_rows_for_scoring)];
    let mut dag = Dag::empty(d);
    let mut iters = 0;
    if rows.is_empty() || d < 2 {
        return (dag, iters);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut current = total_score(rows, cards, &dag);
    let mut best = dag.clone();
    let mut best_score = current;
    let mut temperature = config.initial_temperature.max(1e-9);

    for _ in 0..config.moves {
        // Propose a random move.
        let p = rng.gen_range(0..d);
        let c = rng.gen_range(0..d);
        if p == c {
            continue;
        }
        let mut trial = dag.clone();
        let kind = rng.gen_range(0..3u8);
        let applied = match kind {
            0 => trial.parents(c).len() < config.learn.max_parents && trial.try_add_edge(p, c),
            1 => trial.remove_edge(p, c),
            _ => {
                trial.has_edge(p, c) && {
                    trial.remove_edge(p, c);
                    trial.parents(p).len() < config.learn.max_parents && trial.try_add_edge(c, p)
                }
            }
        };
        if !applied {
            continue;
        }
        // Only the touched families change score.
        let old = family_bic_score(rows, cards, c, dag.parents(c))
            + family_bic_score(rows, cards, p, dag.parents(p));
        let new = family_bic_score(rows, cards, c, trial.parents(c))
            + family_bic_score(rows, cards, p, trial.parents(p));
        let delta = new - old;
        if delta >= 0.0 || rng.gen_bool((delta / temperature).exp().clamp(0.0, 1.0)) {
            dag = trial;
            iters += 1;
            current += delta;
            if current > best_score {
                best_score = current;
                best = dag.clone();
            }
        }
        temperature = (temperature * config.cooling).max(1e-9);
    }
    (best, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn dependent_rows(n: usize, seed: u64) -> Vec<Vec<u16>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0: u16 = rng.gen_range(0..4);
                let x1 = if rng.gen_bool(0.9) {
                    x0
                } else {
                    rng.gen_range(0..4)
                };
                let x2: u16 = rng.gen_range(0..4);
                vec![x0, x1, x2]
            })
            .collect()
    }

    #[test]
    fn annealing_finds_the_dependency() {
        let rows = dependent_rows(1500, 3);
        let dag = anneal(&rows, &[4, 4, 4], &AnnealConfig::default());
        assert!(
            dag.has_edge(0, 1) || dag.has_edge(1, 0),
            "expected the correlated edge, got {:?}",
            dag.edges()
        );
    }

    #[test]
    fn annealing_is_at_least_as_good_as_its_start() {
        let rows = dependent_rows(800, 5);
        let cards = [4usize, 4, 4];
        let dag = anneal(&rows, &cards, &AnnealConfig::default());
        let empty = Dag::empty(3);
        assert!(
            total_score(&rows, &cards, &dag) >= total_score(&rows, &cards, &empty),
            "annealing must not end below the empty graph"
        );
    }

    #[test]
    fn annealing_respects_max_parents() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rows: Vec<Vec<u16>> = (0..600)
            .map(|_| {
                let x: u16 = rng.gen_range(0..4);
                vec![x, x, x, x]
            })
            .collect();
        let config = AnnealConfig {
            learn: LearnConfig {
                max_parents: 1,
                ..LearnConfig::default()
            },
            ..Default::default()
        };
        let dag = anneal(&rows, &[4, 4, 4, 4], &config);
        for v in 0..4 {
            assert!(dag.parents(v).len() <= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let rows = dependent_rows(500, 7);
        let a = anneal(&rows, &[4, 4, 4], &AnnealConfig::default());
        let b = anneal(&rows, &[4, 4, 4], &AnnealConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let dag = anneal(&[], &[4, 4], &AnnealConfig::default());
        assert_eq!(dag.n_edges(), 0);
    }
}
