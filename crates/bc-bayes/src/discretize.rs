//! Discretization of continuous attributes.
//!
//! "Bayesian network is more suitable to discrete values. For continuous
//! values, we partition the whole domain into a series of value ranges
//! (using some space partitioning techniques), and treat each range as a
//! discrete value" — Section 3. This module provides that preprocessing
//! step: equi-width and equi-depth (quantile) binning of raw `f64` columns
//! into a discrete [`Dataset`].

use bc_data::{DataError, Dataset, Domain, Value};

/// How a continuous column is partitioned into ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Binning {
    /// Equal-width intervals between the observed min and max.
    EquiWidth,
    /// Equal-frequency intervals (quantiles) over the observed values.
    EquiDepth,
}

/// The fitted discretizer of one column: ascending bin upper edges
/// (exclusive, except the last which is inclusive).
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnBins {
    edges: Vec<f64>,
}

impl ColumnBins {
    /// Fits bins on the observed values of one column.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or no finite value is observed.
    pub fn fit(values: impl Iterator<Item = f64>, bins: u16, binning: Binning) -> ColumnBins {
        assert!(bins > 0, "need at least one bin");
        let mut observed: Vec<f64> = values.filter(|v| v.is_finite()).collect();
        assert!(!observed.is_empty(), "cannot fit bins on an empty column");
        observed.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let edges = match binning {
            Binning::EquiWidth => {
                let lo = observed[0];
                let hi = *observed.last().expect("non-empty");
                let width = (hi - lo) / bins as f64;
                (1..=bins)
                    .map(|i| {
                        if width == 0.0 {
                            hi
                        } else {
                            lo + width * i as f64
                        }
                    })
                    .collect()
            }
            Binning::EquiDepth => (1..=bins)
                .map(|i| {
                    let idx = (observed.len() * i as usize / bins as usize)
                        .min(observed.len())
                        .saturating_sub(1);
                    observed[idx]
                })
                .collect(),
        };
        ColumnBins { edges }
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.edges.len()
    }

    /// Maps a raw value to its bin index (clamping outliers into the first
    /// or last bin).
    pub fn bin(&self, v: f64) -> Value {
        for (i, &edge) in self.edges.iter().enumerate() {
            if v < edge {
                return i as Value;
            }
        }
        (self.edges.len() - 1) as Value
    }
}

/// Discretizes a table of raw continuous rows (`None` = missing) into a
/// [`Dataset`] with `bins` values per attribute. Larger raw values map to
/// larger discrete values, preserving dominance.
pub fn discretize_rows(
    name: &str,
    raw: &[Vec<Option<f64>>],
    bins: u16,
    binning: Binning,
) -> Result<Dataset, DataError> {
    let d = raw.first().map(|r| r.len()).unwrap_or(0);
    let mut fitted = Vec::with_capacity(d);
    for a in 0..d {
        let col = raw.iter().filter_map(|r| r[a]);
        fitted.push(ColumnBins::fit(col, bins, binning));
    }
    let domains: Vec<Domain> = (0..d)
        .map(|a| Domain::new(format!("a{}", a + 1), bins))
        .collect::<Result<_, _>>()?;
    let rows: Vec<Vec<Option<Value>>> = raw
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(a, c)| c.map(|v| fitted[a].bin(v)))
                .collect()
        })
        .collect();
    Dataset::from_rows(name, domains, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equiwidth_bins_are_uniform() {
        let b = ColumnBins::fit([0.0, 10.0].into_iter(), 5, Binning::EquiWidth);
        assert_eq!(b.n_bins(), 5);
        assert_eq!(b.bin(0.0), 0);
        assert_eq!(b.bin(1.9), 0);
        assert_eq!(b.bin(2.1), 1);
        assert_eq!(b.bin(9.9), 4);
        assert_eq!(b.bin(10.0), 4);
        // Outliers clamp.
        assert_eq!(b.bin(-5.0), 0);
        assert_eq!(b.bin(99.0), 4);
    }

    #[test]
    fn equidepth_balances_mass() {
        // Heavily skewed data: equi-depth should still split the bulk.
        let vals: Vec<f64> = (0..100).map(|i| (i as f64).powi(2)).collect();
        let b = ColumnBins::fit(vals.iter().copied(), 4, Binning::EquiDepth);
        let counts = vals.iter().fold([0usize; 4], |mut acc, &v| {
            acc[b.bin(v) as usize] += 1;
            acc
        });
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bins: {counts:?}");
        }
    }

    #[test]
    fn constant_column_is_handled() {
        let b = ColumnBins::fit([3.0, 3.0, 3.0].into_iter(), 4, Binning::EquiWidth);
        assert_eq!(b.bin(3.0), 3.min(b.n_bins() as u16 - 1));
    }

    #[test]
    fn discretization_preserves_dominance_order() {
        let raw = vec![
            vec![Some(0.9), Some(0.1)],
            vec![Some(0.5), Some(0.5)],
            vec![Some(0.1), None],
        ];
        let ds = discretize_rows("c", &raw, 4, Binning::EquiWidth).unwrap();
        assert_eq!(ds.n_attrs(), 2);
        let a = ds.get(bc_data::ObjectId(0), bc_data::AttrId(0)).unwrap();
        let b = ds.get(bc_data::ObjectId(1), bc_data::AttrId(0)).unwrap();
        let c = ds.get(bc_data::ObjectId(2), bc_data::AttrId(0)).unwrap();
        assert!(a > b && b > c);
        assert_eq!(ds.get(bc_data::ObjectId(2), bc_data::AttrId(1)), None);
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn all_missing_column_panics() {
        let _ = ColumnBins::fit(std::iter::empty(), 4, Binning::EquiWidth);
    }
}
