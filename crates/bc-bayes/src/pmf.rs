//! Discrete probability mass functions over an attribute domain `0..card`.

use rand::Rng;

/// A discrete distribution over values `0..card` (index = value).
///
/// Probabilities always sum to 1 (within floating-point tolerance); the
/// constructors normalize. A value outside the support simply has
/// probability 0.
///
/// ```
/// use bc_bayes::Pmf;
///
/// let pmf = Pmf::from_weights(vec![1.0, 2.0, 1.0]);
/// assert!((pmf.p(1) - 0.5).abs() < 1e-12);
/// assert!((pmf.pr_lt(2) - 0.75).abs() < 1e-12);
/// // Crowd answer "value > 0" truncates and renormalizes:
/// let cut = pmf.conditioned(0b110).unwrap();
/// assert_eq!(cut.p(0), 0.0);
/// assert!((cut.p(1) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Pmf {
    probs: Vec<f64>,
}

impl Pmf {
    /// Normalizing constructor.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// entry, or sums to zero.
    pub fn from_weights(weights: Vec<f64>) -> Pmf {
        assert!(!weights.is_empty(), "a pmf needs at least one value");
        let mut total = 0.0;
        for &w in &weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "pmf weights must be finite and non-negative"
            );
            total += w;
        }
        assert!(total > 0.0, "pmf weights must not all be zero");
        Pmf {
            probs: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Exact constructor: takes the probabilities verbatim, without
    /// renormalizing, so a serialized pmf restores bit-for-bit. The entries
    /// must already be (numerically) a distribution.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, contains a negative or non-finite entry,
    /// or sums to something visibly different from one.
    pub fn from_probs(probs: Vec<f64>) -> Pmf {
        assert!(!probs.is_empty(), "a pmf needs at least one value");
        let mut total = 0.0;
        for &p in &probs {
            assert!(
                p.is_finite() && p >= 0.0,
                "pmf probabilities must be finite and non-negative"
            );
            total += p;
        }
        assert!(
            (total - 1.0).abs() < 1e-6,
            "pmf probabilities must sum to one (got {total})"
        );
        Pmf { probs }
    }

    /// The uniform distribution over `0..card` — the "no prior knowledge"
    /// default the paper assumes for missing values before BN training.
    pub fn uniform(card: usize) -> Pmf {
        assert!(card > 0);
        Pmf {
            probs: vec![1.0 / card as f64; card],
        }
    }

    /// A point mass at `value`.
    pub fn delta(card: usize, value: u16) -> Pmf {
        assert!((value as usize) < card);
        let mut probs = vec![0.0; card];
        probs[value as usize] = 1.0;
        Pmf { probs }
    }

    /// Domain cardinality.
    #[inline]
    pub fn card(&self) -> usize {
        self.probs.len()
    }

    /// `P(X = v)`; zero outside the domain.
    #[inline]
    pub fn p(&self, v: u16) -> f64 {
        self.probs.get(v as usize).copied().unwrap_or(0.0)
    }

    /// The raw probability vector.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `P(X < c)`. `c` may exceed the domain (then the answer is 1).
    pub fn pr_lt(&self, c: u16) -> f64 {
        self.probs.iter().take(c as usize).sum()
    }

    /// `P(X <= c)`.
    pub fn pr_le(&self, c: u16) -> f64 {
        self.probs.iter().take(c as usize + 1).sum()
    }

    /// `P(X > c)`.
    pub fn pr_gt(&self, c: u16) -> f64 {
        1.0 - self.pr_le(c)
    }

    /// `P(X >= c)`.
    pub fn pr_ge(&self, c: u16) -> f64 {
        1.0 - self.pr_lt(c)
    }

    /// Values with nonzero probability.
    pub fn support(&self) -> impl Iterator<Item = u16> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(v, _)| v as u16)
    }

    /// Number of values with nonzero probability.
    pub fn support_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }

    /// If the distribution is a point mass, its value.
    pub fn as_point(&self) -> Option<u16> {
        let mut found = None;
        for (v, &p) in self.probs.iter().enumerate() {
            if p > 0.0 {
                if found.is_some() {
                    return None;
                }
                found = Some(v as u16);
            }
        }
        found
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(v, &p)| v as f64 * p)
            .sum()
    }

    /// The most likely value (smallest on ties).
    pub fn mode(&self) -> u16 {
        let mut best = 0usize;
        for (v, &p) in self.probs.iter().enumerate() {
            if p > self.probs[best] {
                best = v;
            }
        }
        best as u16
    }

    /// Kullback–Leibler divergence `D(self ‖ other)` in bits. Infinite when
    /// `self` puts mass where `other` has none.
    ///
    /// # Panics
    ///
    /// Panics if the cardinalities differ.
    pub fn kl_divergence(&self, other: &Pmf) -> f64 {
        assert_eq!(self.card(), other.card(), "KL needs matching domains");
        self.probs
            .iter()
            .zip(&other.probs)
            .filter(|(&p, _)| p > 0.0)
            .map(|(&p, &q)| {
                if q > 0.0 {
                    p * (p / q).log2()
                } else {
                    f64::INFINITY
                }
            })
            .sum()
    }

    /// Shannon entropy in bits.
    pub fn entropy(&self) -> f64 {
        -self
            .probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.log2())
            .sum::<f64>()
    }

    /// Conditions on `X ∈ mask` (bit `v` of `mask` = value `v` allowed) and
    /// renormalizes. Returns `None` if the conditioning event has zero
    /// probability under `self`.
    pub fn conditioned(&self, mask: u64) -> Option<Pmf> {
        let mut weights = self.probs.clone();
        let mut total = 0.0;
        for (v, w) in weights.iter_mut().enumerate() {
            if v >= 64 || mask & (1u64 << v) == 0 {
                *w = 0.0;
            }
            total += *w;
        }
        if total <= 0.0 {
            return None;
        }
        for w in &mut weights {
            *w /= total;
        }
        Some(Pmf { probs: weights })
    }

    /// The distribution of `max_value − X` (with `max_value = card − 1`):
    /// the pushforward of `self` under the reflection that
    /// [`bc_data::preference::normalize_directions`] applies to minimized
    /// attributes. An involution, like the reflection itself.
    pub fn reflected(&self) -> Pmf {
        let mut probs = self.probs.clone();
        probs.reverse();
        Pmf { probs }
    }

    /// Samples a value.
    pub fn sample(&self, rng: &mut impl Rng) -> u16 {
        let mut x: f64 = rng.gen();
        for (v, &p) in self.probs.iter().enumerate() {
            x -= p;
            if x < 0.0 {
                return v as u16;
            }
        }
        // Floating-point slack: fall back to the largest supported value.
        self.probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("pmf has positive total mass") as u16
    }
}

/// Entropy of a Bernoulli variable with success probability `p` (Eq. 3 of
/// the paper, with `0 log 0 = 0`).
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!(
        (-1e-9..=1.0 + 1e-9).contains(&p),
        "probability out of range: {p}"
    );
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_probabilities() {
        let p = Pmf::uniform(10);
        assert!((p.p(3) - 0.1).abs() < 1e-12);
        assert!((p.pr_lt(2) - 0.2).abs() < 1e-12);
        assert!((p.pr_gt(2) - 0.7).abs() < 1e-12);
        assert!((p.pr_le(9) - 1.0).abs() < 1e-12);
        assert!((p.pr_ge(0) - 1.0).abs() < 1e-12);
        assert_eq!(p.p(10), 0.0);
    }

    #[test]
    fn paper_example_3_distributions() {
        // a4: 0.1 for values 0,1,5; 0.2 for 2,3; 0.3 for 4.
        let a4 = Pmf::from_weights(vec![0.1, 0.1, 0.2, 0.2, 0.3, 0.1]);
        assert!((a4.pr_lt(4) - 0.6).abs() < 1e-12);
        assert!((a4.pr_gt(4) - 0.1).abs() < 1e-12);
        let a3 = Pmf::uniform(8);
        assert!((a3.pr_gt(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entropy_extremes() {
        assert!(Pmf::delta(4, 2).entropy().abs() < 1e-12);
        assert!((Pmf::uniform(8).entropy() - 3.0).abs() < 1e-12);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
    }

    #[test]
    fn conditioning_renormalizes() {
        let p = Pmf::uniform(4);
        let c = p.conditioned(0b0110).unwrap();
        assert_eq!(c.p(0), 0.0);
        assert!((c.p(1) - 0.5).abs() < 1e-12);
        assert!((c.p(2) - 0.5).abs() < 1e-12);
        assert_eq!(c.support_size(), 2);
        assert!(p.conditioned(0).is_none());
        // Conditioning a delta away from its point is impossible.
        assert!(Pmf::delta(4, 0).conditioned(0b1110).is_none());
    }

    #[test]
    fn point_mass_detection() {
        assert_eq!(Pmf::delta(6, 3).as_point(), Some(3));
        assert_eq!(Pmf::uniform(2).as_point(), None);
        assert_eq!(
            Pmf::uniform(4).conditioned(0b1000).unwrap().as_point(),
            Some(3)
        );
    }

    #[test]
    fn sampling_respects_support() {
        let p = Pmf::from_weights(vec![0.0, 0.5, 0.0, 0.5]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut seen = [0usize; 4];
        for _ in 0..2000 {
            seen[p.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert_eq!(seen[2], 0);
        assert!(seen[1] > 800 && seen[3] > 800);
    }

    #[test]
    fn mean_mode_and_kl() {
        let p = Pmf::from_weights(vec![0.1, 0.2, 0.7]);
        assert!((p.mean() - 1.6).abs() < 1e-12);
        assert_eq!(p.mode(), 2);
        assert_eq!(Pmf::uniform(4).mode(), 0, "ties pick the smallest value");

        let u = Pmf::uniform(3);
        assert!(p.kl_divergence(&p).abs() < 1e-12);
        assert!(p.kl_divergence(&u) > 0.0);
        // Mass outside the support of `other` → infinite divergence.
        let d = Pmf::delta(3, 0);
        assert_eq!(u.kl_divergence(&d), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = Pmf::from_weights(vec![0.5, -0.1]);
    }

    #[test]
    fn from_probs_is_exact() {
        // from_weights divides by the total; from_probs must not touch the
        // entries at all, or serialized pmfs would drift on restore.
        let original = Pmf::from_weights(vec![1.0, 2.0, 4.0]);
        let restored = Pmf::from_probs(original.probs().to_vec());
        assert_eq!(original.probs(), restored.probs());
        assert_eq!(
            original
                .probs()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            restored
                .probs()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "sum to one")]
    fn from_probs_rejects_unnormalized_entries() {
        let _ = Pmf::from_probs(vec![0.5, 0.2]);
    }
}
