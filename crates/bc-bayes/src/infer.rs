//! Exact inference by variable elimination.

use crate::pmf::Pmf;
use crate::BayesianNetwork;

/// A factor over a sorted set of variables (attribute node indices), with a
/// dense value table indexed mixed-radix (first variable most significant).
#[derive(Clone, Debug)]
pub(crate) struct Factor {
    vars: Vec<usize>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    fn size(cards: &[usize]) -> usize {
        cards.iter().product::<usize>().max(1)
    }

    /// A constant factor.
    fn scalar(v: f64) -> Factor {
        Factor {
            vars: vec![],
            cards: vec![],
            values: vec![v],
        }
    }

    /// Builds the factor for one CPT entry: variables = parents ∪ {node}.
    fn from_cpt(cpt: &crate::Cpt, node_card: usize) -> Factor {
        let mut vars: Vec<usize> = cpt.parents().to_vec();
        vars.push(cpt.node());
        let mut cards: Vec<usize> = cpt.parent_cards().to_vec();
        cards.push(node_card);
        // Sort vars (and cards alongside) to keep the canonical order.
        let mut order: Vec<usize> = (0..vars.len()).collect();
        order.sort_by_key(|&i| vars[i]);
        let sorted_vars: Vec<usize> = order.iter().map(|&i| vars[i]).collect();
        let sorted_cards: Vec<usize> = order.iter().map(|&i| cards[i]).collect();

        let mut f = Factor {
            vars: sorted_vars,
            cards: sorted_cards,
            values: vec![0.0; Factor::size(&cards)],
        };
        // Enumerate parent configs × node values and scatter into f.
        let n_parents = cpt.parents().len();
        let mut assignment = vec![0u16; n_parents + 1];
        for config in 0..cpt.n_configs() {
            let parent_vals = cpt.decode_config(config);
            assignment[..n_parents].copy_from_slice(&parent_vals);
            let pmf = cpt.pmf_at(config);
            for v in 0..node_card as u16 {
                assignment[n_parents] = v;
                // Map the (parents..., node) assignment into f's sorted order.
                let mut idx = 0usize;
                for (slot, &orig) in order.iter().enumerate() {
                    idx = idx * f.cards[slot] + assignment[orig] as usize;
                }
                f.values[idx] = pmf.p(v);
            }
        }
        f
    }

    /// Index of `var` in this factor's variable list.
    fn pos(&self, var: usize) -> Option<usize> {
        self.vars.binary_search(&var).ok()
    }

    /// Fixes `var = val`, dropping the variable.
    fn restrict(&self, var: usize, val: u16) -> Factor {
        let Some(p) = self.pos(var) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(p);
        let removed_card = cards.remove(p);
        let mut out = Factor {
            values: vec![0.0; Factor::size(&cards)],
            vars,
            cards,
        };
        // Stride arithmetic: iterate output assignments, inject val at p.
        let n_out = out.values.len();
        for out_idx in 0..n_out {
            // Decode out_idx over out.cards, insert val at position p,
            // re-encode over self.cards.
            let mut rem = out_idx;
            let mut digits = vec![0usize; out.vars.len()];
            for i in (0..out.vars.len()).rev() {
                digits[i] = rem % out.cards[i];
                rem /= out.cards[i];
            }
            let mut in_idx = 0usize;
            let mut di = 0;
            for i in 0..self.vars.len() {
                let d = if i == p {
                    val as usize
                } else {
                    let d = digits[di];
                    di += 1;
                    d
                };
                in_idx = in_idx * self.cards[i] + d;
            }
            let _ = removed_card;
            out.values[out_idx] = self.values[in_idx];
        }
        out
    }

    /// Pointwise product of two factors over the union of their variables.
    fn product(&self, other: &Factor) -> Factor {
        // Union of sorted variable lists.
        let mut vars = Vec::with_capacity(self.vars.len() + other.vars.len());
        let mut cards = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() || j < other.vars.len() {
            let take_left =
                j >= other.vars.len() || (i < self.vars.len() && self.vars[i] <= other.vars[j]);
            if take_left {
                if j < other.vars.len() && i < self.vars.len() && self.vars[i] == other.vars[j] {
                    j += 1;
                }
                vars.push(self.vars[i]);
                cards.push(self.cards[i]);
                i += 1;
            } else {
                vars.push(other.vars[j]);
                cards.push(other.cards[j]);
                j += 1;
            }
        }
        let mut out = Factor {
            values: vec![0.0; Factor::size(&cards)],
            vars,
            cards,
        };
        let mut digits = vec![0usize; out.vars.len()];
        for out_idx in 0..out.values.len() {
            let mut rem = out_idx;
            for k in (0..out.vars.len()).rev() {
                digits[k] = rem % out.cards[k];
                rem /= out.cards[k];
            }
            let idx_in = |f: &Factor| -> usize {
                let mut idx = 0usize;
                for (k, &v) in f.vars.iter().enumerate() {
                    let slot = out.vars.binary_search(&v).expect("var in union");
                    idx = idx * f.cards[k] + digits[slot];
                }
                idx
            };
            out.values[out_idx] = self.values[idx_in(self)] * other.values[idx_in(other)];
        }
        out
    }

    /// Sums out `var`.
    fn sum_out(&self, var: usize) -> Factor {
        let Some(p) = self.pos(var) else {
            return self.clone();
        };
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(p);
        let var_card = cards.remove(p);
        let mut out = Factor {
            values: vec![0.0; Factor::size(&cards)],
            vars,
            cards,
        };
        let mut digits = vec![0usize; self.vars.len()];
        for in_idx in 0..self.values.len() {
            let mut rem = in_idx;
            for k in (0..self.vars.len()).rev() {
                digits[k] = rem % self.cards[k];
                rem /= self.cards[k];
            }
            let mut out_idx = 0usize;
            for (k, &d) in digits.iter().enumerate() {
                if k != p {
                    out_idx = out_idx * self.cards[k] + d;
                }
            }
            let _ = var_card;
            out.values[out_idx] += self.values[in_idx];
        }
        out
    }
}

/// Exact posterior marginal `P(target | evidence)` by variable elimination.
///
/// Evidence entries for `target` itself are ignored. If the evidence has
/// zero probability under the network (possible after aggressive Laplace-free
/// fitting), the uniform distribution is returned as a safe fallback.
pub fn posterior(bn: &BayesianNetwork, target: usize, evidence: &[(usize, u16)]) -> Pmf {
    let n = bn.n_nodes();
    assert!(target < n, "target node out of range");
    let card = bn.cards()[target];

    let mut factors: Vec<Factor> = bn
        .cpts()
        .iter()
        .map(|cpt| Factor::from_cpt(cpt, bn.cards()[cpt.node()]))
        .collect();

    // Apply evidence.
    let mut is_evidence = vec![None; n];
    for &(node, val) in evidence {
        if node != target {
            is_evidence[node] = Some(val);
        }
    }
    for f in &mut factors {
        for (node, ev) in is_evidence.iter().enumerate() {
            if let Some(val) = *ev {
                if f.pos(node).is_some() {
                    *f = f.restrict(node, val);
                }
            }
        }
    }

    // Eliminate hidden variables, smallest-resulting-factor first.
    let mut hidden: Vec<usize> = (0..n)
        .filter(|&v| v != target && is_evidence[v].is_none())
        .collect();
    while !hidden.is_empty() {
        // Greedy min-size heuristic.
        let (best_i, _) = hidden
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut size = 1usize;
                let mut seen = std::collections::BTreeSet::new();
                for f in factors.iter().filter(|f| f.pos(v).is_some()) {
                    for (k, &fv) in f.vars.iter().enumerate() {
                        if fv != v && seen.insert(fv) {
                            size = size.saturating_mul(f.cards[k]);
                        }
                    }
                }
                (i, size)
            })
            .min_by_key(|&(_, s)| s)
            .expect("hidden is non-empty");
        let v = hidden.swap_remove(best_i);

        let (touching, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.pos(v).is_some());
        factors = rest;
        if !touching.is_empty() {
            let mut prod = Factor::scalar(1.0);
            for f in touching {
                prod = prod.product(&f);
            }
            factors.push(prod.sum_out(v));
        }
    }

    // Multiply what is left; the result is over {target} (or empty).
    let mut result = Factor::scalar(1.0);
    for f in factors {
        result = result.product(&f);
    }
    let weights: Vec<f64> = if result.vars.is_empty() {
        vec![result.values[0]; card]
    } else {
        debug_assert_eq!(result.vars, vec![target]);
        result.values
    };
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        Pmf::uniform(card)
    } else {
        Pmf::from_weights(weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cpt, Dag};

    /// Classic two-node chain: X0 -> X1.
    fn chain() -> BayesianNetwork {
        let dag = Dag::from_edges(2, &[(0, 1)]);
        let c0 = Cpt::new(0, vec![], vec![], vec![Pmf::from_weights(vec![0.6, 0.4])]);
        let c1 = Cpt::new(
            1,
            vec![0],
            vec![2],
            vec![
                Pmf::from_weights(vec![0.9, 0.1]),
                Pmf::from_weights(vec![0.2, 0.8]),
            ],
        );
        BayesianNetwork::new(dag, vec![c0, c1], vec![2, 2])
    }

    #[test]
    fn prior_marginal_of_child() {
        let bn = chain();
        let p1 = posterior(&bn, 1, &[]);
        // P(X1=0) = .6*.9 + .4*.2 = .62
        assert!((p1.p(0) - 0.62).abs() < 1e-12);
    }

    #[test]
    fn bayes_rule_inversion() {
        let bn = chain();
        let p0 = posterior(&bn, 0, &[(1, 0)]);
        // P(X0=0 | X1=0) = .54/.62
        assert!((p0.p(0) - 0.54 / 0.62).abs() < 1e-12);
    }

    #[test]
    fn evidence_on_target_is_ignored() {
        let bn = chain();
        let p = posterior(&bn, 0, &[(0, 1)]);
        assert!((p.p(0) - 0.6).abs() < 1e-12);
    }

    /// V-structure: X0 -> X2 <- X1 (explaining away).
    fn v_structure() -> BayesianNetwork {
        let dag = Dag::from_edges(3, &[(0, 2), (1, 2)]);
        let c0 = Cpt::new(0, vec![], vec![], vec![Pmf::from_weights(vec![0.5, 0.5])]);
        let c1 = Cpt::new(1, vec![], vec![], vec![Pmf::from_weights(vec![0.5, 0.5])]);
        // X2 = OR-ish of parents.
        let c2 = Cpt::new(
            2,
            vec![0, 1],
            vec![2, 2],
            vec![
                Pmf::from_weights(vec![0.99, 0.01]),
                Pmf::from_weights(vec![0.1, 0.9]),
                Pmf::from_weights(vec![0.1, 0.9]),
                Pmf::from_weights(vec![0.01, 0.99]),
            ],
        );
        BayesianNetwork::new(dag, vec![c0, c1, c2], vec![2, 2, 2])
    }

    #[test]
    fn explaining_away() {
        let bn = v_structure();
        // Observing the effect raises belief in each cause...
        let p_cause = posterior(&bn, 0, &[(2, 1)]);
        assert!(p_cause.p(1) > 0.5);
        // ...but also observing the other cause lowers it again.
        let p_explained = posterior(&bn, 0, &[(2, 1), (1, 1)]);
        assert!(p_explained.p(1) < p_cause.p(1));
    }

    #[test]
    fn marginal_independence_in_v_structure() {
        let bn = v_structure();
        // Without evidence on the collider, causes stay independent/uniform.
        let p = posterior(&bn, 0, &[(1, 1)]);
        assert!((p.p(0) - 0.5).abs() < 1e-12);
    }
}
