//! The preprocessing step of BayesCrowd: learn a Bayesian network from the
//! (incomplete) dataset and derive, for every missing cell `Var(o, a)`, its
//! conditional value distribution given the observed attributes of `o`.

use crate::anneal::{anneal_with_iters, AnnealConfig};
use crate::em::{em_fit, EmConfig};
use crate::graph::Dag;
use crate::learn::{family_bic_score, fit_parameters, hill_climb_with_iters, LearnConfig};
use crate::pmf::Pmf;
use crate::BayesianNetwork;
use bc_data::{Dataset, VarId};
use std::collections::BTreeMap;

/// What one [`MissingValueModel::learn_with_stats`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ModelStats {
    /// Total BIC score of the learned structure on the complete rows
    /// (`0.0` for the uniform-prior ablation or with no complete rows).
    pub bic: f64,
    /// Edges in the learned DAG.
    pub edges: usize,
    /// EM sweeps performed (`0` when EM was disabled).
    pub em_iters: usize,
    /// Structure-search moves applied (hill-climb improving moves or
    /// accepted annealing moves; `0` for the uniform-prior ablation).
    pub search_iters: usize,
    /// Missing cells that received a conditional distribution.
    pub missing_vars: usize,
}

/// Which structure-search mode runs over the complete rows (Banjo offers
/// the same pair).
#[derive(Clone, Debug, Default)]
pub enum StructureSearch {
    /// Greedy hill climbing (the default).
    #[default]
    HillClimb,
    /// Simulated annealing with the given schedule.
    Anneal(AnnealConfig),
}

/// Configuration of the modeling step.
#[derive(Clone, Debug, Default)]
pub struct ModelConfig {
    /// Structure/parameter learning knobs.
    pub learn: LearnConfig,
    /// If `true`, skip the Bayesian network entirely and give every missing
    /// value the uniform prior — the ablation the paper's design motivates
    /// against.
    pub uniform_prior: bool,
    /// If set, refine the CPTs by expectation-maximization over the
    /// incomplete rows instead of relying on listwise deletion alone.
    pub em: Option<EmConfig>,
    /// Structure-search mode.
    pub search: StructureSearch,
}

/// Learned value distributions for every missing cell of a dataset.
///
/// Variables of the *same* object are treated as mutually independent given
/// the object's observed attributes (each receives its own conditional
/// marginal). This matches the paper's ADPLL weighting, which multiplies a
/// standalone `p(v_a)` per variable.
#[derive(Clone, Debug)]
pub struct MissingValueModel {
    network: BayesianNetwork,
    pmfs: BTreeMap<VarId, Pmf>,
}

impl MissingValueModel {
    /// Runs the full preprocessing step on `data`.
    ///
    /// Structure and parameters are learned from the listwise-complete rows
    /// of `data` itself; with too few complete rows the model degrades
    /// gracefully to per-attribute marginals / uniform priors.
    pub fn learn(data: &Dataset, config: &ModelConfig) -> MissingValueModel {
        Self::learn_with_stats(data, config).0
    }

    /// [`MissingValueModel::learn`] plus training counters (structure
    /// score, DAG size, EM effort) for telemetry.
    pub fn learn_with_stats(
        data: &Dataset,
        config: &ModelConfig,
    ) -> (MissingValueModel, ModelStats) {
        let cards: Vec<usize> = data
            .domains()
            .iter()
            .map(|d| d.cardinality() as usize)
            .collect();
        let mut stats = ModelStats::default();
        let network = if config.uniform_prior {
            let dag = Dag::empty(cards.len());
            let cpts = fit_parameters(&dag, &[], &cards, config.learn.laplace);
            BayesianNetwork::new(dag, cpts, cards.clone())
        } else {
            // Structure on the complete rows (greedy or annealed)...
            let complete = data.complete_rows();
            let (dag, search_iters) = match &config.search {
                StructureSearch::HillClimb => {
                    hill_climb_with_iters(&complete, &cards, &config.learn)
                }
                StructureSearch::Anneal(a) => anneal_with_iters(&complete, &cards, a),
            };
            stats.search_iters = search_iters;
            if !complete.is_empty() {
                stats.bic = (0..dag.n_nodes())
                    .map(|node| family_bic_score(&complete, &cards, node, dag.parents(node)))
                    .sum();
            }
            // ...then parameters: EM over everything, or smoothed MLE on
            // the complete rows.
            if let Some(em_config) = &config.em {
                stats.em_iters = em_config.iterations;
                let all_rows: Vec<Vec<Option<u16>>> =
                    data.objects().map(|o| data.row(o).to_vec()).collect();
                em_fit(&dag, &all_rows, &cards, em_config)
            } else {
                let cpts = fit_parameters(&dag, &complete, &cards, config.learn.laplace);
                BayesianNetwork::new(dag, cpts, cards.clone())
            }
        };
        stats.edges = network.dag().n_edges();
        let pmfs = Self::conditionals(&network, data);
        stats.missing_vars = pmfs.len();
        (MissingValueModel { network, pmfs }, stats)
    }

    /// Builds a model from an already-trained network (e.g. the true network
    /// a synthetic dataset was sampled from).
    pub fn from_network(network: BayesianNetwork, data: &Dataset) -> MissingValueModel {
        let pmfs = Self::conditionals(&network, data);
        MissingValueModel { network, pmfs }
    }

    fn conditionals(network: &BayesianNetwork, data: &Dataset) -> BTreeMap<VarId, Pmf> {
        let mut pmfs = BTreeMap::new();
        for var in data.missing_vars() {
            let evidence: Vec<(usize, u16)> = data
                .row(var.object)
                .iter()
                .enumerate()
                .filter_map(|(a, cell)| cell.map(|v| (a, v)))
                .collect();
            let pmf = network.posterior(var.attr.index(), &evidence);
            pmfs.insert(var, pmf);
        }
        pmfs
    }

    /// The underlying network.
    #[inline]
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// Distribution of one missing variable, if it exists in the model.
    #[inline]
    pub fn pmf(&self, var: VarId) -> Option<&Pmf> {
        self.pmfs.get(&var)
    }

    /// All `(variable, distribution)` pairs, ordered by variable.
    #[inline]
    pub fn pmfs(&self) -> &BTreeMap<VarId, Pmf> {
        &self.pmfs
    }

    /// Moves the distributions out of the model.
    pub fn into_pmfs(self) -> BTreeMap<VarId, Pmf> {
        self.pmfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::generators::sample::paper_dataset;
    use bc_data::missing::inject_mcar;
    use bc_data::{AttrId, Domain, ObjectId};
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn covers_exactly_the_missing_cells() {
        let data = paper_dataset();
        let model = MissingValueModel::learn(&data, &ModelConfig::default());
        assert_eq!(model.pmfs().len(), data.n_missing());
        for var in data.missing_vars() {
            let pmf = model.pmf(var).unwrap();
            assert_eq!(pmf.card(), data.domain(var.attr).cardinality() as usize);
        }
        assert_eq!(model.pmf(VarId::new(0, 0)), None);
    }

    #[test]
    fn learn_stats_describe_the_training_run() {
        let data = paper_dataset();
        let (model, stats) = MissingValueModel::learn_with_stats(&data, &ModelConfig::default());
        assert_eq!(stats.missing_vars, model.pmfs().len());
        assert_eq!(stats.edges, model.network().dag().n_edges());
        assert_eq!(stats.em_iters, 0);
        assert!(stats.bic <= 0.0, "BIC is a log-score, got {}", stats.bic);

        let (_, em_stats) = MissingValueModel::learn_with_stats(
            &data,
            &ModelConfig {
                em: Some(crate::em::EmConfig::default()),
                ..Default::default()
            },
        );
        assert_eq!(em_stats.em_iters, crate::em::EmConfig::default().iterations);

        let (_, uni) = MissingValueModel::learn_with_stats(
            &data,
            &ModelConfig {
                uniform_prior: true,
                ..Default::default()
            },
        );
        assert_eq!(uni.bic, 0.0);
        assert_eq!(uni.edges, 0);
    }

    #[test]
    fn annealed_structure_search_runs_end_to_end() {
        let data = paper_dataset();
        let cfg = ModelConfig {
            search: StructureSearch::Anneal(crate::anneal::AnnealConfig {
                moves: 200,
                ..Default::default()
            }),
            ..Default::default()
        };
        let model = MissingValueModel::learn(&data, &cfg);
        assert_eq!(model.pmfs().len(), data.n_missing());
    }

    #[test]
    fn em_modeling_runs_end_to_end() {
        let data = paper_dataset();
        let cfg = ModelConfig {
            em: Some(crate::em::EmConfig::default()),
            ..Default::default()
        };
        let model = MissingValueModel::learn(&data, &cfg);
        assert_eq!(model.pmfs().len(), data.n_missing());
    }

    #[test]
    fn uniform_prior_ablation_really_is_uniform() {
        let data = paper_dataset();
        let cfg = ModelConfig {
            uniform_prior: true,
            ..Default::default()
        };
        let model = MissingValueModel::learn(&data, &cfg);
        let pmf = model.pmf(VarId::new(1, 1)).unwrap();
        assert!((pmf.p(0) - 0.1).abs() < 1e-12);
        assert_eq!(model.network().dag().n_edges(), 0);
    }

    #[test]
    fn correlated_data_sharpens_the_conditional() {
        // X1 strongly tracks X0; hide X1 of an object whose X0 is large and
        // check the learned conditional leans large.
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let rows: Vec<Vec<u16>> = (0..3000)
            .map(|_| {
                let x0: u16 = rng.gen_range(0..8);
                let x1 = if rng.gen_bool(0.85) {
                    x0
                } else {
                    rng.gen_range(0..8)
                };
                vec![x0, x1]
            })
            .collect();
        let complete = Dataset::from_complete_rows(
            "corr",
            vec![Domain::new("a1", 8).unwrap(), Domain::new("a2", 8).unwrap()],
            rows,
        )
        .unwrap();
        let (mut data, _) = inject_mcar(&complete, 0.05, 3);
        // Force a specific missing cell with known evidence.
        data.set(ObjectId(0), AttrId(0), Some(7)).unwrap();
        data.set(ObjectId(0), AttrId(1), None).unwrap();

        let model = MissingValueModel::learn(&data, &ModelConfig::default());
        let pmf = model.pmf(VarId::new(0, 1)).unwrap();
        assert!(
            pmf.p(7) > 0.5,
            "conditional should concentrate near the evidence, got {:?}",
            pmf.probs()
        );

        // Versus the uniform ablation.
        let uni = MissingValueModel::learn(
            &data,
            &ModelConfig {
                uniform_prior: true,
                ..Default::default()
            },
        );
        assert!(uni.pmf(VarId::new(0, 1)).unwrap().p(7) < 0.2);
    }
}
