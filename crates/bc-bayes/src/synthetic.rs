//! A hand-built Adult-like Bayesian network.
//!
//! The paper's `Synthetic` dataset (100,000 records, nine attributes) "shares
//! the same Bayesian network with the typical Adult dataset from the UCI
//! Machine Learning Repository". The real Adult data is not shipped here, so
//! this module hand-authors a nine-node network with the same flavor of
//! dependencies (age → education → occupation → income, etc.) and exposes it
//! for sampling arbitrarily large synthetic datasets.

use crate::cpt::Cpt;
use crate::graph::Dag;
use crate::pmf::Pmf;
use crate::BayesianNetwork;

/// Number of attributes of the Adult-like network.
pub const ADULT_ATTRS: usize = 9;

/// Node indices, for readability.
pub mod nodes {
    /// Discretized age bracket.
    pub const AGE: usize = 0;
    /// Education level.
    pub const EDUCATION: usize = 1;
    /// Occupation prestige score.
    pub const OCCUPATION: usize = 2;
    /// Weekly working hours bracket.
    pub const HOURS: usize = 3;
    /// Income bracket.
    pub const INCOME: usize = 4;
    /// Capital-gain bracket.
    pub const CAPITAL: usize = 5;
    /// Marital-status score.
    pub const MARITAL: usize = 6;
    /// Number-of-dependents bracket.
    pub const CHILDREN: usize = 7;
    /// Self-reported health score.
    pub const HEALTH: usize = 8;
}

/// Builds a CPT whose conditional pmfs concentrate (with triangular decay of
/// width `spread`) around a weighted mean of the parent values; weights may
/// be negative for inverse relationships.
fn monotone_cpt(
    node: usize,
    card: usize,
    parents: Vec<usize>,
    parent_cards: Vec<usize>,
    weights: &[f64],
    bias: f64,
    spread: f64,
) -> Cpt {
    assert_eq!(parents.len(), weights.len());
    let n_configs: usize = parent_cards.iter().product::<usize>().max(1);
    let mut table = Vec::with_capacity(n_configs);
    for cfg in 0..n_configs {
        // Decode cfg mixed-radix, first parent most significant.
        let mut rem = cfg;
        let mut vals = vec![0usize; parents.len()];
        for i in (0..parents.len()).rev() {
            vals[i] = rem % parent_cards[i];
            rem /= parent_cards[i];
        }
        let mut mu = bias;
        for (i, &w) in weights.iter().enumerate() {
            let norm = vals[i] as f64 / (parent_cards[i] - 1).max(1) as f64;
            mu += w * if w >= 0.0 { norm } else { norm - 1.0 };
        }
        let center = mu.clamp(0.0, 1.0) * (card - 1) as f64;
        let pmf = Pmf::from_weights(
            (0..card)
                .map(|v| {
                    let dist = (v as f64 - center).abs();
                    (1.0 / (1.0 + (dist / spread).powi(2))).max(1e-4)
                })
                .collect(),
        );
        table.push(pmf);
    }
    Cpt::new(node, parents, parent_cards, table)
}

/// The Adult-like network: nine nodes, eight-value domains, dependencies
/// mimicking the UCI Adult dataset's well-known structure.
pub fn adult_like() -> BayesianNetwork {
    use nodes::*;
    const CARD: usize = 8;
    let cards = vec![CARD; ADULT_ATTRS];

    let dag = Dag::from_edges(
        ADULT_ATTRS,
        &[
            (AGE, EDUCATION),
            (AGE, MARITAL),
            (AGE, HEALTH),
            (EDUCATION, OCCUPATION),
            (EDUCATION, INCOME),
            (OCCUPATION, INCOME),
            (INCOME, CAPITAL),
            (MARITAL, CHILDREN),
            (AGE, CHILDREN),
            (HOURS, INCOME),
        ],
    );

    // One CPT per node; parent lists must match the DAG (sorted ascending).
    let cpts = vec![
        // AGE: roots get a mildly middle-heavy prior.
        Cpt::new(
            AGE,
            vec![],
            vec![],
            vec![Pmf::from_weights(vec![
                0.8, 1.0, 1.3, 1.5, 1.5, 1.3, 1.0, 0.8,
            ])],
        ),
        // EDUCATION | AGE: older brackets slightly more educated.
        monotone_cpt(EDUCATION, CARD, vec![AGE], vec![CARD], &[0.35], 0.3, 1.6),
        // OCCUPATION | EDUCATION.
        monotone_cpt(
            OCCUPATION,
            CARD,
            vec![EDUCATION],
            vec![CARD],
            &[0.7],
            0.12,
            1.2,
        ),
        // HOURS: root.
        Cpt::new(
            HOURS,
            vec![],
            vec![],
            vec![Pmf::from_weights(vec![
                0.6, 0.8, 1.1, 1.6, 1.6, 1.1, 0.8, 0.6,
            ])],
        ),
        // INCOME | EDUCATION, OCCUPATION, HOURS (sorted parent order).
        monotone_cpt(
            INCOME,
            CARD,
            vec![EDUCATION, OCCUPATION, HOURS],
            vec![CARD, CARD, CARD],
            &[0.3, 0.35, 0.2],
            0.05,
            1.0,
        ),
        // CAPITAL | INCOME.
        monotone_cpt(CAPITAL, CARD, vec![INCOME], vec![CARD], &[0.8], 0.0, 1.1),
        // MARITAL | AGE.
        monotone_cpt(MARITAL, CARD, vec![AGE], vec![CARD], &[0.55], 0.1, 1.5),
        // CHILDREN | AGE, MARITAL.
        monotone_cpt(
            CHILDREN,
            CARD,
            vec![AGE, MARITAL],
            vec![CARD, CARD],
            &[0.3, 0.4],
            0.05,
            1.4,
        ),
        // HEALTH | AGE: inverse relationship.
        monotone_cpt(HEALTH, CARD, vec![AGE], vec![CARD], &[-0.5], 0.85, 1.5),
    ];

    BayesianNetwork::new(dag, cpts, cards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn network_shape() {
        let bn = adult_like();
        assert_eq!(bn.n_nodes(), ADULT_ATTRS);
        assert_eq!(bn.dag().n_edges(), 10);
        assert_eq!(bn.cards(), &[8; 9]);
    }

    #[test]
    fn income_rises_with_education() {
        let bn = adult_like();
        let low = bn.posterior(nodes::INCOME, &[(nodes::EDUCATION, 0)]);
        let high = bn.posterior(nodes::INCOME, &[(nodes::EDUCATION, 7)]);
        let mean = |p: &crate::Pmf| -> f64 {
            p.probs()
                .iter()
                .enumerate()
                .map(|(v, &q)| v as f64 * q)
                .sum()
        };
        assert!(
            mean(&high) > mean(&low) + 1.0,
            "income should rise with education: {} vs {}",
            mean(&high),
            mean(&low)
        );
    }

    #[test]
    fn health_falls_with_age() {
        let bn = adult_like();
        let young = bn.posterior(nodes::HEALTH, &[(nodes::AGE, 0)]);
        let old = bn.posterior(nodes::HEALTH, &[(nodes::AGE, 7)]);
        let mean = |p: &crate::Pmf| -> f64 {
            p.probs()
                .iter()
                .enumerate()
                .map(|(v, &q)| v as f64 * q)
                .sum()
        };
        assert!(mean(&young) > mean(&old));
    }

    #[test]
    fn sampled_data_reflects_the_dependencies() {
        let bn = adult_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let ds = bn.sample_dataset("syn", 4000, &mut rng).unwrap();
        // Empirical correlation between education and income is positive.
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let n = ds.n_objects() as f64;
        for o in ds.objects() {
            let x = ds.get(o, bc_data::AttrId(nodes::EDUCATION as u16)).unwrap() as f64;
            let y = ds.get(o, bc_data::AttrId(nodes::INCOME as u16)).unwrap() as f64;
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let r = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!(r > 0.2, "expected positive correlation, got {r}");
    }
}
