//! Directed acyclic graph over attribute nodes.

/// A DAG on `n` nodes, stored as sorted parent lists per node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dag {
    parents: Vec<Vec<usize>>,
}

impl Dag {
    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Dag {
        Dag {
            parents: vec![Vec::new(); n],
        }
    }

    /// Builds a DAG from explicit edges `(parent, child)`.
    ///
    /// # Panics
    ///
    /// Panics if an edge index is out of range, an edge is duplicated, or
    /// the edges form a cycle.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Dag {
        let mut dag = Dag::empty(n);
        for &(p, c) in edges {
            assert!(
                dag.try_add_edge(p, c),
                "edge ({p}, {c}) is invalid, duplicated, or creates a cycle"
            );
        }
        dag
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Sorted parents of `node`.
    #[inline]
    pub fn parents(&self, node: usize) -> &[usize] {
        &self.parents[node]
    }

    /// Total number of edges.
    pub fn n_edges(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Whether edge `parent -> child` exists.
    pub fn has_edge(&self, parent: usize, child: usize) -> bool {
        self.parents[child].binary_search(&parent).is_ok()
    }

    /// Adds `parent -> child` if it keeps the graph a simple DAG; returns
    /// whether the edge was added.
    pub fn try_add_edge(&mut self, parent: usize, child: usize) -> bool {
        if parent >= self.n_nodes() || child >= self.n_nodes() || parent == child {
            return false;
        }
        if self.has_edge(parent, child) || self.reaches(child, parent) {
            return false;
        }
        let pos = self.parents[child].binary_search(&parent).unwrap_err();
        self.parents[child].insert(pos, parent);
        true
    }

    /// Removes `parent -> child`; returns whether it existed.
    pub fn remove_edge(&mut self, parent: usize, child: usize) -> bool {
        match self.parents[child].binary_search(&parent) {
            Ok(pos) => {
                self.parents[child].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `to` is reachable from `from` following edges forward.
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        // Walk backwards from `to` through parents.
        let mut stack = vec![to];
        let mut seen = vec![false; self.n_nodes()];
        seen[to] = true;
        while let Some(v) = stack.pop() {
            for &p in &self.parents[v] {
                if p == from {
                    return true;
                }
                if !seen[p] {
                    seen[p] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// A topological order (parents before children).
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.n_nodes();
        let mut remaining_parents: Vec<usize> = (0..n).map(|v| self.parents[v].len()).collect();
        let mut children = vec![Vec::new(); n];
        for c in 0..n {
            for &p in &self.parents[c] {
                children[p].push(c);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&v| remaining_parents[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = ready.pop() {
            order.push(v);
            for &c in &children[v] {
                remaining_parents[c] -= 1;
                if remaining_parents[c] == 0 {
                    ready.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph must be acyclic");
        order
    }

    /// All edges as `(parent, child)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.n_edges());
        for c in 0..self.n_nodes() {
            for &p in &self.parents[c] {
                out.push((p, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_and_query() {
        let mut g = Dag::empty(4);
        assert!(g.try_add_edge(0, 1));
        assert!(g.try_add_edge(1, 2));
        assert!(!g.try_add_edge(0, 1), "duplicate rejected");
        assert!(!g.try_add_edge(2, 0), "cycle rejected");
        assert!(!g.try_add_edge(1, 1), "self-loop rejected");
        assert!(g.has_edge(0, 1));
        assert_eq!(g.n_edges(), 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
    }

    #[test]
    fn reachability() {
        let g = Dag::from_edges(5, &[(0, 1), (1, 2), (3, 2)]);
        assert!(g.reaches(0, 2));
        assert!(!g.reaches(2, 0));
        assert!(g.reaches(3, 2));
        assert!(!g.reaches(0, 4));
        assert!(g.reaches(4, 4));
    }

    #[test]
    fn topological_order_is_valid() {
        let g = Dag::from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (1, 5)]);
        let order = g.topological_order();
        assert_eq!(order.len(), 6);
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (p, c) in g.edges() {
            assert!(pos[p] < pos[c], "edge ({p},{c}) violates topo order");
        }
    }

    #[test]
    #[should_panic(expected = "creates a cycle")]
    fn from_edges_panics_on_cycle() {
        let _ = Dag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
    }
}
