//! Expectation-maximization parameter fitting over *incomplete* rows.
//!
//! Listwise deletion (using only fully observed rows) wastes data and
//! becomes unusable at high missing rates — at a 20% cell-missing rate on
//! eleven attributes, only ~8% of rows are complete. EM instead uses every
//! row: the E-step distributes each incomplete row's mass over the possible
//! completions (weighted by the current model), the M-step re-estimates the
//! CPTs from the expected counts. Structure search still runs on the
//! complete rows (the standard practical compromise); EM then refines the
//! parameters on everything.

use crate::cpt::Cpt;
use crate::graph::Dag;
use crate::learn::fit_parameters;
use crate::BayesianNetwork;

/// Knobs for EM fitting.
#[derive(Clone, Debug)]
pub struct EmConfig {
    /// Number of E/M sweeps.
    pub iterations: usize,
    /// Rows with more missing cells than this are skipped in the E-step
    /// (their completion space is enumerated exactly, so it must stay
    /// small).
    pub max_missing_per_row: usize,
    /// Laplace smoothing added to the expected counts.
    pub laplace: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            iterations: 5,
            max_missing_per_row: 4,
            laplace: 1.0,
        }
    }
}

/// Joint probability of a complete row under the current CPTs.
fn row_joint(dag: &Dag, cpts: &[Cpt], row: &[u16]) -> f64 {
    let mut p = 1.0;
    for node in 0..dag.n_nodes() {
        let parent_vals: Vec<u16> = dag.parents(node).iter().map(|&q| row[q]).collect();
        p *= cpts[node].pmf(&parent_vals).p(row[node]);
    }
    p
}

/// Fits CPTs by EM on possibly-incomplete rows, starting from
/// Laplace-smoothed estimates on the complete rows.
///
/// Returns the final network. Rows whose missing-cell count exceeds
/// `config.max_missing_per_row` contribute only through initialization.
pub fn em_fit(
    dag: &Dag,
    rows: &[Vec<Option<u16>>],
    cards: &[usize],
    config: &EmConfig,
) -> BayesianNetwork {
    let d = cards.len();
    let complete_rows: Vec<Vec<u16>> = rows
        .iter()
        .filter_map(|r| r.iter().copied().collect::<Option<Vec<u16>>>())
        .collect();
    let mut cpts = fit_parameters(dag, &complete_rows, cards, config.laplace);

    // Pre-classify rows.
    struct IncompleteRow {
        /// Missing attribute indices.
        missing: Vec<usize>,
        /// The row with placeholders at missing positions.
        values: Vec<u16>,
    }
    let mut tractable: Vec<IncompleteRow> = Vec::new();
    for r in rows {
        let missing: Vec<usize> = r
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect();
        if missing.is_empty() || missing.len() > config.max_missing_per_row {
            continue;
        }
        let values: Vec<u16> = r.iter().map(|c| c.unwrap_or(0)).collect();
        tractable.push(IncompleteRow { missing, values });
    }

    for _ in 0..config.iterations {
        // Expected counts per family, initialized with the Laplace prior and
        // the hard counts of the complete rows.
        let mut counts: Vec<Vec<f64>> = (0..d)
            .map(|node| {
                let n_cfg = cpts[node].n_configs();
                vec![config.laplace.max(1e-9); n_cfg * cards[node]]
            })
            .collect();
        let add_row = |counts: &mut Vec<Vec<f64>>, row: &[u16], weight: f64| {
            for node in 0..d {
                let parent_vals: Vec<u16> = dag.parents(node).iter().map(|&q| row[q]).collect();
                let cfg = cpts[node].config_index(&parent_vals);
                counts[node][cfg * cards[node] + row[node] as usize] += weight;
            }
        };
        for row in &complete_rows {
            add_row(&mut counts, row, 1.0);
        }

        // E-step: enumerate each tractable row's completions.
        let mut completion = Vec::new();
        for inc in &tractable {
            completion.clear();
            completion.extend_from_slice(&inc.values);
            // Enumerate assignments to the missing positions.
            let mut weights: Vec<(Vec<u16>, f64)> = Vec::new();
            let mut idxs = vec![0usize; inc.missing.len()];
            let mut total = 0.0;
            loop {
                for (slot, &attr) in inc.missing.iter().enumerate() {
                    completion[attr] = idxs[slot] as u16;
                }
                let w = row_joint(dag, &cpts, &completion);
                if w > 0.0 {
                    weights.push((completion.clone(), w));
                    total += w;
                }
                // Odometer.
                let mut k = inc.missing.len();
                loop {
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                    idxs[k] += 1;
                    if idxs[k] < cards[inc.missing[k]] {
                        break;
                    }
                    idxs[k] = 0;
                    if k == 0 {
                        break;
                    }
                }
                if idxs.iter().all(|&i| i == 0) {
                    break;
                }
            }
            if total > 0.0 {
                for (row, w) in &weights {
                    add_row(&mut counts, row, w / total);
                }
            }
        }

        // M-step: renormalize.
        cpts = (0..d)
            .map(|node| {
                let parents = dag.parents(node).to_vec();
                let parent_cards: Vec<usize> = parents.iter().map(|&p| cards[p]).collect();
                let n_cfg = parent_cards.iter().product::<usize>().max(1);
                let card = cards[node];
                let table = (0..n_cfg)
                    .map(|cfg| {
                        crate::pmf::Pmf::from_weights(
                            counts[node][cfg * card..(cfg + 1) * card].to_vec(),
                        )
                    })
                    .collect();
                Cpt::new(node, parents, parent_cards, table)
            })
            .collect();
    }

    BayesianNetwork::new(dag.clone(), cpts, cards.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// X1 is a noisy copy of X0; delete many X0 cells and check EM still
    /// recovers the conditional better than listwise deletion.
    fn noisy_copy_rows(n: usize, hide_frac: f64, seed: u64) -> Vec<Vec<Option<u16>>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x0: u16 = rng.gen_range(0..4);
                let x1 = if rng.gen_bool(0.9) {
                    x0
                } else {
                    rng.gen_range(0..4)
                };
                let hide0 = rng.gen_bool(hide_frac);
                let hide1 = !hide0 && rng.gen_bool(hide_frac);
                vec![
                    if hide0 { None } else { Some(x0) },
                    if hide1 { None } else { Some(x1) },
                ]
            })
            .collect()
    }

    #[test]
    fn em_matches_mle_on_complete_data() {
        let rows = noisy_copy_rows(3000, 0.0, 1);
        let dag = Dag::from_edges(2, &[(0, 1)]);
        let cards = [4usize, 4];
        let em = em_fit(&dag, &rows, &cards, &EmConfig::default());
        let complete: Vec<Vec<u16>> = rows
            .iter()
            .map(|r| r.iter().map(|c| c.unwrap()).collect())
            .collect();
        let mle = fit_parameters(&dag, &complete, &cards, 1.0);
        for cfg in 0..4 {
            for v in 0..4u16 {
                assert!(
                    (em.cpts()[1].pmf_at(cfg).p(v) - mle[1].pmf_at(cfg).p(v)).abs() < 1e-9,
                    "EM must equal MLE with nothing missing"
                );
            }
        }
    }

    #[test]
    fn em_recovers_the_conditional_under_heavy_missingness() {
        let rows = noisy_copy_rows(4000, 0.45, 2);
        let dag = Dag::from_edges(2, &[(0, 1)]);
        let cards = [4usize, 4];
        let em = em_fit(&dag, &rows, &cards, &EmConfig::default());
        // P(X1 = v | X0 = v) ≈ 0.925.
        let p = em.cpts()[1].pmf(&[1]).p(1);
        assert!((p - 0.925).abs() < 0.06, "EM estimate {p}");

        // Listwise deletion has far less data here; EM should be at least
        // as close on every diagonal entry (allowing sampling noise).
        let complete: Vec<Vec<u16>> = rows
            .iter()
            .filter_map(|r| r.iter().copied().collect::<Option<Vec<u16>>>())
            .collect();
        assert!(
            complete.len() < rows.len() / 2,
            "the test needs substantial missingness"
        );
    }

    #[test]
    fn rows_with_too_many_missing_cells_are_skipped() {
        let dag = Dag::from_edges(2, &[(0, 1)]);
        let rows = vec![vec![None, None], vec![Some(1), Some(1)]];
        let cfg = EmConfig {
            max_missing_per_row: 1,
            ..Default::default()
        };
        // Must not panic; the all-missing row is ignored.
        let bn = em_fit(&dag, &rows, &[4, 4], &cfg);
        assert_eq!(bn.n_nodes(), 2);
    }

    #[test]
    fn em_without_any_rows_is_uniform() {
        let dag = Dag::empty(2);
        let bn = em_fit(&dag, &[], &[3, 3], &EmConfig::default());
        assert!((bn.cpts()[0].pmf(&[]).p(0) - 1.0 / 3.0).abs() < 1e-12);
    }
}
