//! Strongly-typed identifiers for objects, attributes, and missing-value
//! variables.

use std::fmt;

/// Index of an object (row) in a [`crate::Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// Index of an attribute (column) in a [`crate::Dataset`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

/// A missing-value variable `Var(o, a)`: the unknown value of attribute `a`
/// of object `o`. This is the unit the crowd is asked about.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId {
    /// The object whose cell is missing.
    pub object: ObjectId,
    /// The attribute of the missing cell.
    pub attr: AttrId,
}

impl ObjectId {
    /// The row index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The column index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    /// Convenience constructor from raw indices.
    #[inline]
    pub fn new(object: u32, attr: u16) -> Self {
        VarId {
            object: ObjectId(object),
            attr: AttrId(attr),
        }
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({}, {})", self.object, self.attr)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({}, {})", self.object, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        let v = VarId::new(5, 2);
        assert_eq!(v.to_string(), "Var(o5, a2)");
        assert_eq!(format!("{v:?}"), "Var(o5, a2)");
    }

    #[test]
    fn ordering_is_object_major() {
        let a = VarId::new(1, 9);
        let b = VarId::new(2, 0);
        assert!(a < b);
        assert!(VarId::new(1, 0) < a);
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(ObjectId(7).index(), 7);
        assert_eq!(AttrId(3).index(), 3);
    }
}
