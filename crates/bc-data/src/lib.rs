#![warn(missing_docs)]
//! Incomplete-data substrate for the BayesCrowd reproduction.
//!
//! This crate provides the dataset model shared by every other crate in the
//! workspace:
//!
//! * [`Dataset`] — a table of objects over discrete attribute [`Domain`]s in
//!   which individual cells may be *missing* (the paper's `Var(o, a)`
//!   variables),
//! * missing-value injection ([`missing`]) for the MCAR experiments and the
//!   all-missing-attribute CrowdSky setting,
//! * complete-data skyline computation ([`skyline`]) used as ground truth,
//! * query-accuracy metrics ([`metrics`]), and
//! * workload generators ([`generators`]) standing in for the paper's NBA and
//!   classic synthetic datasets.
//!
//! Attribute values are small integers (`0..cardinality`, larger is better),
//! matching the paper's preprocessing step that discretizes continuous
//! domains before anything else runs.

pub mod csv;
pub mod dataset;
pub mod domain;
pub mod error;
pub mod generators;
pub mod ids;
pub mod metrics;
pub mod missing;
pub mod preference;
pub mod skyline;

pub use dataset::Dataset;
pub use domain::{Domain, Value, MAX_CARDINALITY};
pub use error::DataError;
pub use ids::{AttrId, ObjectId, VarId};
pub use metrics::Accuracy;
pub use preference::{normalize_directions, Direction};
