//! Query-accuracy metrics.
//!
//! The paper reports the F1 score of the returned answer set against the
//! skyline of the corresponding complete data.

use crate::ids::ObjectId;
use std::collections::HashSet;

/// Precision / recall / F1 of a returned answer set against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// Fraction of returned objects that are true answers.
    pub precision: f64,
    /// Fraction of true answers that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Accuracy {
    /// Computes accuracy of `result` against `truth` (order irrelevant).
    ///
    /// Conventions for the degenerate cases: an empty result has precision 1;
    /// an empty truth has recall 1; F1 is 0 when precision + recall is 0.
    pub fn of(result: &[ObjectId], truth: &[ObjectId]) -> Accuracy {
        let result: HashSet<ObjectId> = result.iter().copied().collect();
        let truth_set: HashSet<ObjectId> = truth.iter().copied().collect();
        let tp = result.intersection(&truth_set).count() as f64;
        let precision = if result.is_empty() {
            1.0
        } else {
            tp / result.len() as f64
        };
        let recall = if truth_set.is_empty() {
            1.0
        } else {
            tp / truth_set.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Accuracy {
            precision,
            recall,
            f1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ObjectId> {
        v.iter().copied().map(ObjectId).collect()
    }

    #[test]
    fn perfect_match() {
        let a = Accuracy::of(&ids(&[1, 2, 3]), &ids(&[3, 2, 1]));
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 1.0);
        assert_eq!(a.f1, 1.0);
    }

    #[test]
    fn partial_overlap() {
        let a = Accuracy::of(&ids(&[1, 2]), &ids(&[2, 3, 4]));
        assert!((a.precision - 0.5).abs() < 1e-12);
        assert!((a.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.f1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_are_zero() {
        let a = Accuracy::of(&ids(&[1]), &ids(&[2]));
        assert_eq!(a.f1, 0.0);
    }

    #[test]
    fn empty_result_and_truth_conventions() {
        let a = Accuracy::of(&[], &ids(&[1]));
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 0.0);
        let b = Accuracy::of(&ids(&[1]), &[]);
        assert_eq!(b.recall, 1.0);
        let c = Accuracy::of(&[], &[]);
        assert_eq!(c.f1, 1.0);
    }

    #[test]
    fn duplicates_are_ignored() {
        let a = Accuracy::of(&ids(&[1, 1, 2]), &ids(&[1, 2]));
        assert_eq!(a.f1, 1.0);
    }
}
