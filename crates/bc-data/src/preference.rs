//! Preference-direction handling.
//!
//! The paper assumes "the larger the value, the better" and notes the
//! solution "likewise does work for the case of preferring smaller values".
//! This module realizes that by *reflecting* minimized attributes
//! (`v ↦ max − v`) so that the entire pipeline can keep its larger-is-better
//! convention.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::ids::AttrId;

/// Which direction an attribute is optimized in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (the paper's default).
    Maximize,
    /// Smaller values are better.
    Minimize,
}

/// Returns a copy of `data` in which every `Minimize` attribute is
/// reflected (`v ↦ max_value − v`), making the standard larger-is-better
/// skyline over the result equivalent to the mixed-direction skyline over
/// the input. Reflecting is an involution: applying the same directions
/// twice restores the original dataset.
///
/// # Errors
///
/// Returns [`DataError::IndexOutOfBounds`] via the underlying setters if
/// `directions` has the wrong arity.
pub fn normalize_directions(
    data: &Dataset,
    directions: &[Direction],
) -> Result<Dataset, DataError> {
    if directions.len() != data.n_attrs() {
        return Err(DataError::RowArity {
            object: 0,
            found: directions.len(),
            expected: data.n_attrs(),
        });
    }
    let mut out = data.clone();
    for (a, &dir) in directions.iter().enumerate() {
        if dir == Direction::Maximize {
            continue;
        }
        let attr = AttrId(a as u16);
        let max = data.domain(attr).max_value();
        for o in data.objects() {
            if let Some(v) = data.get(o, attr) {
                out.set(o, attr, Some(max - v))?;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::uniform_domains;
    use crate::ids::ObjectId;
    use crate::skyline::skyline_bnl;

    fn ds(rows: Vec<Vec<u16>>) -> Dataset {
        let d = rows[0].len();
        Dataset::from_complete_rows("t", uniform_domains(d, 10).unwrap(), rows).unwrap()
    }

    #[test]
    fn minimize_flips_the_winner() {
        // Price (minimize) and quality (maximize): the cheap high-quality
        // item must win after normalization.
        let data = ds(vec![
            vec![9, 3], // expensive, mediocre
            vec![1, 3], // cheap, same quality → dominates under min-price
            vec![5, 9],
        ]);
        let norm =
            normalize_directions(&data, &[Direction::Minimize, Direction::Maximize]).unwrap();
        let sky = skyline_bnl(&norm).unwrap();
        assert!(sky.contains(&ObjectId(1)));
        assert!(
            !sky.contains(&ObjectId(0)),
            "dominated once price is minimized"
        );
        assert!(sky.contains(&ObjectId(2)));
    }

    #[test]
    fn normalization_is_an_involution() {
        let mut data = ds(vec![vec![3, 7], vec![0, 9]]);
        data.set(ObjectId(0), AttrId(1), None).unwrap();
        let dirs = [Direction::Minimize, Direction::Minimize];
        let twice =
            normalize_directions(&normalize_directions(&data, &dirs).unwrap(), &dirs).unwrap();
        assert_eq!(twice, data);
    }

    #[test]
    fn missing_cells_stay_missing() {
        let mut data = ds(vec![vec![3, 7]]);
        data.set(ObjectId(0), AttrId(0), None).unwrap();
        let norm =
            normalize_directions(&data, &[Direction::Minimize, Direction::Minimize]).unwrap();
        assert_eq!(norm.get(ObjectId(0), AttrId(0)), None);
        assert_eq!(norm.get(ObjectId(0), AttrId(1)), Some(2));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let data = ds(vec![vec![1, 2]]);
        assert!(normalize_directions(&data, &[Direction::Maximize]).is_err());
    }

    #[test]
    fn all_maximize_is_identity() {
        let data = ds(vec![vec![1, 2], vec![3, 4]]);
        let norm =
            normalize_directions(&data, &[Direction::Maximize, Direction::Maximize]).unwrap();
        assert_eq!(norm, data);
    }
}
