//! Plain-text import/export of incomplete datasets.
//!
//! A deliberately tiny CSV dialect (no quoting, comma-separated) so real
//! datasets like the NBA table can be dropped in: the first line holds
//! `name:cardinality` headers, each following line one object, `?` marking a
//! missing value.
//!
//! ```text
//! points:10,rebounds:10,assists:10
//! 5,2,3
//! 6,?,2
//! ```

use crate::dataset::Dataset;
use crate::domain::Domain;
use crate::error::DataError;
use crate::ids::ObjectId;
use std::fmt::Write as _;

/// Errors specific to the CSV dialect (wrapping [`DataError`] for the
/// structural checks).
#[derive(Debug)]
pub enum CsvError {
    /// A header cell was not of the form `name:cardinality`.
    BadHeader {
        /// The offending cell.
        cell: String,
    },
    /// A value cell was neither an integer nor `?`.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending cell.
        cell: String,
    },
    /// The dataset itself was malformed.
    Data(DataError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader { cell } => {
                write!(f, "header cell {cell:?} is not `name:cardinality`")
            }
            CsvError::BadValue { line, cell } => {
                write!(f, "line {line}: cell {cell:?} is not an integer or `?`")
            }
            CsvError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<DataError> for CsvError {
    fn from(e: DataError) -> Self {
        CsvError::Data(e)
    }
}

/// Parses the dialect described in the module docs.
pub fn parse_csv(name: &str, text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().unwrap_or("");
    let mut domains = Vec::new();
    for cell in header.split(',') {
        let cell = cell.trim();
        let (attr_name, card) = cell.rsplit_once(':').ok_or_else(|| CsvError::BadHeader {
            cell: cell.to_string(),
        })?;
        let card: u16 = card.parse().map_err(|_| CsvError::BadHeader {
            cell: cell.to_string(),
        })?;
        domains.push(Domain::new(attr_name.trim(), card)?);
    }

    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let mut row = Vec::with_capacity(domains.len());
        for cell in line.split(',') {
            let cell = cell.trim();
            if cell == "?" {
                row.push(None);
            } else {
                let v: u16 = cell.parse().map_err(|_| CsvError::BadValue {
                    line: i + 2,
                    cell: cell.to_string(),
                })?;
                row.push(Some(v));
            }
        }
        rows.push(row);
    }
    Ok(Dataset::from_rows(name, domains, rows)?)
}

/// Serializes a dataset back into the dialect ([`parse_csv`] round-trips).
pub fn to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = data
        .domains()
        .iter()
        .map(|d| format!("{}:{}", d.name(), d.cardinality()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for o in 0..data.n_objects() {
        let row: Vec<String> = data
            .row(ObjectId(o as u32))
            .iter()
            .map(|c| match c {
                Some(v) => v.to_string(),
                None => "?".to_string(),
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::sample::paper_dataset;
    use crate::ids::AttrId;

    #[test]
    fn parses_the_module_example() {
        let text = "points:10,rebounds:10,assists:10\n5,2,3\n6,?,2\n";
        let ds = parse_csv("nba", text).unwrap();
        assert_eq!(ds.n_objects(), 2);
        assert_eq!(ds.n_attrs(), 3);
        assert_eq!(ds.domain(AttrId(0)).name(), "points");
        assert_eq!(ds.get(ObjectId(1), AttrId(1)), None);
        assert_eq!(ds.get(ObjectId(0), AttrId(2)), Some(3));
    }

    #[test]
    fn roundtrips_the_paper_sample() {
        let ds = paper_dataset();
        let text = to_csv(&ds);
        let back = parse_csv(ds.name(), &text).unwrap();
        assert_eq!(back.domains(), ds.domains());
        for o in ds.objects() {
            assert_eq!(back.row(o), ds.row(o));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_csv("x", "noheader\n1\n"),
            Err(CsvError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_csv("x", "a:4\nxyz\n"),
            Err(CsvError::BadValue { line: 2, .. })
        ));
        assert!(matches!(
            parse_csv("x", "a:4\n9\n"),
            Err(CsvError::Data(DataError::ValueOutOfDomain { .. }))
        ));
        assert!(matches!(
            parse_csv("x", "a:4,b:4\n1\n"),
            Err(CsvError::Data(DataError::RowArity { .. }))
        ));
        assert!(matches!(
            parse_csv("x", "a:0\n"),
            Err(CsvError::Data(DataError::InvalidDomain { .. }))
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ds = parse_csv("x", "\na:4\n\n1\n\n2\n").unwrap();
        assert_eq!(ds.n_objects(), 2);
    }
}
