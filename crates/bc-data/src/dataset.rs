//! The incomplete dataset: objects over discrete domains with missing cells.

use crate::domain::{Domain, Value};
use crate::error::DataError;
use crate::ids::{AttrId, ObjectId, VarId};

/// A (possibly incomplete) dataset `O` of objects over discrete attributes.
///
/// Cells are stored row-major; `None` marks a missing value — the paper's
/// `Var(o, a)` variable. Larger values are better for the skyline query.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    name: String,
    domains: Vec<Domain>,
    cells: Vec<Option<Value>>,
    n_objects: usize,
}

impl Dataset {
    /// Creates a dataset from rows. Each row must have one entry per domain
    /// and every observed value must lie inside its domain.
    pub fn from_rows(
        name: impl Into<String>,
        domains: Vec<Domain>,
        rows: Vec<Vec<Option<Value>>>,
    ) -> Result<Self, DataError> {
        let d = domains.len();
        let mut cells = Vec::with_capacity(rows.len() * d);
        for (oi, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(DataError::RowArity {
                    object: oi,
                    found: row.len(),
                    expected: d,
                });
            }
            for (ai, &cell) in row.iter().enumerate() {
                if let Some(v) = cell {
                    if !domains[ai].contains(v) {
                        return Err(DataError::ValueOutOfDomain {
                            object: oi,
                            attr: ai,
                            value: v,
                            cardinality: domains[ai].cardinality(),
                        });
                    }
                }
                cells.push(cell);
            }
        }
        Ok(Dataset {
            name: name.into(),
            domains,
            cells,
            n_objects: rows.len(),
        })
    }

    /// Creates a complete dataset from fully observed rows.
    pub fn from_complete_rows(
        name: impl Into<String>,
        domains: Vec<Domain>,
        rows: Vec<Vec<Value>>,
    ) -> Result<Self, DataError> {
        let rows = rows
            .into_iter()
            .map(|r| r.into_iter().map(Some).collect())
            .collect();
        Self::from_rows(name, domains, rows)
    }

    /// Dataset name (for reports).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of objects `|O|`.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of attributes `d`.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.domains.len()
    }

    /// All attribute domains, in column order.
    #[inline]
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The domain of attribute `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of bounds.
    #[inline]
    pub fn domain(&self, a: AttrId) -> &Domain {
        &self.domains[a.index()]
    }

    /// The cell `(o, a)`: `Some(v)` if observed, `None` if missing.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, o: ObjectId, a: AttrId) -> Option<Value> {
        self.cells[o.index() * self.n_attrs() + a.index()]
    }

    /// Overwrites cell `(o, a)`.
    ///
    /// # Errors
    ///
    /// Fails if indices are out of bounds or the value is outside the domain.
    pub fn set(&mut self, o: ObjectId, a: AttrId, cell: Option<Value>) -> Result<(), DataError> {
        if o.index() >= self.n_objects {
            return Err(DataError::IndexOutOfBounds {
                what: "object",
                index: o.index(),
                len: self.n_objects,
            });
        }
        if a.index() >= self.n_attrs() {
            return Err(DataError::IndexOutOfBounds {
                what: "attribute",
                index: a.index(),
                len: self.n_attrs(),
            });
        }
        if let Some(v) = cell {
            if !self.domains[a.index()].contains(v) {
                return Err(DataError::ValueOutOfDomain {
                    object: o.index(),
                    attr: a.index(),
                    value: v,
                    cardinality: self.domains[a.index()].cardinality(),
                });
            }
        }
        let d = self.n_attrs();
        self.cells[o.index() * d + a.index()] = cell;
        Ok(())
    }

    /// The full row of object `o` (one entry per attribute).
    #[inline]
    pub fn row(&self, o: ObjectId) -> &[Option<Value>] {
        let d = self.n_attrs();
        &self.cells[o.index() * d..(o.index() + 1) * d]
    }

    /// Iterator over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.n_objects as u32).map(ObjectId)
    }

    /// Iterator over all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> {
        (0..self.n_attrs() as u16).map(AttrId)
    }

    /// All missing-cell variables, in row-major order.
    pub fn missing_vars(&self) -> Vec<VarId> {
        let d = self.n_attrs();
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| VarId::new((i / d) as u32, (i % d) as u16))
            .collect()
    }

    /// Number of missing cells.
    pub fn n_missing(&self) -> usize {
        self.cells.iter().filter(|c| c.is_none()).count()
    }

    /// The paper's *missing rate*: missing cells over total cells.
    pub fn missing_rate(&self) -> f64 {
        if self.cells.is_empty() {
            0.0
        } else {
            self.n_missing() as f64 / self.cells.len() as f64
        }
    }

    /// Whether every cell is observed.
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| c.is_some())
    }

    /// Keeps only the first `n` objects (used by the cardinality sweeps).
    pub fn truncated(&self, n: usize) -> Dataset {
        let n = n.min(self.n_objects);
        let d = self.n_attrs();
        Dataset {
            name: self.name.clone(),
            domains: self.domains.clone(),
            cells: self.cells[..n * d].to_vec(),
            n_objects: n,
        }
    }

    /// Keeps only the given attribute columns, in the given order.
    pub fn project(&self, attrs: &[AttrId]) -> Result<Dataset, DataError> {
        for &a in attrs {
            if a.index() >= self.n_attrs() {
                return Err(DataError::IndexOutOfBounds {
                    what: "attribute",
                    index: a.index(),
                    len: self.n_attrs(),
                });
            }
        }
        let domains = attrs
            .iter()
            .map(|&a| self.domains[a.index()].clone())
            .collect();
        let mut cells = Vec::with_capacity(self.n_objects * attrs.len());
        for o in self.objects() {
            let row = self.row(o);
            cells.extend(attrs.iter().map(|&a| row[a.index()]));
        }
        Ok(Dataset {
            name: self.name.clone(),
            domains,
            cells,
            n_objects: self.n_objects,
        })
    }

    /// Rows where *every* attribute is observed, as dense value vectors.
    /// This is the listwise-deleted view used for Bayesian-network training.
    pub fn complete_rows(&self) -> Vec<Vec<Value>> {
        self.objects()
            .filter_map(|o| {
                let row = self.row(o);
                row.iter().copied().collect::<Option<Vec<Value>>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::uniform_domains;

    fn tiny() -> Dataset {
        Dataset::from_rows(
            "t",
            uniform_domains(3, 8).unwrap(),
            vec![
                vec![Some(1), Some(2), Some(3)],
                vec![Some(4), None, Some(6)],
                vec![None, None, Some(0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn get_set_roundtrip() {
        let mut d = tiny();
        assert_eq!(d.get(ObjectId(1), AttrId(1)), None);
        d.set(ObjectId(1), AttrId(1), Some(7)).unwrap();
        assert_eq!(d.get(ObjectId(1), AttrId(1)), Some(7));
        assert!(d.set(ObjectId(1), AttrId(1), Some(8)).is_err());
        assert!(d.set(ObjectId(9), AttrId(0), Some(0)).is_err());
        assert!(d.set(ObjectId(0), AttrId(9), Some(0)).is_err());
    }

    #[test]
    fn missing_accounting() {
        let d = tiny();
        assert_eq!(d.n_missing(), 3);
        assert!((d.missing_rate() - 3.0 / 9.0).abs() < 1e-12);
        assert_eq!(
            d.missing_vars(),
            vec![VarId::new(1, 1), VarId::new(2, 0), VarId::new(2, 1)]
        );
        assert!(!d.is_complete());
    }

    #[test]
    fn rejects_bad_rows() {
        let doms = uniform_domains(2, 4).unwrap();
        assert!(Dataset::from_rows("x", doms.clone(), vec![vec![Some(0)]]).is_err());
        assert!(Dataset::from_rows("x", doms, vec![vec![Some(0), Some(4)]]).is_err());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = tiny().truncated(2);
        assert_eq!(d.n_objects(), 2);
        assert_eq!(d.row(ObjectId(1)), &[Some(4), None, Some(6)]);
        assert_eq!(tiny().truncated(99).n_objects(), 3);
    }

    #[test]
    fn project_reorders_columns() {
        let d = tiny().project(&[AttrId(2), AttrId(0)]).unwrap();
        assert_eq!(d.n_attrs(), 2);
        assert_eq!(d.row(ObjectId(0)), &[Some(3), Some(1)]);
        assert!(tiny().project(&[AttrId(5)]).is_err());
    }

    #[test]
    fn complete_rows_listwise_deletes() {
        let rows = tiny().complete_rows();
        assert_eq!(rows, vec![vec![1, 2, 3]]);
    }
}
