//! Discrete attribute domains.
//!
//! BayesCrowd's preprocessing step discretizes every attribute into a small
//! ordered set of values `0..cardinality` where *larger is better* (the
//! paper's dominance convention). Keeping cardinality at or below
//! [`MAX_CARDINALITY`] lets the rest of the workspace represent "set of still
//! possible values" as a single `u64` bitmask, which is what makes constraint
//! propagation after crowd answers cheap.

use crate::error::DataError;

/// A discretized attribute value. Values range over `0..cardinality` of the
/// owning [`Domain`]; larger values are preferred by the skyline query.
pub type Value = u16;

/// Maximum number of distinct values an attribute domain may have.
///
/// Chosen so a set of candidate values fits in one `u64` bitmask.
pub const MAX_CARDINALITY: u16 = 64;

/// An attribute's name and discrete value domain `0..cardinality`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    name: String,
    cardinality: u16,
}

impl Domain {
    /// Creates a domain with `cardinality` distinct values.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidDomain`] if `cardinality` is zero or
    /// exceeds [`MAX_CARDINALITY`].
    pub fn new(name: impl Into<String>, cardinality: u16) -> Result<Self, DataError> {
        let name = name.into();
        if cardinality == 0 || cardinality > MAX_CARDINALITY {
            return Err(DataError::InvalidDomain { name, cardinality });
        }
        Ok(Domain { name, cardinality })
    }

    /// The attribute's human-readable name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct values; valid values are `0..cardinality`.
    #[inline]
    pub fn cardinality(&self) -> u16 {
        self.cardinality
    }

    /// The largest valid value of this domain.
    #[inline]
    pub fn max_value(&self) -> Value {
        self.cardinality - 1
    }

    /// Whether `v` is a valid value of this domain.
    #[inline]
    pub fn contains(&self, v: Value) -> bool {
        v < self.cardinality
    }

    /// Bitmask with one bit set per valid value (bit `i` = value `i`).
    #[inline]
    pub fn full_mask(&self) -> u64 {
        if self.cardinality == 64 {
            u64::MAX
        } else {
            (1u64 << self.cardinality) - 1
        }
    }

    /// Iterator over every value of the domain, ascending.
    pub fn values(&self) -> impl Iterator<Item = Value> {
        0..self.cardinality
    }
}

/// Builds `d` identically-sized domains named `a1..ad`, mirroring the paper's
/// attribute naming.
pub fn uniform_domains(d: usize, cardinality: u16) -> Result<Vec<Domain>, DataError> {
    (1..=d)
        .map(|i| Domain::new(format!("a{i}"), cardinality))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_and_oversized_cardinality() {
        assert!(Domain::new("a", 0).is_err());
        assert!(Domain::new("a", 65).is_err());
        assert!(Domain::new("a", 64).is_ok());
    }

    #[test]
    fn full_mask_covers_exactly_the_domain() {
        let d = Domain::new("a", 10).unwrap();
        assert_eq!(d.full_mask(), 0b11_1111_1111);
        let d64 = Domain::new("a", 64).unwrap();
        assert_eq!(d64.full_mask(), u64::MAX);
    }

    #[test]
    fn contains_and_max_value() {
        let d = Domain::new("a", 8).unwrap();
        assert!(d.contains(7));
        assert!(!d.contains(8));
        assert_eq!(d.max_value(), 7);
        assert_eq!(d.values().count(), 8);
    }

    #[test]
    fn uniform_domains_names_match_paper() {
        let ds = uniform_domains(3, 5).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0].name(), "a1");
        assert_eq!(ds[2].name(), "a3");
    }
}
