//! Missing-value injection.
//!
//! Following the paper's experimental setup, missing information is injected
//! *randomly over objects and attributes* (MCAR) at a target missing rate.
//! For the CrowdSky comparison the paper instead blanks out *entire
//! attributes* ("crowd attributes"); [`mask_attributes`] reproduces that.

use crate::dataset::Dataset;
use crate::ids::{AttrId, ObjectId, VarId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns a copy of `complete` with `rate * |O| * d` cells (rounded) deleted
/// uniformly at random, and the list of deleted variables.
///
/// `complete` is typically a fully observed dataset but already-missing cells
/// are simply never re-deleted, so the function also composes.
pub fn inject_mcar(complete: &Dataset, rate: f64, seed: u64) -> (Dataset, Vec<VarId>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = complete.n_attrs();
    let total = complete.n_objects() * d;
    let target = ((rate.clamp(0.0, 1.0)) * total as f64).round() as usize;

    let mut observed: Vec<usize> = (0..total)
        .filter(|&i| {
            complete
                .get(ObjectId((i / d) as u32), AttrId((i % d) as u16))
                .is_some()
        })
        .collect();
    observed.shuffle(&mut rng);
    observed.truncate(target);

    let mut out = complete.clone();
    let mut deleted = Vec::with_capacity(observed.len());
    for i in observed {
        let o = ObjectId((i / d) as u32);
        let a = AttrId((i % d) as u16);
        out.set(o, a, None)
            .expect("indices derive from the dataset itself");
        deleted.push(VarId { object: o, attr: a });
    }
    deleted.sort_unstable();
    (out, deleted)
}

/// Returns a copy of `complete` with every cell of the given attributes
/// deleted — the CrowdSky-style observed/crowd attribute split.
pub fn mask_attributes(complete: &Dataset, crowd_attrs: &[AttrId]) -> Dataset {
    let mut out = complete.clone();
    for o in complete.objects() {
        for &a in crowd_attrs {
            out.set(o, a, None).expect("attribute ids must be valid");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::uniform_domains;

    fn complete(n: usize, d: usize) -> Dataset {
        let rows = (0..n)
            .map(|i| (0..d).map(|j| ((i + j) % 8) as u16).collect())
            .collect();
        Dataset::from_complete_rows("c", uniform_domains(d, 8).unwrap(), rows).unwrap()
    }

    #[test]
    fn mcar_hits_target_rate() {
        let c = complete(100, 5);
        let (inc, deleted) = inject_mcar(&c, 0.1, 42);
        assert_eq!(inc.n_missing(), 50);
        assert_eq!(deleted.len(), 50);
        assert!((inc.missing_rate() - 0.1).abs() < 1e-9);
        for v in &deleted {
            assert_eq!(inc.get(v.object, v.attr), None);
            assert!(c.get(v.object, v.attr).is_some());
        }
    }

    #[test]
    fn mcar_is_deterministic_per_seed() {
        let c = complete(50, 4);
        let (a, _) = inject_mcar(&c, 0.2, 7);
        let (b, _) = inject_mcar(&c, 0.2, 7);
        assert_eq!(a, b);
        let (c2, _) = inject_mcar(&c, 0.2, 8);
        assert_ne!(a, c2);
    }

    #[test]
    fn mcar_rate_extremes() {
        let c = complete(10, 3);
        let (zero, del) = inject_mcar(&c, 0.0, 1);
        assert!(zero.is_complete());
        assert!(del.is_empty());
        let (all, del) = inject_mcar(&c, 1.0, 1);
        assert_eq!(all.n_missing(), 30);
        assert_eq!(del.len(), 30);
    }

    #[test]
    fn mask_attributes_blanks_whole_columns() {
        let c = complete(10, 4);
        let m = mask_attributes(&c, &[AttrId(1), AttrId(3)]);
        for o in m.objects() {
            assert_eq!(m.get(o, AttrId(1)), None);
            assert_eq!(m.get(o, AttrId(3)), None);
            assert!(m.get(o, AttrId(0)).is_some());
            assert!(m.get(o, AttrId(2)).is_some());
        }
        assert!((m.missing_rate() - 0.5).abs() < 1e-12);
    }
}
