//! Complete-data dominance and skyline computation.
//!
//! The paper evaluates accuracy against "the query result derived based on
//! the corresponding *complete* data", so this module is the ground-truth
//! oracle of the whole reproduction. Two independent algorithms are provided
//! (block-nested-loop and sort-filter-skyline) and cross-checked by property
//! tests.

use crate::dataset::Dataset;
use crate::domain::Value;
use crate::error::DataError;
use crate::ids::ObjectId;

/// Dominance over complete rows (Definition 1): `a` dominates `b` iff `a` is
/// not worse anywhere and strictly better somewhere. Larger is better.
#[inline]
pub fn dominates(a: &[Value], b: &[Value]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Extracts the dense rows of a complete dataset.
fn dense_rows(data: &Dataset) -> Result<Vec<Vec<Value>>, DataError> {
    data.objects()
        .map(|o| {
            data.row(o)
                .iter()
                .copied()
                .collect::<Option<Vec<Value>>>()
                .ok_or(DataError::IncompleteData {
                    operation: "skyline",
                })
        })
        .collect()
}

/// Skyline by block-nested-loop over a complete dataset (Definition 2).
///
/// ```
/// use bc_data::{Dataset, ObjectId, domain::uniform_domains, skyline::skyline_bnl};
///
/// // The paper's intro example: m2 and m3 are the skyline movies.
/// let movies = Dataset::from_complete_rows(
///     "movies",
///     uniform_domains(3, 10).unwrap(),
///     vec![vec![3, 2, 1], vec![4, 2, 3], vec![2, 3, 2]],
/// )
/// .unwrap();
/// assert_eq!(skyline_bnl(&movies).unwrap(), vec![ObjectId(1), ObjectId(2)]);
/// ```
///
/// # Errors
///
/// Returns [`DataError::IncompleteData`] if any cell is missing.
pub fn skyline_bnl(data: &Dataset) -> Result<Vec<ObjectId>, DataError> {
    let rows = dense_rows(data)?;
    let mut out = Vec::new();
    'outer: for (i, r) in rows.iter().enumerate() {
        for (j, s) in rows.iter().enumerate() {
            if i != j && dominates(s, r) {
                continue 'outer;
            }
        }
        out.push(ObjectId(i as u32));
    }
    Ok(out)
}

/// Skyline by sort-filter-skyline: rows are visited in descending order of
/// coordinate sum, so a row can only be dominated by an earlier-visited row.
/// Much faster than [`skyline_bnl`] when the skyline is small.
///
/// # Errors
///
/// Returns [`DataError::IncompleteData`] if any cell is missing.
pub fn skyline_sfs(data: &Dataset) -> Result<Vec<ObjectId>, DataError> {
    let rows = dense_rows(data)?;
    let mut order: Vec<usize> = (0..rows.len()).collect();
    // Descending sum; ties broken by index for determinism.
    order.sort_by_key(|&i| {
        let s: u64 = rows[i].iter().map(|&v| v as u64).sum();
        (std::cmp::Reverse(s), i)
    });

    let mut window: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        for &w in &window {
            if dominates(&rows[w], &rows[i]) {
                continue 'outer;
            }
        }
        window.push(i);
    }
    let mut out: Vec<ObjectId> = window.into_iter().map(|i| ObjectId(i as u32)).collect();
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::uniform_domains;

    fn ds(rows: Vec<Vec<Value>>) -> Dataset {
        let d = rows[0].len();
        Dataset::from_complete_rows("t", uniform_domains(d, 16).unwrap(), rows).unwrap()
    }

    #[test]
    fn dominance_definition() {
        assert!(dominates(&[4, 2, 3], &[3, 2, 1]));
        assert!(!dominates(&[3, 2, 1], &[4, 2, 3]));
        assert!(!dominates(&[1, 2], &[1, 2])); // equal: no strict better
        assert!(!dominates(&[5, 0], &[0, 5])); // incomparable
    }

    #[test]
    fn intro_movie_example() {
        // m1=(3,2,1), m2=(4,2,3), m3=(2,3,2): skyline is {m2, m3}.
        let data = ds(vec![vec![3, 2, 1], vec![4, 2, 3], vec![2, 3, 2]]);
        let sky = skyline_bnl(&data).unwrap();
        assert_eq!(sky, vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(skyline_sfs(&data).unwrap(), sky);
    }

    #[test]
    fn duplicate_rows_all_survive() {
        // Neither of two equal rows dominates the other.
        let data = ds(vec![vec![2, 2], vec![2, 2], vec![1, 1]]);
        let sky = skyline_bnl(&data).unwrap();
        assert_eq!(sky, vec![ObjectId(0), ObjectId(1)]);
        assert_eq!(skyline_sfs(&data).unwrap(), sky);
    }

    #[test]
    fn single_dominant_point() {
        let data = ds(vec![vec![9, 9], vec![1, 2], vec![3, 0]]);
        assert_eq!(skyline_bnl(&data).unwrap(), vec![ObjectId(0)]);
        assert_eq!(skyline_sfs(&data).unwrap(), vec![ObjectId(0)]);
    }

    #[test]
    fn incomplete_data_is_rejected() {
        let data = Dataset::from_rows(
            "t",
            uniform_domains(2, 4).unwrap(),
            vec![vec![Some(1), None]],
        )
        .unwrap();
        assert!(matches!(
            skyline_bnl(&data),
            Err(DataError::IncompleteData { .. })
        ));
        assert!(skyline_sfs(&data).is_err());
    }
}
