//! Classic skyline workloads (Borzsonyi et al.): independent, correlated,
//! and anti-correlated attribute distributions, discretized.

use crate::dataset::Dataset;
use crate::domain::{uniform_domains, Value};
use rand::Rng;
use rand::SeedableRng;

fn discretize(x: f64, cardinality: u16) -> Value {
    let max = (cardinality - 1) as f64;
    (x.clamp(0.0, 1.0) * max).round() as Value
}

/// `n` objects with `d` independently uniform attributes over `0..cardinality`.
pub fn independent(n: usize, d: usize, cardinality: u16, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows = (0..n)
        .map(|_| (0..d).map(|_| discretize(rng.gen(), cardinality)).collect())
        .collect();
    Dataset::from_complete_rows(
        "independent",
        uniform_domains(d, cardinality).unwrap(),
        rows,
    )
    .expect("generated values lie in the domain")
}

/// Correlated workload: attributes share a latent base value, so skylines are
/// small. `strength` in `[0, 1]` controls how tightly attributes track the
/// base.
pub fn correlated(n: usize, d: usize, cardinality: u16, strength: f64, seed: u64) -> Dataset {
    let s = strength.clamp(0.0, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows = (0..n)
        .map(|_| {
            let base: f64 = rng.gen();
            (0..d)
                .map(|_| {
                    let noise: f64 = rng.gen();
                    discretize(s * base + (1.0 - s) * noise, cardinality)
                })
                .collect()
        })
        .collect();
    Dataset::from_complete_rows("correlated", uniform_domains(d, cardinality).unwrap(), rows)
        .expect("generated values lie in the domain")
}

/// Anti-correlated workload: objects good in one attribute tend to be bad in
/// others, producing large skylines.
pub fn anticorrelated(n: usize, d: usize, cardinality: u16, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows = (0..n)
        .map(|_| {
            let base: f64 = rng.gen();
            (0..d)
                .map(|j| {
                    let noise: f64 = rng.gen::<f64>() * 0.3;
                    let x = if j % 2 == 0 { base } else { 1.0 - base };
                    discretize((x * 0.7 + noise).clamp(0.0, 1.0), cardinality)
                })
                .collect()
        })
        .collect();
    Dataset::from_complete_rows(
        "anticorrelated",
        uniform_domains(d, cardinality).unwrap(),
        rows,
    )
    .expect("generated values lie in the domain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline::skyline_sfs;

    #[test]
    fn shapes_and_determinism() {
        for ds in [
            independent(100, 4, 8, 3),
            correlated(100, 4, 8, 0.8, 3),
            anticorrelated(100, 4, 8, 3),
        ] {
            assert_eq!(ds.n_objects(), 100);
            assert_eq!(ds.n_attrs(), 4);
            assert!(ds.is_complete());
        }
        assert_eq!(independent(50, 3, 8, 1), independent(50, 3, 8, 1));
    }

    #[test]
    fn anticorrelated_has_larger_skyline_than_correlated() {
        let n = 800;
        let corr = skyline_sfs(&correlated(n, 4, 16, 0.9, 5)).unwrap().len();
        let anti = skyline_sfs(&anticorrelated(n, 4, 16, 5)).unwrap().len();
        assert!(
            anti > corr,
            "anti-correlated skyline ({anti}) should exceed correlated ({corr})"
        );
    }
}
