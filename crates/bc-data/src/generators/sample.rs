//! The paper's running example: five movies rated by five audiences
//! (Table 1), with five ratings missing.

use crate::dataset::Dataset;
use crate::domain::Domain;

/// Builds the attribute domains of the sample dataset.
///
/// Cardinalities follow Example 3 of the paper: `a2` ranges over `0..=9`,
/// `a3` over `0..=7`, and `a4` over `0..=5`; `a1`/`a5` get the movie-rating
/// range `0..=9`.
pub fn paper_domains() -> Vec<Domain> {
    vec![
        Domain::new("a1", 10).expect("static cardinality is valid"),
        Domain::new("a2", 10).expect("static cardinality is valid"),
        Domain::new("a3", 8).expect("static cardinality is valid"),
        Domain::new("a4", 6).expect("static cardinality is valid"),
        Domain::new("a5", 10).expect("static cardinality is valid"),
    ]
}

/// The incomplete sample dataset of Table 1.
///
/// ```text
/// o1  Schindler's List   5  2       3       4       1
/// o2  Se7en              6  Var     2       2       2
/// o3  The Godfather      1  1       Var     5       3
/// o4  The Lion King      4  3       1       2       1
/// o5  Star Wars          5  Var     Var     Var     1
/// ```
pub fn paper_dataset() -> Dataset {
    Dataset::from_rows(
        "paper-sample",
        paper_domains(),
        vec![
            vec![Some(5), Some(2), Some(3), Some(4), Some(1)],
            vec![Some(6), None, Some(2), Some(2), Some(2)],
            vec![Some(1), Some(1), None, Some(5), Some(3)],
            vec![Some(4), Some(3), Some(1), Some(2), Some(1)],
            vec![Some(5), None, None, None, Some(1)],
        ],
    )
    .expect("the static sample dataset is well-formed")
}

/// A completion of [`paper_dataset`] consistent with the crowd answers the
/// paper assumes in Example 4 (`Var(o5,a4) < 4`, `Var(o5,a3) = 3`,
/// `Var(o5,a2) > 2`, `Var(o2,a2) > 3`).
///
/// Under this completion the true skyline is `{o1, o2, o3, o5}`, matching
/// the paper's final updated c-table (Table 5 after the second iteration).
pub fn paper_completion() -> Dataset {
    Dataset::from_complete_rows(
        "paper-sample-complete",
        paper_domains(),
        vec![
            vec![5, 2, 3, 4, 1],
            vec![6, 4, 2, 2, 2],
            vec![1, 1, 4, 5, 3],
            vec![4, 3, 1, 2, 1],
            vec![5, 4, 3, 2, 1],
        ],
    )
    .expect("the static completion is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, ObjectId};
    use crate::skyline::skyline_bnl;

    #[test]
    fn sample_matches_table_1() {
        let d = paper_dataset();
        assert_eq!(d.n_objects(), 5);
        assert_eq!(d.n_attrs(), 5);
        assert_eq!(d.n_missing(), 5);
        assert_eq!(d.get(ObjectId(1), AttrId(1)), None);
        assert_eq!(d.get(ObjectId(2), AttrId(2)), None);
        assert_eq!(d.get(ObjectId(4), AttrId(1)), None);
        assert_eq!(d.get(ObjectId(4), AttrId(2)), None);
        assert_eq!(d.get(ObjectId(4), AttrId(3)), None);
        assert_eq!(d.get(ObjectId(0), AttrId(0)), Some(5));
    }

    #[test]
    fn completion_agrees_on_observed_cells() {
        let inc = paper_dataset();
        let com = paper_completion();
        for o in inc.objects() {
            for a in inc.attrs() {
                if let Some(v) = inc.get(o, a) {
                    assert_eq!(com.get(o, a), Some(v));
                }
            }
        }
        assert!(com.is_complete());
    }

    #[test]
    fn completion_skyline_matches_paper_outcome() {
        let sky = skyline_bnl(&paper_completion()).unwrap();
        assert_eq!(
            sky,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
        );
    }
}
