//! Workload generators.
//!
//! * [`sample`] — the paper's running example (Table 1) plus a hidden
//!   completion consistent with the crowd answers of Example 4.
//! * [`nba`] — an NBA-like generator: 11 correlated, discretized per-player
//!   statistics, standing in for the real 10,000-record NBA dataset.
//! * [`classic`] — the standard skyline workloads (independent, correlated,
//!   anti-correlated) from Borzsonyi et al.

pub mod classic;
pub mod nba;
pub mod sample;
