//! NBA-like workload generator.
//!
//! The paper's real NBA dataset (10,000 player-competition records, eleven
//! attributes such as total points and total rebounds) is not redistributable
//! here, so this generator produces a synthetic equivalent with the property
//! the algorithms actually depend on: the eleven statistics of one player are
//! *correlated* (good players are good at many things), which is exactly what
//! the Bayesian network is meant to capture.
//!
//! Each record draws a latent skill `u`, and every statistic mixes `u` with
//! independent noise before discretization into `0..CARDINALITY`. Defensive
//! liabilities (turnovers, fouls) mix negatively so the dataset is not a
//! single global order.

use crate::dataset::Dataset;
use crate::domain::{Domain, Value};
use rand::Rng;
use rand::SeedableRng;

/// Number of attributes, matching the paper's eleven NBA statistics.
pub const NBA_ATTRS: usize = 11;

/// Discretized domain cardinality used for every statistic.
pub const NBA_CARDINALITY: u16 = 10;

const ATTR_NAMES: [&str; NBA_ATTRS] = [
    "points",
    "rebounds",
    "assists",
    "steals",
    "blocks",
    "fg_pct",
    "ft_pct",
    "three_pct",
    "minutes",
    "games",
    "low_turnovers",
];

/// Per-attribute weight of the latent skill; negative weights model
/// liabilities re-expressed as "larger is better" scores.
const SKILL_WEIGHT: [f64; NBA_ATTRS] =
    [0.75, 0.65, 0.55, 0.5, 0.5, 0.6, 0.55, 0.45, 0.7, 0.6, -0.35];

/// Generates `n` complete NBA-like records with seeded determinism.
pub fn nba_like(n: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let domains: Vec<Domain> = ATTR_NAMES
        .iter()
        .map(|name| Domain::new(*name, NBA_CARDINALITY).expect("static cardinality is valid"))
        .collect();

    let max = (NBA_CARDINALITY - 1) as f64;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let skill: f64 = rng.gen();
        let mut row = Vec::with_capacity(NBA_ATTRS);
        for w in SKILL_WEIGHT {
            let noise: f64 = rng.gen();
            // Mix skill and noise, folding negative weights around 1 - skill.
            let base = if w >= 0.0 { skill } else { 1.0 - skill };
            let mix = w.abs() * base + (1.0 - w.abs()) * noise;
            let v = (mix * max).round().clamp(0.0, max) as Value;
            row.push(v);
        }
        rows.push(row);
    }
    Dataset::from_complete_rows("nba-like", domains, rows)
        .expect("generated values are clamped into the domain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;

    #[test]
    fn shape_matches_paper_dataset() {
        let d = nba_like(200, 1);
        assert_eq!(d.n_objects(), 200);
        assert_eq!(d.n_attrs(), NBA_ATTRS);
        assert!(d.is_complete());
        assert_eq!(d.domain(AttrId(0)).cardinality(), NBA_CARDINALITY);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(nba_like(50, 9), nba_like(50, 9));
        assert_ne!(nba_like(50, 9), nba_like(50, 10));
    }

    #[test]
    fn statistics_are_positively_correlated() {
        // Pearson correlation between points and rebounds should be clearly
        // positive — this is what makes the Bayesian network useful.
        let d = nba_like(2000, 7);
        let xs: Vec<f64> = d
            .objects()
            .map(|o| d.get(o, AttrId(0)).unwrap() as f64)
            .collect();
        let ys: Vec<f64> = d
            .objects()
            .map(|o| d.get(o, AttrId(1)).unwrap() as f64)
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        let sx = (xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|y| (y - my).powi(2)).sum::<f64>() / n).sqrt();
        let r = cov / (sx * sy);
        assert!(r > 0.3, "expected positive correlation, got {r}");
    }

    #[test]
    fn liability_attribute_is_anticorrelated_with_skill() {
        let d = nba_like(2000, 7);
        let xs: Vec<f64> = d
            .objects()
            .map(|o| d.get(o, AttrId(0)).unwrap() as f64)
            .collect();
        let ys: Vec<f64> = d
            .objects()
            .map(|o| d.get(o, AttrId(10)).unwrap() as f64)
            .collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        assert!(cov < 0.0, "low_turnovers should anticorrelate, got {cov}");
    }
}
