//! Error type for dataset construction and queries.

use std::fmt;

/// Errors raised by the data substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// A domain was declared with an unusable cardinality.
    InvalidDomain {
        /// Attribute name.
        name: String,
        /// The offending cardinality.
        cardinality: u16,
    },
    /// A cell value lies outside its attribute domain.
    ValueOutOfDomain {
        /// Row index.
        object: usize,
        /// Column index.
        attr: usize,
        /// The offending value.
        value: u16,
        /// The domain's cardinality.
        cardinality: u16,
    },
    /// A row had the wrong number of columns.
    RowArity {
        /// Row index.
        object: usize,
        /// Columns found in the row.
        found: usize,
        /// Columns expected (number of domains).
        expected: usize,
    },
    /// An object or attribute index was out of bounds.
    IndexOutOfBounds {
        /// Description of what was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// An operation that requires complete data met a missing cell.
    IncompleteData {
        /// Description of the operation.
        operation: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidDomain { name, cardinality } => write!(
                f,
                "domain {name:?} has invalid cardinality {cardinality} (must be 1..=64)"
            ),
            DataError::ValueOutOfDomain {
                object,
                attr,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} at (object {object}, attr {attr}) exceeds domain cardinality {cardinality}"
            ),
            DataError::RowArity {
                object,
                found,
                expected,
            } => write!(
                f,
                "row {object} has {found} columns, expected {expected}"
            ),
            DataError::IndexOutOfBounds { what, index, len } => {
                write!(f, "{what} index {index} out of bounds (len {len})")
            }
            DataError::IncompleteData { operation } => {
                write!(f, "{operation} requires complete data but met a missing cell")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DataError::InvalidDomain {
            name: "pts".into(),
            cardinality: 0,
        };
        assert!(e.to_string().contains("pts"));
        let e = DataError::IncompleteData {
            operation: "skyline",
        };
        assert!(e.to_string().contains("skyline"));
    }
}
