//! Skyline layers over the observed attributes.

use bc_data::{AttrId, Dataset, ObjectId};

/// Whether `u` is not worse than `v` on every listed attribute (all of which
/// must be observed), i.e. `u` can possibly dominate `v` overall.
pub fn obs_not_worse(data: &Dataset, u: ObjectId, v: ObjectId, observed: &[AttrId]) -> bool {
    observed.iter().all(|&a| {
        let uv = data.get(u, a).expect("observed attribute must be present");
        let vv = data.get(v, a).expect("observed attribute must be present");
        uv >= vv
    })
}

/// Whether `u` strictly beats `v` somewhere on the observed attributes.
pub fn obs_strictly_better(data: &Dataset, u: ObjectId, v: ObjectId, observed: &[AttrId]) -> bool {
    observed.iter().any(|&a| {
        data.get(u, a).expect("observed attribute must be present")
            > data.get(v, a).expect("observed attribute must be present")
    })
}

/// Partitions objects into skyline layers over the observed attributes:
/// layer 0 is the observed-attribute skyline, layer 1 the skyline of the
/// remainder, and so on. Objects in later layers can only be dominated
/// overall by objects in the same or earlier layers.
pub fn skyline_layers(data: &Dataset, observed: &[AttrId]) -> Vec<Vec<ObjectId>> {
    let dominates = |u: ObjectId, v: ObjectId| -> bool {
        obs_not_worse(data, u, v, observed) && obs_strictly_better(data, u, v, observed)
    };
    let mut remaining: Vec<ObjectId> = data.objects().collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let layer: Vec<ObjectId> = remaining
            .iter()
            .copied()
            .filter(|&v| !remaining.iter().any(|&u| u != v && dominates(u, v)))
            .collect();
        debug_assert!(
            !layer.is_empty(),
            "a finite partial order always has maxima"
        );
        remaining.retain(|o| !layer.contains(o));
        layers.push(layer);
    }
    layers
}

/// Sorts objects by layer index (used to schedule comparisons promising
/// dominators first).
pub fn layer_index(layers: &[Vec<ObjectId>], n_objects: usize) -> Vec<usize> {
    let mut idx = vec![0usize; n_objects];
    for (li, layer) in layers.iter().enumerate() {
        for &o in layer {
            idx[o.index()] = li;
        }
    }
    idx
}

/// Helper used in tests/benches: the observed/crowd attribute split of a
/// dataset where crowd attributes are exactly the fully missing columns.
pub fn split_attributes(data: &Dataset) -> (Vec<AttrId>, Vec<AttrId>) {
    let mut observed = Vec::new();
    let mut crowd = Vec::new();
    for a in data.attrs() {
        let all_missing = data.objects().all(|o| data.get(o, a).is_none());
        let none_missing = data.objects().all(|o| data.get(o, a).is_some());
        if all_missing {
            crowd.push(a);
        } else {
            assert!(
                none_missing,
                "CrowdSky requires attributes to be fully observed or fully missing; {a} is mixed"
            );
            observed.push(a);
        }
    }
    (observed, crowd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_data::domain::uniform_domains;
    use bc_data::missing::mask_attributes;
    use bc_data::Value;

    fn ds(rows: Vec<Vec<Value>>) -> Dataset {
        let d = rows[0].len();
        Dataset::from_complete_rows("t", uniform_domains(d, 10).unwrap(), rows).unwrap()
    }

    #[test]
    fn layers_partition_objects() {
        let data = ds(vec![
            vec![9, 9], // layer 0
            vec![5, 5], // layer 1
            vec![1, 1], // layer 2
            vec![9, 1], // layer 0 (incomparable with (9,9)? no: (9,9) ≥ and > on a2 → dominated → layer 1)
        ]);
        let attrs: Vec<AttrId> = data.attrs().collect();
        let layers = skyline_layers(&data, &attrs);
        let total: usize = layers.iter().map(Vec::len).sum();
        assert_eq!(total, 4);
        assert_eq!(layers[0], vec![ObjectId(0)]);
        assert!(layers[1].contains(&ObjectId(1)) && layers[1].contains(&ObjectId(3)));
        assert_eq!(layers[2], vec![ObjectId(2)]);
        let idx = layer_index(&layers, 4);
        assert_eq!(idx, vec![0, 1, 2, 1]);
    }

    #[test]
    fn obs_comparisons() {
        let data = ds(vec![vec![3, 5], vec![3, 4], vec![4, 4]]);
        let attrs: Vec<AttrId> = data.attrs().collect();
        assert!(obs_not_worse(&data, ObjectId(0), ObjectId(1), &attrs));
        assert!(!obs_not_worse(&data, ObjectId(1), ObjectId(0), &attrs));
        assert!(obs_strictly_better(&data, ObjectId(0), ObjectId(1), &attrs));
        assert!(!obs_strictly_better(
            &data,
            ObjectId(1),
            ObjectId(1),
            &attrs
        ));
        // Incomparable pair.
        assert!(!obs_not_worse(&data, ObjectId(0), ObjectId(2), &attrs));
    }

    #[test]
    fn split_detects_crowd_attributes() {
        let complete = ds(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let masked = mask_attributes(&complete, &[AttrId(1)]);
        let (obs, crowd) = split_attributes(&masked);
        assert_eq!(obs, vec![AttrId(0), AttrId(2)]);
        assert_eq!(crowd, vec![AttrId(1)]);
    }

    #[test]
    #[should_panic(expected = "fully observed or fully missing")]
    fn mixed_attributes_are_rejected() {
        let mut data = ds(vec![vec![1, 2], vec![3, 4]]);
        data.set(ObjectId(0), AttrId(1), None).unwrap();
        let _ = split_attributes(&data);
    }
}
