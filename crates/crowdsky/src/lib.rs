#![warn(missing_docs)]
//! **CrowdSky** — the state-of-the-art baseline (Lee, Lee & Kim, EDBT'16),
//! re-implemented from its description in the BayesCrowd paper.
//!
//! CrowdSky answers skyline queries when the attribute set is split into
//! fully *observed* attributes and fully *crowd* attributes (every value of
//! a crowd attribute is unknown to the machine). It:
//!
//! 1. computes **skyline layers** over the observed attributes ([`layers`]),
//! 2. enumerates candidate dominator pairs `(u, v)` where `u` is not worse
//!    than `v` on every observed attribute,
//! 3. crowdsources **pairwise comparisons** of `u` and `v` on each crowd
//!    attribute — one task per unknown comparison, in fixed-size rounds —
//!    until each pair's dominance is decided, and
//! 4. prunes with the **dominating set**: once `v` is known dominated it is
//!    dropped, and (dominance being transitive) dominated objects are never
//!    used as dominators.
//!
//! Crucially, unlike BayesCrowd, CrowdSky performs *no probabilistic
//! inference*: every needed comparison is asked explicitly (answers are only
//! reused for the identical pair/attribute), which is why it needs at least
//! an order of magnitude more tasks and rounds (Figure 4 of the paper).

pub mod layers;
pub mod pairs;
pub mod runner;

pub use layers::skyline_layers;
pub use runner::{CrowdSky, CrowdSkyConfig, CrowdSkyReport};
