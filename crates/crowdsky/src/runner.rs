//! The CrowdSky algorithm driver.

use crate::layers::{
    layer_index, obs_not_worse, obs_strictly_better, skyline_layers, split_attributes,
};
use crate::pairs::{ComparisonCache, Pair, PairState};
use bc_crowd::{CrowdPlatform, CrowdStats, Task, TaskOutcome};
use bc_ctable::Operand;
use bc_data::{Accuracy, Dataset, ObjectId, VarId};
use std::time::{Duration, Instant};

/// CrowdSky configuration.
#[derive(Clone, Copy, Debug)]
pub struct CrowdSkyConfig {
    /// Tasks posted per round (the paper's Figure 4 comparison fixes 20 for
    /// both systems).
    pub round_size: usize,
}

impl Default for CrowdSkyConfig {
    fn default() -> Self {
        CrowdSkyConfig { round_size: 20 }
    }
}

/// What a CrowdSky run produces.
#[derive(Clone, Debug)]
pub struct CrowdSkyReport {
    /// The computed skyline.
    pub result: Vec<ObjectId>,
    /// Accuracy against the complete-data skyline.
    pub accuracy: Option<Accuracy>,
    /// Tasks / rounds / worker answers.
    pub crowd: CrowdStats,
    /// Number of observed-attribute skyline layers.
    pub n_layers: usize,
    /// Candidate pairs investigated.
    pub n_pairs: usize,
    /// Algorithm wall-clock time.
    pub total_time: Duration,
    /// Whether the run gave up with comparisons still unresolved because
    /// the platform stopped producing answers; undominated-so-far objects
    /// are then reported as the (best-effort) skyline.
    pub degraded: bool,
}

/// The CrowdSky baseline engine.
#[derive(Clone, Debug, Default)]
pub struct CrowdSky {
    config: CrowdSkyConfig,
}

impl CrowdSky {
    /// An engine with the given configuration.
    pub fn new(config: CrowdSkyConfig) -> CrowdSky {
        CrowdSky { config }
    }

    /// Runs CrowdSky on a dataset whose attributes are each fully observed
    /// or fully missing (the observed/crowd split it assumes).
    ///
    /// # Panics
    ///
    /// Panics if some attribute is partially missing.
    pub fn run(&self, data: &Dataset, platform: &mut dyn CrowdPlatform) -> CrowdSkyReport {
        let t0 = Instant::now();
        let (observed, crowd_attrs) = split_attributes(data);
        let layers = skyline_layers(data, &observed);
        let layer_of = layer_index(&layers, data.n_objects());

        // Candidate pairs: u can dominate v only if u is not observed-worse.
        // Schedule promising dominators first: pairs sorted by (v's layer,
        // u's layer) so early layers resolve first and pruning bites.
        let mut pairs: Vec<Pair> = Vec::new();
        for v in data.objects() {
            for u in data.objects() {
                if u != v && obs_not_worse(data, u, v, &observed) {
                    // Skip pairs that cannot dominate even with crowd help:
                    // if u == v on all observed attrs and there are no crowd
                    // attrs, a tie cannot dominate (handled by state()).
                    pairs.push(Pair {
                        u,
                        v,
                        obs_strict: obs_strictly_better(data, u, v, &observed),
                    });
                }
            }
        }
        pairs.sort_by_key(|p| (layer_of[p.v.index()], layer_of[p.u.index()], p.u, p.v));
        let n_pairs = pairs.len();

        let mut cache = ComparisonCache::default();
        let mut dominated = vec![false; data.n_objects()];

        // Resolve what is already decidable without the crowd (no crowd
        // attributes unknown, e.g. observed-only dominance).
        for p in &pairs {
            if p.state(&crowd_attrs, &cache) == PairState::Dominates {
                dominated[p.v.index()] = true;
            }
        }

        let mut consecutive_stalls = 0usize;
        let mut degraded = false;
        loop {
            // Collect the next batch of unknown comparisons.
            let mut batch: Vec<Task> = Vec::with_capacity(self.config.round_size);
            let mut batch_keys: Vec<(ObjectId, ObjectId, bc_data::AttrId)> = Vec::new();
            for p in &pairs {
                if batch.len() >= self.config.round_size {
                    break;
                }
                // Dominating-set pruning: v already dominated → pair moot;
                // u already dominated → transitivity makes u redundant.
                if dominated[p.v.index()] || dominated[p.u.index()] {
                    continue;
                }
                if p.state(&crowd_attrs, &cache) != PairState::Open {
                    continue;
                }
                if let Some(a) = p.next_unknown(&crowd_attrs, &cache) {
                    if batch_keys.contains(&(p.u, p.v, a)) || batch_keys.contains(&(p.v, p.u, a)) {
                        continue;
                    }
                    batch.push(Task {
                        var: VarId {
                            object: p.u,
                            attr: a,
                        },
                        rhs: Operand::Var(VarId {
                            object: p.v,
                            attr: a,
                        }),
                    });
                    batch_keys.push((p.u, p.v, a));
                }
            }
            if batch.is_empty() {
                break;
            }
            let results = platform.post_round(&batch);
            let mut any_answer = false;
            for (res, &(u, v, a)) in results.iter().zip(&batch_keys) {
                // Task var is Var(u, a); but Task construction may have
                // canonical var ordering only for expressions — here we
                // built the task directly, so the relation is u's side.
                debug_assert_eq!(res.task.var.object, u);
                if let TaskOutcome::Answered(relation) = res.outcome {
                    cache.record(u, v, a, relation);
                    any_answer = true;
                }
                // Expired/Inconsistent: the comparison stays unknown and is
                // naturally re-selected next round.
            }
            if any_answer {
                consecutive_stalls = 0;
            } else {
                consecutive_stalls += 1;
                if consecutive_stalls >= 3 {
                    // The platform has stopped producing answers (e.g. total
                    // workforce attrition): report the undominated objects
                    // seen so far instead of looping forever.
                    degraded = true;
                    break;
                }
            }
            // Update domination knowledge.
            for p in &pairs {
                if !dominated[p.v.index()]
                    && !dominated[p.u.index()]
                    && p.state(&crowd_attrs, &cache) == PairState::Dominates
                {
                    dominated[p.v.index()] = true;
                }
            }
        }

        let result: Vec<ObjectId> = data.objects().filter(|o| !dominated[o.index()]).collect();
        let truth = platform
            .ground_truth()
            .and_then(|complete| bc_data::skyline::skyline_sfs(complete).ok());
        let accuracy = truth.map(|t| Accuracy::of(&result, &t));

        CrowdSkyReport {
            result,
            accuracy,
            crowd: platform.stats(),
            n_layers: layers.len(),
            n_pairs,
            total_time: t0.elapsed(),
            degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_crowd::{FaultConfig, FaultyPlatform, GroundTruthOracle, SimulatedPlatform};
    use bc_data::generators::classic::independent;
    use bc_data::missing::mask_attributes;
    use bc_data::AttrId;

    fn setup(n: usize, seed: u64) -> (Dataset, Dataset) {
        let complete = independent(n, 5, 8, seed);
        let masked = mask_attributes(&complete, &[AttrId(3), AttrId(4)]);
        (complete, masked)
    }

    #[test]
    fn perfect_workers_recover_the_exact_skyline() {
        let (complete, masked) = setup(60, 5);
        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
        let report = CrowdSky::default().run(&masked, &mut platform);
        let truth = bc_data::skyline::skyline_bnl(&complete).unwrap();
        assert_eq!(report.result, truth);
        assert_eq!(report.accuracy.unwrap().f1, 1.0);
        assert!(report.crowd.rounds > 0);
    }

    #[test]
    fn round_size_bounds_each_batch() {
        let (complete, masked) = setup(40, 6);
        let oracle = GroundTruthOracle::new(complete);
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
        let config = CrowdSkyConfig { round_size: 5 };
        let report = CrowdSky::new(config).run(&masked, &mut platform);
        assert!(report.crowd.tasks_posted <= report.crowd.rounds * 5);
        assert!(report.crowd.rounds >= report.crowd.tasks_posted.div_ceil(5));
    }

    #[test]
    fn no_crowd_attributes_needs_no_tasks() {
        let complete = independent(30, 4, 8, 7);
        let oracle = GroundTruthOracle::new(complete.clone());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 17);
        let report = CrowdSky::default().run(&complete, &mut platform);
        assert_eq!(report.crowd.tasks_posted, 0);
        assert_eq!(
            report.result,
            bc_data::skyline::skyline_bnl(&complete).unwrap()
        );
    }

    #[test]
    fn dead_platform_degrades_instead_of_looping() {
        // The entire workforce quits after the first round; the stall guard
        // must terminate the run and flag it as degraded.
        let (complete, masked) = setup(40, 9);
        let oracle = GroundTruthOracle::new(complete);
        let inner = SimulatedPlatform::new(oracle, 1.0, 17);
        let cfg = FaultConfig {
            attrition: 1.0,
            ..FaultConfig::default()
        };
        let mut platform = FaultyPlatform::new(inner, cfg, 23);
        let report = CrowdSky::default().run(&masked, &mut platform);
        assert!(report.degraded);
        assert!(!report.result.is_empty(), "best-effort skyline is reported");
        // One productive round, then three all-expired rounds trip the guard.
        assert!(report.crowd.rounds <= 5, "rounds = {}", report.crowd.rounds);
    }

    #[test]
    fn duplicate_comparisons_are_never_posted() {
        let (complete, masked) = setup(50, 8);
        let oracle = GroundTruthOracle::new(complete);
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 18);
        let report = CrowdSky::default().run(&masked, &mut platform);
        let mut seen = std::collections::BTreeSet::new();
        for ta in platform.log() {
            let rhs = match ta.task.rhs {
                Operand::Var(v) => v,
                Operand::Const(_) => panic!("CrowdSky only posts pairwise tasks"),
            };
            let key = if ta.task.var < rhs {
                (ta.task.var, rhs)
            } else {
                (rhs, ta.task.var)
            };
            assert!(seen.insert(key), "comparison {key:?} asked twice");
        }
        assert_eq!(seen.len(), report.crowd.tasks_posted);
    }
}
