//! Candidate dominator pairs and their resolution state.

use bc_ctable::Relation;
use bc_data::{AttrId, ObjectId};
use std::collections::HashMap;

/// State of one candidate pair `(u, v)`: does `u` dominate `v`?
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairState {
    /// Some crowd comparisons still unknown.
    Open,
    /// `u` dominates `v`.
    Dominates,
    /// `u` does not dominate `v`.
    NotDominates,
}

/// A candidate pair under investigation.
#[derive(Clone, Debug)]
pub struct Pair {
    /// The potential dominator.
    pub u: ObjectId,
    /// The potential dominatee.
    pub v: ObjectId,
    /// Whether the observed attributes already give `u` a strict win.
    pub obs_strict: bool,
}

/// Cache of answered pairwise comparisons `(u, v, attr) → relation of u's
/// value to v's`, shared by all pairs so the identical question is never
/// posted twice.
#[derive(Clone, Debug, Default)]
pub struct ComparisonCache {
    answers: HashMap<(ObjectId, ObjectId, AttrId), Relation>,
}

impl ComparisonCache {
    /// Records an answered comparison (both orientations).
    pub fn record(&mut self, u: ObjectId, v: ObjectId, a: AttrId, rel: Relation) {
        self.answers.insert((u, v, a), rel);
        self.answers.insert((v, u, a), rel.flipped());
    }

    /// Looks up a comparison.
    pub fn get(&self, u: ObjectId, v: ObjectId, a: AttrId) -> Option<Relation> {
        self.answers.get(&(u, v, a)).copied()
    }

    /// Number of distinct (unordered) comparisons known.
    pub fn len(&self) -> usize {
        self.answers.len() / 2
    }

    /// Whether nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

impl Pair {
    /// Resolves the pair against the cache: `u` dominates `v` iff `u ≥ v`
    /// on every crowd attribute and strictly beats `v` somewhere (observed
    /// or crowd). Returns [`PairState::Open`] while comparisons are missing.
    pub fn state(&self, crowd_attrs: &[AttrId], cache: &ComparisonCache) -> PairState {
        let mut strict = self.obs_strict;
        let mut unknown = false;
        for &a in crowd_attrs {
            match cache.get(self.u, self.v, a) {
                Some(Relation::Lt) => return PairState::NotDominates,
                Some(Relation::Gt) => strict = true,
                Some(Relation::Eq) => {}
                None => unknown = true,
            }
        }
        if unknown {
            // Even with unknowns, domination may already be impossible only
            // via a Lt (handled above); otherwise wait for answers.
            PairState::Open
        } else if strict {
            PairState::Dominates
        } else {
            // u equals v everywhere it could matter: ties never dominate.
            PairState::NotDominates
        }
    }

    /// The first crowd attribute whose comparison is still unknown.
    pub fn next_unknown(&self, crowd_attrs: &[AttrId], cache: &ComparisonCache) -> Option<AttrId> {
        crowd_attrs
            .iter()
            .copied()
            .find(|&a| cache.get(self.u, self.v, a).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(strict: bool) -> Pair {
        Pair {
            u: ObjectId(0),
            v: ObjectId(1),
            obs_strict: strict,
        }
    }

    #[test]
    fn lt_answer_kills_domination_immediately() {
        let mut cache = ComparisonCache::default();
        let attrs = [AttrId(0), AttrId(1)];
        cache.record(ObjectId(0), ObjectId(1), AttrId(0), Relation::Lt);
        assert_eq!(pair(true).state(&attrs, &cache), PairState::NotDominates);
    }

    #[test]
    fn full_knowledge_decides() {
        let mut cache = ComparisonCache::default();
        let attrs = [AttrId(0), AttrId(1)];
        cache.record(ObjectId(0), ObjectId(1), AttrId(0), Relation::Gt);
        assert_eq!(pair(false).state(&attrs, &cache), PairState::Open);
        cache.record(ObjectId(0), ObjectId(1), AttrId(1), Relation::Eq);
        assert_eq!(pair(false).state(&attrs, &cache), PairState::Dominates);
    }

    #[test]
    fn all_equal_is_not_dominance() {
        let mut cache = ComparisonCache::default();
        let attrs = [AttrId(0)];
        cache.record(ObjectId(0), ObjectId(1), AttrId(0), Relation::Eq);
        assert_eq!(pair(false).state(&attrs, &cache), PairState::NotDominates);
        // ...unless the observed side was already strict.
        assert_eq!(pair(true).state(&attrs, &cache), PairState::Dominates);
    }

    #[test]
    fn cache_is_symmetric_and_deduplicates() {
        let mut cache = ComparisonCache::default();
        cache.record(ObjectId(0), ObjectId(1), AttrId(0), Relation::Gt);
        assert_eq!(
            cache.get(ObjectId(1), ObjectId(0), AttrId(0)),
            Some(Relation::Lt)
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn next_unknown_walks_attributes() {
        let mut cache = ComparisonCache::default();
        let attrs = [AttrId(0), AttrId(1)];
        let p = pair(false);
        assert_eq!(p.next_unknown(&attrs, &cache), Some(AttrId(0)));
        cache.record(ObjectId(0), ObjectId(1), AttrId(0), Relation::Eq);
        assert_eq!(p.next_unknown(&attrs, &cache), Some(AttrId(1)));
        cache.record(ObjectId(0), ObjectId(1), AttrId(1), Relation::Eq);
        assert_eq!(p.next_unknown(&attrs, &cache), None);
    }
}
