//! Run reports: the query answer plus the cost/latency/accuracy measurements
//! the paper's evaluation section plots.

use bc_crowd::CrowdStats;
use bc_data::{Accuracy, ObjectId};
use std::collections::BTreeMap;
use std::time::Duration;

/// Everything a BayesCrowd run produces.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The returned answer set `R`: objects with a true condition or with
    /// probability above the answer threshold.
    pub result: Vec<ObjectId>,
    /// The subset of `result` whose conditions are certainly true.
    pub certain: Vec<ObjectId>,
    /// Final probabilities of the objects still undecided at termination.
    pub open_probabilities: BTreeMap<ObjectId, f64>,
    /// F1/precision/recall against the complete-data skyline, when ground
    /// truth was available.
    pub accuracy: Option<Accuracy>,
    /// Monetary cost and latency (tasks posted, rounds, worker answers).
    pub crowd: CrowdStats,
    /// Budget left unspent at termination.
    pub budget_left: usize,
    /// Wall-clock time of the modeling phase (BN training + c-table build).
    pub modeling_time: Duration,
    /// Wall-clock time of the algorithm (excluding, per the paper, the time
    /// workers spend answering — which the simulator makes instantaneous).
    pub total_time: Duration,
    /// Number of condition-probability evaluations performed.
    pub probability_evals: u64,
    /// Expressions still unresolved in the c-table at termination (zero
    /// means the query was fully decided, crowd answers permitting).
    pub open_exprs_left: usize,
    /// Tasks abandoned without a usable answer: they failed their final
    /// retry attempt, or were still queued when budget/latency ran out.
    pub tasks_expired: usize,
    /// Re-posts of previously failed tasks (each counts once per re-post).
    pub tasks_retried: usize,
    /// Rounds that produced no usable answer — every task in the batch
    /// failed, or the round idled waiting out a retry backoff.
    pub rounds_stalled: usize,
    /// Whether the run had to give up on at least one task: the c-table
    /// keeps its symbolic variables for those expressions and the answer
    /// set falls back to the current posterior probabilities.
    pub degraded: bool,
}

impl RunReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "answers={} certain={} tasks={} rounds={} time={:.1?} f1={}",
            self.result.len(),
            self.certain.len(),
            self.crowd.tasks_posted,
            self.crowd.rounds,
            self.total_time,
            self.accuracy
                .map(|a| format!("{:.3}", a.f1))
                .unwrap_or_else(|| "n/a".into()),
        );
        if self.degraded {
            s.push_str(&format!(
                " DEGRADED expired={} retried={} stalled={}",
                self.tasks_expired, self.tasks_retried, self.rounds_stalled
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_the_key_numbers() {
        let r = RunReport {
            result: vec![ObjectId(0), ObjectId(2)],
            certain: vec![ObjectId(0)],
            open_probabilities: BTreeMap::new(),
            accuracy: Some(Accuracy {
                precision: 1.0,
                recall: 0.5,
                f1: 2.0 / 3.0,
            }),
            crowd: CrowdStats {
                tasks_posted: 7,
                rounds: 3,
                worker_answers: 21,
                money_spent: 21,
            },
            budget_left: 1,
            modeling_time: Duration::from_millis(5),
            total_time: Duration::from_millis(9),
            probability_evals: 42,
            open_exprs_left: 0,
            tasks_expired: 0,
            tasks_retried: 0,
            rounds_stalled: 0,
            degraded: false,
        };
        let s = r.summary();
        assert!(s.contains("answers=2"));
        assert!(s.contains("tasks=7"));
        assert!(s.contains("rounds=3"));
        assert!(s.contains("f1=0.667"));
        assert!(!s.contains("DEGRADED"), "healthy runs stay quiet");
    }

    #[test]
    fn degraded_summary_reports_the_failure_counters() {
        let r = RunReport {
            result: vec![ObjectId(0)],
            certain: vec![],
            open_probabilities: BTreeMap::new(),
            accuracy: None,
            crowd: CrowdStats::default(),
            budget_left: 0,
            modeling_time: Duration::ZERO,
            total_time: Duration::ZERO,
            probability_evals: 0,
            open_exprs_left: 4,
            tasks_expired: 3,
            tasks_retried: 5,
            rounds_stalled: 2,
            degraded: true,
        };
        let s = r.summary();
        assert!(s.contains("DEGRADED"));
        assert!(s.contains("expired=3"));
        assert!(s.contains("retried=5"));
        assert!(s.contains("stalled=2"));
        assert!(s.contains("f1=n/a"));
    }
}
