//! Task-selection strategies (Section 6.2): FBS, UBS, HHS.

use bc_ctable::{Condition, Expr};
use bc_data::VarId;
use bc_solver::utility::marginal_utility_with_prior;
use bc_solver::{Solver, VarDists};
use std::collections::{BTreeSet, HashMap};

/// The three expression-selection strategies of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskStrategy {
    /// Frequency-based: pick the expression appearing most often across the
    /// chosen objects' conditions. Fastest, least accurate.
    Fbs,
    /// Utility-based: pick the expression with the highest marginal utility
    /// (Definition 6). Most accurate, slowest.
    Ubs,
    /// Hybrid heuristic (Algorithm 4): walk expressions in frequency order,
    /// computing utilities, and stop after `m` consecutive non-improvements.
    Hhs {
        /// The lookahead parameter `m`.
        m: usize,
    },
}

impl TaskStrategy {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TaskStrategy::Fbs => "FBS",
            TaskStrategy::Ubs => "UBS",
            TaskStrategy::Hhs { .. } => "HHS",
        }
    }
}

/// Expression frequencies across a set of conditions (the paper counts how
/// often each expression appears in the conditions of the chosen top-k
/// objects).
pub fn expression_frequencies<'a>(
    conditions: impl IntoIterator<Item = &'a Condition>,
) -> HashMap<Expr, usize> {
    let mut freq = HashMap::new();
    for cond in conditions {
        for e in cond.exprs() {
            *freq.entry(*e).or_insert(0) += 1;
        }
    }
    freq
}

/// The candidate expressions of `cond`, excluding those touching a blocked
/// variable, ordered by descending frequency (ties broken by expression
/// order for determinism).
fn candidates(
    cond: &Condition,
    freq: &HashMap<Expr, usize>,
    blocked: &BTreeSet<VarId>,
) -> Vec<Expr> {
    let mut seen = BTreeSet::new();
    let mut out: Vec<Expr> = cond
        .exprs()
        .filter(|e| seen.insert(**e))
        .filter(|e| e.vars().all(|v| !blocked.contains(&v)))
        .copied()
        .collect();
    out.sort_by(|a, b| {
        freq.get(b)
            .unwrap_or(&0)
            .cmp(freq.get(a).unwrap_or(&0))
            .then(a.cmp(b))
    });
    out
}

/// Selects the crowd expression for one object's condition under the given
/// strategy. `blocked` holds variables already used by tasks selected this
/// round (conflict avoidance); `p_phi` is the object's current condition
/// probability (reused by the utility computations). Returns `None` if
/// every expression conflicts.
pub fn select_expression(
    strategy: TaskStrategy,
    cond: &Condition,
    freq: &HashMap<Expr, usize>,
    blocked: &BTreeSet<VarId>,
    solver: &dyn Solver,
    dists: &VarDists,
    p_phi: f64,
) -> Option<Expr> {
    let cands = candidates(cond, freq, blocked);
    if cands.is_empty() {
        return None;
    }
    match strategy {
        TaskStrategy::Fbs => Some(cands[0]),
        TaskStrategy::Ubs => {
            let mut best: Option<(f64, Expr)> = None;
            for e in cands {
                let g = marginal_utility_with_prior(solver, cond, &e, dists, p_phi).unwrap_or(0.0);
                if best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, e));
                }
            }
            best.map(|(_, e)| e)
        }
        TaskStrategy::Hhs { m } => {
            let mut best: Option<(f64, Expr)> = None;
            let mut since_improvement = 0usize;
            for e in cands {
                let g = marginal_utility_with_prior(solver, cond, &e, dists, p_phi).unwrap_or(0.0);
                if best.is_none_or(|(bg, _)| g > bg) {
                    best = Some((g, e));
                    since_improvement = 0;
                } else {
                    since_improvement += 1;
                    if since_improvement >= m.max(1) {
                        break;
                    }
                }
            }
            best.map(|(_, e)| e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_bayes::Pmf;
    use bc_solver::AdpllSolver;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    fn simple_setup() -> (Condition, VarDists) {
        // φ = (x < 5 ∨ y < 1) ∧ (z > 3): x-question is most informative in
        // the first clause; z in its own clause.
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v(0, 0), 5), Expr::lt(v(1, 0), 1)],
            vec![Expr::gt(v(2, 0), 3)],
        ]);
        let dists: VarDists = [
            (v(0, 0), Pmf::uniform(10)),
            (v(1, 0), Pmf::uniform(10)),
            (v(2, 0), Pmf::uniform(10)),
        ]
        .into_iter()
        .collect();
        (cond, dists)
    }

    #[test]
    fn fbs_follows_frequency() {
        let (cond, dists) = simple_setup();
        // Make y's expression globally frequent.
        let other = Condition::from_clauses(vec![vec![Expr::lt(v(1, 0), 1)]]);
        let freq = expression_frequencies([&cond, &other, &other]);
        let solver = AdpllSolver::new();
        let p = solver.probability(&cond, &dists).unwrap();
        let picked = select_expression(
            TaskStrategy::Fbs,
            &cond,
            &freq,
            &BTreeSet::new(),
            &solver,
            &dists,
            p,
        )
        .unwrap();
        assert_eq!(picked, Expr::lt(v(1, 0), 1));
    }

    #[test]
    fn ubs_follows_utility() {
        let (cond, dists) = simple_setup();
        let freq = expression_frequencies([&cond]);
        let solver = AdpllSolver::new();
        let p = solver.probability(&cond, &dists).unwrap();
        let picked = select_expression(
            TaskStrategy::Ubs,
            &cond,
            &freq,
            &BTreeSet::new(),
            &solver,
            &dists,
            p,
        )
        .unwrap();
        // "y < 1" is nearly decided (p = .1) so the utility of asking it is
        // small; x or z dominate. UBS must not pick y.
        assert_ne!(picked, Expr::lt(v(1, 0), 1));
    }

    #[test]
    fn hhs_with_large_m_matches_ubs() {
        let (cond, dists) = simple_setup();
        let freq = expression_frequencies([&cond]);
        let solver = AdpllSolver::new();
        let p = solver.probability(&cond, &dists).unwrap();
        let ubs = select_expression(
            TaskStrategy::Ubs,
            &cond,
            &freq,
            &BTreeSet::new(),
            &solver,
            &dists,
            p,
        );
        let hhs = select_expression(
            TaskStrategy::Hhs { m: 100 },
            &cond,
            &freq,
            &BTreeSet::new(),
            &solver,
            &dists,
            p,
        );
        assert_eq!(ubs, hhs);
    }

    #[test]
    fn hhs_with_m_one_stops_early() {
        let (cond, dists) = simple_setup();
        let freq = expression_frequencies([&cond]);
        let solver = AdpllSolver::new();
        // m = 1: stops at the first non-improving expression, so it returns
        // some expression but possibly not the UBS optimum; it must still
        // return one.
        let p = solver.probability(&cond, &dists).unwrap();
        let picked = select_expression(
            TaskStrategy::Hhs { m: 1 },
            &cond,
            &freq,
            &BTreeSet::new(),
            &solver,
            &dists,
            p,
        );
        assert!(picked.is_some());
    }

    #[test]
    fn blocked_variables_are_skipped() {
        let (cond, dists) = simple_setup();
        let freq = expression_frequencies([&cond]);
        let solver = AdpllSolver::new();
        let blocked: BTreeSet<VarId> = [v(0, 0), v(2, 0)].into_iter().collect();
        let p = solver.probability(&cond, &dists).unwrap();
        let picked = select_expression(
            TaskStrategy::Fbs,
            &cond,
            &freq,
            &blocked,
            &solver,
            &dists,
            p,
        )
        .unwrap();
        assert_eq!(picked, Expr::lt(v(1, 0), 1));
        // Everything blocked → no task.
        let all: BTreeSet<VarId> = [v(0, 0), v(1, 0), v(2, 0)].into_iter().collect();
        assert_eq!(
            select_expression(TaskStrategy::Fbs, &cond, &freq, &all, &solver, &dists, p),
            None
        );
    }

    #[test]
    fn strategy_names() {
        assert_eq!(TaskStrategy::Fbs.name(), "FBS");
        assert_eq!(TaskStrategy::Ubs.name(), "UBS");
        assert_eq!(TaskStrategy::Hhs { m: 3 }.name(), "HHS");
    }
}
