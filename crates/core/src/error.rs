//! Typed failures of [`BayesCrowd::try_run`](crate::BayesCrowd::try_run).

use crate::config::ConfigError;
use crate::report::RunReport;
use bc_snapshot::SnapshotError;
use bc_solver::SolverError;
use std::fmt;

/// Why a run could not produce a (healthy) report.
#[derive(Clone, Debug)]
pub enum RunError {
    /// The dataset has no objects — there is no skyline to compute.
    EmptyDataset,
    /// The configuration failed validation (see [`ConfigError`]).
    Config(ConfigError),
    /// A probability computation failed even after falling back to ADPLL
    /// (e.g. a condition variable with no learned distribution).
    Solver(SolverError),
    /// The platform swallowed every task: tasks were posted, none were ever
    /// answered, and the query is still undecided. The degraded report —
    /// machine-only answers under the prior — is attached so callers can
    /// still use it deliberately.
    PlatformExhausted {
        /// The report of the degraded, crowd-less run.
        report: Box<RunReport>,
    },
    /// Writing or restoring a checkpoint failed (I/O, corruption, or a
    /// snapshot that does not belong to this run).
    Snapshot(SnapshotErrorShared),
}

/// [`SnapshotError`] wrapped for `RunError`, which is `Clone` while
/// `std::io::Error` is not — shared ownership keeps the full error chain.
pub type SnapshotErrorShared = std::sync::Arc<SnapshotError>;

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::EmptyDataset => write!(f, "dataset has no objects"),
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Solver(e) => write!(f, "probability computation failed: {e}"),
            RunError::PlatformExhausted { report } => write!(
                f,
                "crowd platform answered none of the {} posted tasks ({} expressions undecided)",
                report.crowd.tasks_posted, report.open_exprs_left
            ),
            RunError::Snapshot(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::Solver(e) => Some(e),
            RunError::Snapshot(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> RunError {
        RunError::Config(e)
    }
}

impl From<SolverError> for RunError {
    fn from(e: SolverError) -> RunError {
        RunError::Solver(e)
    }
}

impl From<SnapshotError> for RunError {
    fn from(e: SnapshotError) -> RunError {
        RunError::Snapshot(std::sync::Arc::new(e))
    }
}
