//! Framework configuration.

use crate::selection::ObjectRanking;
use crate::strategy::TaskStrategy;
use bc_bayes::ModelConfig;
use bc_crowd::RetryPolicy;
use bc_ctable::{CTableConfig, DominatorStrategy};
use bc_solver::{AdpllSolver, BranchHeuristic, MonteCarloSolver, NaiveSolver, Solver};
use std::fmt;

/// Why a configuration was rejected by [`BayesCrowdConfig::validate`] (and
/// therefore by the builder's `build`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `budget == 0`: the run could never post a task.
    ZeroBudget,
    /// `latency == 0`: no round may run (use `latency = 1` for a one-shot
    /// batch of the whole budget).
    ZeroLatency,
    /// `alpha` is outside `[0, 1]` (or NaN) — it is a fraction of `|O|`.
    AlphaOutOfRange(f64),
    /// `Hhs { m: 0 }`: the hybrid strategy's lookahead would never consider
    /// a single candidate.
    ZeroLookahead,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBudget => write!(f, "budget must be at least 1 task"),
            ConfigError::ZeroLatency => write!(f, "latency must be at least 1 round"),
            ConfigError::AlphaOutOfRange(a) => {
                write!(f, "alpha must lie in [0, 1], got {a}")
            }
            ConfigError::ZeroLookahead => {
                write!(f, "HHS lookahead m must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which probability solver drives entropy/utility computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The paper's ADPLL (exact, fast) — the default.
    #[default]
    Adpll,
    /// Brute-force enumeration (exact, slow) — the Figure 3 baseline.
    Naive,
    /// Monte-Carlo estimation — the ApproxCount stand-in.
    MonteCarlo,
}

impl SolverKind {
    /// Instantiates the solver with the run's solver configuration. Only
    /// ADPLL has tunable internals today; the other kinds accept and ignore
    /// the knobs so every call site builds through the same path (and no
    /// path can silently drop the configuration, as the parallel batch code
    /// once did).
    pub fn build(self, heuristic: BranchHeuristic, caching: bool) -> Box<dyn Solver> {
        match self {
            SolverKind::Adpll => {
                Box::new(AdpllSolver::with_heuristic(heuristic).with_caching(caching))
            }
            SolverKind::Naive => Box::new(NaiveSolver::new()),
            SolverKind::MonteCarlo => Box::new(MonteCarloSolver::default()),
        }
    }
}

/// All knobs of a BayesCrowd run. Field defaults follow the paper's
/// Synthetic-dataset setting where one exists.
#[derive(Clone, Debug)]
pub struct BayesCrowdConfig {
    /// Budget `B`: total number of tasks the requester can afford.
    pub budget: usize,
    /// Latency constraint `L`: number of task-selection rounds; each round
    /// posts up to `⌈B / L⌉` tasks.
    pub latency: usize,
    /// The pruning threshold `α` of c-table construction.
    pub alpha: f64,
    /// Task-selection strategy (FBS / UBS / HHS).
    pub strategy: TaskStrategy,
    /// How objects are ranked when choosing the top-k per round (the paper
    /// uses entropy; `Random` is the ablation baseline).
    pub ranking: ObjectRanking,
    /// Probability solver.
    pub solver: SolverKind,
    /// ADPLL branching heuristic (ignored by the other solvers).
    pub branch_heuristic: BranchHeuristic,
    /// Whether the ADPLL solver memoizes sub-conditions (ignored by the
    /// other solvers).
    pub solver_caching: bool,
    /// Dominator-set derivation (fast index vs pairwise baseline).
    pub dominators: DominatorStrategy,
    /// Bayesian-network modeling configuration (set
    /// `model.uniform_prior = true` for the no-correlation ablation).
    pub model: ModelConfig,
    /// If `false`, tasks in one round may share variables — the
    /// conflict-avoidance ablation (the paper requires `true`).
    pub conflict_free: bool,
    /// If `false`, crowd answers only decide their own expression instead of
    /// being propagated through the constraint store — the inference
    /// ablation that makes BayesCrowd behave like a non-inferring baseline.
    pub propagate_answers: bool,
    /// Compute per-object probabilities on multiple threads.
    pub parallel: bool,
    /// How tasks that come back unanswered (expired or inconsistent) are
    /// re-queued. The default gives every failed task one more attempt;
    /// `RetryPolicy::none()` restores fire-and-forget posting.
    pub retry: RetryPolicy,
    /// Probability threshold above which an undecided object is reported as
    /// an answer (the paper uses 0.5).
    pub answer_threshold: f64,
}

impl Default for BayesCrowdConfig {
    fn default() -> Self {
        BayesCrowdConfig {
            budget: 1000,
            latency: 10,
            alpha: 0.01,
            strategy: TaskStrategy::Hhs { m: 50 },
            ranking: ObjectRanking::Entropy,
            solver: SolverKind::Adpll,
            branch_heuristic: BranchHeuristic::default(),
            solver_caching: true,
            dominators: DominatorStrategy::FastIndex,
            model: ModelConfig::default(),
            conflict_free: true,
            propagate_answers: true,
            parallel: false,
            retry: RetryPolicy::default(),
            answer_threshold: 0.5,
        }
    }
}

impl BayesCrowdConfig {
    /// The paper's NBA-dataset defaults: `α = 0.003`, `B = 50`, `m = 15`,
    /// `L = 5`.
    pub fn nba_defaults() -> BayesCrowdConfig {
        BayesCrowdConfig {
            budget: 50,
            latency: 5,
            alpha: 0.003,
            strategy: TaskStrategy::Hhs { m: 15 },
            ..Default::default()
        }
    }

    /// The paper's Synthetic-dataset defaults: `α = 0.01`, `B = 1000`,
    /// `m = 50`, `L = 10`.
    pub fn synthetic_defaults() -> BayesCrowdConfig {
        BayesCrowdConfig::default()
    }

    /// Tasks per round: `μ = ⌈B / L⌉` (Algorithm 4, line 1).
    pub fn tasks_per_round(&self) -> usize {
        if self.latency == 0 {
            self.budget
        } else {
            self.budget.div_ceil(self.latency)
        }
    }

    /// Builds the configured solver — [`SolverKind::build`] fed with this
    /// config's heuristic and caching knobs. Every solver the framework
    /// instantiates (including per-thread and fallback solvers) goes
    /// through here so the knobs are never silently dropped.
    pub fn build_solver(&self) -> Box<dyn Solver> {
        self.solver
            .build(self.branch_heuristic, self.solver_caching)
    }

    /// The c-table construction sub-config.
    pub fn ctable_config(&self) -> CTableConfig {
        CTableConfig {
            alpha: self.alpha,
            strategy: self.dominators,
        }
    }

    /// A fluent, validated builder starting from [`Default`].
    ///
    /// ```
    /// use bayescrowd::{BayesCrowdConfig, TaskStrategy};
    ///
    /// let config = BayesCrowdConfig::builder()
    ///     .budget(50)
    ///     .latency(5)
    ///     .alpha(0.003)
    ///     .strategy(TaskStrategy::Hhs { m: 15 })
    ///     .build()
    ///     .expect("valid config");
    /// assert_eq!(config.tasks_per_round(), 10);
    /// ```
    pub fn builder() -> BayesCrowdConfigBuilder {
        BayesCrowdConfigBuilder {
            config: BayesCrowdConfig::default(),
        }
    }

    /// Reopens this configuration as a builder, e.g. to tweak a preset:
    /// `BayesCrowdConfig::nba_defaults().into_builder().budget(80).build()`.
    pub fn into_builder(self) -> BayesCrowdConfigBuilder {
        BayesCrowdConfigBuilder { config: self }
    }

    /// Checks the invariants the builder enforces. Direct struct-literal
    /// construction deliberately skips this (tests use degenerate configs
    /// like `budget: 0` to probe edge behavior); `try_run` re-checks.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.budget == 0 {
            return Err(ConfigError::ZeroBudget);
        }
        if self.latency == 0 {
            return Err(ConfigError::ZeroLatency);
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(ConfigError::AlphaOutOfRange(self.alpha));
        }
        if matches!(self.strategy, TaskStrategy::Hhs { m: 0 }) {
            return Err(ConfigError::ZeroLookahead);
        }
        Ok(())
    }
}

/// Fluent builder for [`BayesCrowdConfig`]; see
/// [`BayesCrowdConfig::builder`].
#[derive(Clone, Debug)]
pub struct BayesCrowdConfigBuilder {
    config: BayesCrowdConfig,
}

impl BayesCrowdConfigBuilder {
    /// Budget `B`: total number of tasks the requester can afford.
    pub fn budget(mut self, budget: usize) -> Self {
        self.config.budget = budget;
        self
    }

    /// Latency constraint `L`: number of task-selection rounds.
    pub fn latency(mut self, latency: usize) -> Self {
        self.config.latency = latency;
        self
    }

    /// The pruning threshold `α` of c-table construction.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Task-selection strategy (FBS / UBS / HHS).
    pub fn strategy(mut self, strategy: TaskStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// How objects are ranked when choosing the top-k per round.
    pub fn ranking(mut self, ranking: ObjectRanking) -> Self {
        self.config.ranking = ranking;
        self
    }

    /// Probability solver.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.config.solver = solver;
        self
    }

    /// ADPLL branching heuristic (ignored by the other solvers).
    pub fn branch_heuristic(mut self, heuristic: BranchHeuristic) -> Self {
        self.config.branch_heuristic = heuristic;
        self
    }

    /// Whether the ADPLL solver memoizes sub-conditions.
    pub fn solver_caching(mut self, caching: bool) -> Self {
        self.config.solver_caching = caching;
        self
    }

    /// Dominator-set derivation (fast index vs pairwise baseline).
    pub fn dominators(mut self, dominators: DominatorStrategy) -> Self {
        self.config.dominators = dominators;
        self
    }

    /// Bayesian-network modeling configuration.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.config.model = model;
        self
    }

    /// Whether tasks in one round must be variable-disjoint.
    pub fn conflict_free(mut self, conflict_free: bool) -> Self {
        self.config.conflict_free = conflict_free;
        self
    }

    /// Whether crowd answers propagate through the constraint store.
    pub fn propagate_answers(mut self, propagate_answers: bool) -> Self {
        self.config.propagate_answers = propagate_answers;
        self
    }

    /// Compute per-object probabilities on multiple threads.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// How failed tasks are re-queued.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Probability threshold above which an undecided object is an answer.
    pub fn answer_threshold(mut self, answer_threshold: f64) -> Self {
        self.config.answer_threshold = answer_threshold;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<BayesCrowdConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_per_round_matches_algorithm_4() {
        let c = BayesCrowdConfig {
            budget: 6,
            latency: 3,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 2);
        let c = BayesCrowdConfig {
            budget: 7,
            latency: 3,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 3);
        let c = BayesCrowdConfig {
            budget: 5,
            latency: 0,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 5);
    }

    #[test]
    fn paper_defaults() {
        let nba = BayesCrowdConfig::nba_defaults();
        assert_eq!(nba.budget, 50);
        assert_eq!(nba.latency, 5);
        assert!((nba.alpha - 0.003).abs() < 1e-12);
        assert_eq!(nba.strategy, TaskStrategy::Hhs { m: 15 });
        let syn = BayesCrowdConfig::synthetic_defaults();
        assert_eq!(syn.budget, 1000);
        assert_eq!(syn.strategy, TaskStrategy::Hhs { m: 50 });
    }

    #[test]
    fn builder_round_trips_every_field() {
        let config = BayesCrowdConfig::builder()
            .budget(6)
            .latency(3)
            .alpha(1.0)
            .strategy(TaskStrategy::Hhs { m: 2 })
            .ranking(ObjectRanking::Random { seed: 4 })
            .solver(SolverKind::Naive)
            .branch_heuristic(BranchHeuristic::First)
            .solver_caching(false)
            .dominators(DominatorStrategy::Baseline)
            .model(ModelConfig {
                uniform_prior: true,
                ..Default::default()
            })
            .conflict_free(false)
            .propagate_answers(false)
            .parallel(true)
            .retry(RetryPolicy::none())
            .answer_threshold(0.7)
            .build()
            .expect("valid config");
        assert_eq!(config.budget, 6);
        assert_eq!(config.latency, 3);
        assert_eq!(config.strategy, TaskStrategy::Hhs { m: 2 });
        assert_eq!(config.ranking, ObjectRanking::Random { seed: 4 });
        assert_eq!(config.solver, SolverKind::Naive);
        assert_eq!(config.branch_heuristic, BranchHeuristic::First);
        assert!(!config.solver_caching);
        assert_eq!(config.dominators, DominatorStrategy::Baseline);
        assert!(config.model.uniform_prior);
        assert!(!config.conflict_free);
        assert!(!config.propagate_answers);
        assert!(config.parallel);
        assert_eq!(config.retry, RetryPolicy::none());
        assert!((config.answer_threshold - 0.7).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_zero_budget() {
        assert_eq!(
            BayesCrowdConfig::builder().budget(0).build().unwrap_err(),
            ConfigError::ZeroBudget
        );
    }

    #[test]
    fn builder_rejects_zero_latency() {
        assert_eq!(
            BayesCrowdConfig::builder().latency(0).build().unwrap_err(),
            ConfigError::ZeroLatency
        );
    }

    #[test]
    fn builder_rejects_alpha_outside_unit_interval() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = BayesCrowdConfig::builder().alpha(bad).build().unwrap_err();
            assert!(
                matches!(err, ConfigError::AlphaOutOfRange(_)),
                "alpha {bad} gave {err:?}"
            );
        }
        // The closed interval's endpoints are fine (tests use alpha = 1.0).
        assert!(BayesCrowdConfig::builder().alpha(0.0).build().is_ok());
        assert!(BayesCrowdConfig::builder().alpha(1.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_lookahead() {
        assert_eq!(
            BayesCrowdConfig::builder()
                .strategy(TaskStrategy::Hhs { m: 0 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroLookahead
        );
        // FBS/UBS have no lookahead to validate.
        assert!(BayesCrowdConfig::builder()
            .strategy(TaskStrategy::Fbs)
            .build()
            .is_ok());
    }

    #[test]
    fn config_errors_display_actionably() {
        for (err, needle) in [
            (ConfigError::ZeroBudget, "budget"),
            (ConfigError::ZeroLatency, "latency"),
            (ConfigError::AlphaOutOfRange(2.0), "alpha"),
            (ConfigError::ZeroLookahead, "lookahead"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn solver_kinds_build() {
        let (h, c) = (BranchHeuristic::default(), true);
        assert_eq!(SolverKind::Adpll.build(h, c).name(), "ADPLL");
        assert_eq!(SolverKind::Naive.build(h, c).name(), "Naive");
        assert_eq!(SolverKind::MonteCarlo.build(h, c).name(), "MonteCarlo");
    }

    #[test]
    fn build_solver_uses_the_configured_knobs() {
        // The knobs reach the solver regardless of kind; ADPLL is the one
        // that actually consumes them, so it suffices to check the path
        // compiles and builds the right kind.
        let config = BayesCrowdConfig::builder()
            .branch_heuristic(BranchHeuristic::First)
            .solver_caching(false)
            .build()
            .expect("valid config");
        assert_eq!(config.build_solver().name(), "ADPLL");
    }
}
