//! Framework configuration.

use crate::selection::ObjectRanking;
use crate::strategy::TaskStrategy;
use bc_bayes::ModelConfig;
use bc_crowd::RetryPolicy;
use bc_ctable::{CTableConfig, DominatorStrategy};
use bc_solver::{AdpllSolver, MonteCarloSolver, NaiveSolver, Solver};

/// Which probability solver drives entropy/utility computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// The paper's ADPLL (exact, fast) — the default.
    #[default]
    Adpll,
    /// Brute-force enumeration (exact, slow) — the Figure 3 baseline.
    Naive,
    /// Monte-Carlo estimation — the ApproxCount stand-in.
    MonteCarlo,
}

impl SolverKind {
    /// Instantiates the solver.
    pub fn build(self) -> Box<dyn Solver> {
        match self {
            SolverKind::Adpll => Box::new(AdpllSolver::new()),
            SolverKind::Naive => Box::new(NaiveSolver::new()),
            SolverKind::MonteCarlo => Box::new(MonteCarloSolver::default()),
        }
    }
}

/// All knobs of a BayesCrowd run. Field defaults follow the paper's
/// Synthetic-dataset setting where one exists.
#[derive(Clone, Debug)]
pub struct BayesCrowdConfig {
    /// Budget `B`: total number of tasks the requester can afford.
    pub budget: usize,
    /// Latency constraint `L`: number of task-selection rounds; each round
    /// posts up to `⌈B / L⌉` tasks.
    pub latency: usize,
    /// The pruning threshold `α` of c-table construction.
    pub alpha: f64,
    /// Task-selection strategy (FBS / UBS / HHS).
    pub strategy: TaskStrategy,
    /// How objects are ranked when choosing the top-k per round (the paper
    /// uses entropy; `Random` is the ablation baseline).
    pub ranking: ObjectRanking,
    /// Probability solver.
    pub solver: SolverKind,
    /// Dominator-set derivation (fast index vs pairwise baseline).
    pub dominators: DominatorStrategy,
    /// Bayesian-network modeling configuration (set
    /// `model.uniform_prior = true` for the no-correlation ablation).
    pub model: ModelConfig,
    /// If `false`, tasks in one round may share variables — the
    /// conflict-avoidance ablation (the paper requires `true`).
    pub conflict_free: bool,
    /// If `false`, crowd answers only decide their own expression instead of
    /// being propagated through the constraint store — the inference
    /// ablation that makes BayesCrowd behave like a non-inferring baseline.
    pub propagate_answers: bool,
    /// Compute per-object probabilities on multiple threads.
    pub parallel: bool,
    /// How tasks that come back unanswered (expired or inconsistent) are
    /// re-queued. The default gives every failed task one more attempt;
    /// `RetryPolicy::none()` restores fire-and-forget posting.
    pub retry: RetryPolicy,
    /// Probability threshold above which an undecided object is reported as
    /// an answer (the paper uses 0.5).
    pub answer_threshold: f64,
}

impl Default for BayesCrowdConfig {
    fn default() -> Self {
        BayesCrowdConfig {
            budget: 1000,
            latency: 10,
            alpha: 0.01,
            strategy: TaskStrategy::Hhs { m: 50 },
            ranking: ObjectRanking::Entropy,
            solver: SolverKind::Adpll,
            dominators: DominatorStrategy::FastIndex,
            model: ModelConfig::default(),
            conflict_free: true,
            propagate_answers: true,
            parallel: false,
            retry: RetryPolicy::default(),
            answer_threshold: 0.5,
        }
    }
}

impl BayesCrowdConfig {
    /// The paper's NBA-dataset defaults: `α = 0.003`, `B = 50`, `m = 15`,
    /// `L = 5`.
    pub fn nba_defaults() -> BayesCrowdConfig {
        BayesCrowdConfig {
            budget: 50,
            latency: 5,
            alpha: 0.003,
            strategy: TaskStrategy::Hhs { m: 15 },
            ..Default::default()
        }
    }

    /// The paper's Synthetic-dataset defaults: `α = 0.01`, `B = 1000`,
    /// `m = 50`, `L = 10`.
    pub fn synthetic_defaults() -> BayesCrowdConfig {
        BayesCrowdConfig::default()
    }

    /// Tasks per round: `μ = ⌈B / L⌉` (Algorithm 4, line 1).
    pub fn tasks_per_round(&self) -> usize {
        if self.latency == 0 {
            self.budget
        } else {
            self.budget.div_ceil(self.latency)
        }
    }

    /// The c-table construction sub-config.
    pub fn ctable_config(&self) -> CTableConfig {
        CTableConfig {
            alpha: self.alpha,
            strategy: self.dominators,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_per_round_matches_algorithm_4() {
        let c = BayesCrowdConfig {
            budget: 6,
            latency: 3,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 2);
        let c = BayesCrowdConfig {
            budget: 7,
            latency: 3,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 3);
        let c = BayesCrowdConfig {
            budget: 5,
            latency: 0,
            ..Default::default()
        };
        assert_eq!(c.tasks_per_round(), 5);
    }

    #[test]
    fn paper_defaults() {
        let nba = BayesCrowdConfig::nba_defaults();
        assert_eq!(nba.budget, 50);
        assert_eq!(nba.latency, 5);
        assert!((nba.alpha - 0.003).abs() < 1e-12);
        assert_eq!(nba.strategy, TaskStrategy::Hhs { m: 15 });
        let syn = BayesCrowdConfig::synthetic_defaults();
        assert_eq!(syn.budget, 1000);
        assert_eq!(syn.strategy, TaskStrategy::Hhs { m: 50 });
    }

    #[test]
    fn solver_kinds_build() {
        assert_eq!(SolverKind::Adpll.build().name(), "ADPLL");
        assert_eq!(SolverKind::Naive.build().name(), "Naive");
        assert_eq!(SolverKind::MonteCarlo.build().name(), "MonteCarlo");
    }
}
