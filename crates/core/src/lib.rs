#![warn(missing_docs)]
//! **BayesCrowd** — answering skyline queries over incomplete data with
//! crowdsourcing.
//!
//! This is the paper's primary contribution: a two-phase framework
//! (Algorithm 1) that
//!
//! 1. **models** the query — trains a Bayesian network over the attributes,
//!    learns a conditional value distribution for every missing cell, and
//!    builds the c-table assigning each object the condition under which it
//!    is a skyline answer (Algorithm 2); then
//! 2. **crowdsources** — iteratively selects conflict-free batches of
//!    triple-choice tasks under a budget `B` and a latency constraint `L`
//!    (Algorithm 4), posts them, folds the answers back into the c-table
//!    via constraint propagation, and finally reports every object whose
//!    condition is true or holds with probability above ½.
//!
//! Task selection inside a batch follows one of three strategies
//! ([`TaskStrategy`]): **FBS** (most frequent expression), **UBS** (highest
//! marginal utility, Definition 6), or **HHS** (frequency-ordered utility
//! search with an `m`-lookahead stop — the paper's recommended balance).
//!
//! The run loop talks to any [`bc_crowd::CrowdPlatform`] — including a
//! fault-injecting one ([`bc_crowd::FaultyPlatform`]) whose tasks can
//! expire or come back inconsistent. Failed tasks are re-queued under the
//! configured [`RetryPolicy`], still within `B` and `L`; when both run out
//! first, the run degrades gracefully (see [`RunReport::degraded`]).
//!
//! ```
//! use bayescrowd::{BayesCrowd, BayesCrowdConfig, TaskStrategy};
//! use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
//! use bc_data::generators::sample::{paper_completion, paper_dataset};
//!
//! let data = paper_dataset();
//! let oracle = GroundTruthOracle::new(paper_completion());
//! let mut platform = SimulatedPlatform::new(oracle, 1.0, 42);
//!
//! let config = BayesCrowdConfig {
//!     budget: 20,
//!     latency: 10,
//!     alpha: 1.0,
//!     strategy: TaskStrategy::Hhs { m: 2 },
//!     ..Default::default()
//! };
//! let report = BayesCrowd::new(config).run(&data, &mut platform);
//! assert_eq!(report.accuracy.unwrap().f1, 1.0);
//! ```
//!
//! The validated way in — a fluent builder plus the fallible entry point
//! [`BayesCrowd::try_run`], which takes any [`bc_obs::Observer`] so the run
//! can be traced or metered:
//!
//! ```
//! use bayescrowd::prelude::*;
//! use bc_crowd::{GroundTruthOracle, SimulatedPlatform};
//! use bc_data::generators::sample::{paper_completion, paper_dataset};
//!
//! let data = paper_dataset();
//! let oracle = GroundTruthOracle::new(paper_completion());
//! let mut platform = SimulatedPlatform::new(oracle, 1.0, 42);
//!
//! let config = BayesCrowdConfig::builder()
//!     .budget(20)
//!     .latency(10)
//!     .alpha(1.0)
//!     .strategy(TaskStrategy::Hhs { m: 2 })
//!     .build()
//!     .expect("valid configuration");
//! let mut metrics = MetricsRecorder::new();
//! let report = BayesCrowd::new(config)
//!     .try_run(&data, &mut platform, &mut metrics)
//!     .expect("run succeeds");
//! assert_eq!(report.accuracy.unwrap().f1, 1.0);
//! assert_eq!(metrics.counters().probability_evals, report.probability_evals);
//! ```
//!
//! For long-running crowd campaigns, [`BayesCrowd::session`] exposes the
//! same loop one round at a time as a resumable [`Session`]:
//! [`Session::step`] runs one round, [`Session::checkpoint`] serializes the
//! full mid-run state to any `Write` as a checksummed `bc-snapshot`
//! document, and [`Session::resume`] revives it after a crash with a
//! deterministic continuation — the resumed run's report is identical
//! (wall-clock durations aside) to the uninterrupted one.

pub mod config;
pub mod error;
pub mod framework;
pub mod report;
pub mod selection;
pub mod session;
pub mod strategy;

pub use bc_crowd::RetryPolicy;
pub use bc_solver::BranchHeuristic;
pub use config::{BayesCrowdConfig, BayesCrowdConfigBuilder, ConfigError, SolverKind};
pub use error::RunError;
pub use framework::BayesCrowd;
pub use report::RunReport;
pub use selection::ObjectRanking;
pub use session::Session;
pub use strategy::TaskStrategy;

/// One-stop imports for driving a run: the framework, its validated
/// configuration surface, the typed errors, and the observability types
/// accepted by [`BayesCrowd::try_run`].
pub mod prelude {
    pub use crate::config::{BayesCrowdConfig, BayesCrowdConfigBuilder, ConfigError, SolverKind};
    pub use crate::error::RunError;
    pub use crate::framework::BayesCrowd;
    pub use crate::report::RunReport;
    pub use crate::selection::ObjectRanking;
    pub use crate::session::Session;
    pub use crate::strategy::TaskStrategy;
    pub use bc_crowd::RetryPolicy;
    pub use bc_obs::{
        Event, JsonLinesSink, MetricsRecorder, NoopObserver, Observer, ProfileReport, RunPhase,
        RunProfiler, Tee,
    };
    pub use bc_solver::BranchHeuristic;
}
