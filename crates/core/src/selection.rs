//! Per-round object ranking and conflict-free task assembly (the two steps
//! of Section 6.2).

use crate::strategy::{expression_frequencies, select_expression, TaskStrategy};
use bc_crowd::Task;
use bc_ctable::CTable;
use bc_data::{ObjectId, VarId};
use bc_solver::utility::object_entropy;
use bc_solver::{Solver, VarDists};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// How open objects are ranked before task selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectRanking {
    /// Descending Shannon entropy of `Pr(φ(o))` — the paper's step (i).
    Entropy,
    /// A seeded random permutation — the ablation showing the entropy
    /// heuristic's value.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
}

/// An open object with its current probability and entropy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankedObject {
    /// The object.
    pub object: ObjectId,
    /// `Pr(φ(o))` under the current distributions.
    pub probability: f64,
    /// `H(o)` (Eq. 3).
    pub entropy: f64,
}

/// Ranks open objects by descending entropy (ties by id, deterministic) —
/// step (i) of task selection.
pub fn rank_by_entropy(probs: &[(ObjectId, f64)]) -> Vec<RankedObject> {
    let mut ranked: Vec<RankedObject> = probs
        .iter()
        .map(|&(object, probability)| RankedObject {
            object,
            probability,
            entropy: object_entropy(probability),
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.entropy
            .partial_cmp(&a.entropy)
            .expect("entropies are finite")
            .then(a.object.cmp(&b.object))
    });
    ranked
}

/// Ranks open objects under the chosen policy.
pub fn rank_objects(probs: &[(ObjectId, f64)], ranking: ObjectRanking) -> Vec<RankedObject> {
    match ranking {
        ObjectRanking::Entropy => rank_by_entropy(probs),
        ObjectRanking::Random { seed } => {
            let mut ranked: Vec<RankedObject> = probs
                .iter()
                .map(|&(object, probability)| RankedObject {
                    object,
                    probability,
                    entropy: object_entropy(probability),
                })
                .collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            ranked.shuffle(&mut rng);
            ranked
        }
    }
}

/// Step (ii): walks the ranked objects and selects one expression (= task)
/// per object under the strategy until `limit` tasks are chosen. With
/// `conflict_free`, no two selected tasks may share a variable — objects
/// whose every expression conflicts are skipped (and more objects further
/// down the ranking are considered instead).
///
/// `blocked` vars are off-limits from the start, in both modes: the
/// framework reserves the variables of tasks already in flight (queued
/// retries) so a round never asks about them twice.
#[allow(clippy::too_many_arguments)] // the paper's Algorithm 4 inputs, passed as-is
pub fn assemble_round(
    ranked: &[RankedObject],
    ctable: &CTable,
    strategy: TaskStrategy,
    solver: &dyn Solver,
    dists: &VarDists,
    limit: usize,
    conflict_free: bool,
    blocked: &BTreeSet<VarId>,
) -> Vec<Task> {
    if limit == 0 {
        return Vec::new();
    }
    // Frequencies are counted over the conditions of the objects considered
    // this round (the paper's "chosen top-k objects").
    let top: Vec<ObjectId> = ranked.iter().take(limit).map(|r| r.object).collect();
    let freq = expression_frequencies(top.iter().map(|&o| ctable.condition(o)));

    let mut used_vars: BTreeSet<VarId> = blocked.clone();
    let mut tasks = Vec::with_capacity(limit);
    for r in ranked {
        if tasks.len() >= limit {
            break;
        }
        let cond = ctable.condition(r.object);
        if cond.is_decided() {
            continue;
        }
        let off_limits = if conflict_free { &used_vars } else { blocked };
        let Some(expr) = select_expression(
            strategy,
            cond,
            &freq,
            off_limits,
            solver,
            dists,
            r.probability,
        ) else {
            continue;
        };
        let task = Task::from_expr(&expr);
        if conflict_free {
            used_vars.extend(task.vars());
        }
        tasks.push(task);
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_bayes::Pmf;
    use bc_ctable::{Condition, Expr};
    use bc_solver::AdpllSolver;

    fn v(o: u32, a: u16) -> VarId {
        VarId::new(o, a)
    }

    #[test]
    fn ranking_prefers_uncertain_objects() {
        let ranked =
            rank_by_entropy(&[(ObjectId(0), 0.95), (ObjectId(1), 0.5), (ObjectId(2), 0.7)]);
        assert_eq!(ranked[0].object, ObjectId(1));
        assert_eq!(ranked[1].object, ObjectId(2));
        assert_eq!(ranked[2].object, ObjectId(0));
        assert!(ranked[0].entropy > ranked[2].entropy);
    }

    #[test]
    fn random_ranking_is_a_seeded_permutation() {
        let probs: Vec<(ObjectId, f64)> = (0..10).map(|i| (ObjectId(i), 0.1 * i as f64)).collect();
        let a = rank_objects(&probs, ObjectRanking::Random { seed: 4 });
        let b = rank_objects(&probs, ObjectRanking::Random { seed: 4 });
        assert_eq!(a, b, "same seed, same order");
        let c = rank_objects(&probs, ObjectRanking::Random { seed: 5 });
        assert_ne!(a, c, "different seed, different order");
        // Same multiset of objects as the entropy ranking.
        let mut ids: Vec<ObjectId> = a.iter().map(|r| r.object).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).map(ObjectId).collect::<Vec<_>>());
    }

    #[test]
    fn ranking_breaks_ties_by_id() {
        let ranked = rank_by_entropy(&[(ObjectId(3), 0.5), (ObjectId(1), 0.5)]);
        assert_eq!(ranked[0].object, ObjectId(1));
    }

    fn two_object_setup() -> (CTable, VarDists) {
        // o0: (x < 5), o1: (x > 2 ∨ y < 3) — they share variable x.
        let x = v(9, 0);
        let y = v(9, 1);
        let ct = CTable::new(vec![
            Condition::from_clauses(vec![vec![Expr::lt(x, 5)]]),
            Condition::from_clauses(vec![vec![Expr::gt(x, 2), Expr::lt(y, 3)]]),
        ]);
        let dists: VarDists = [(x, Pmf::uniform(10)), (y, Pmf::uniform(10))]
            .into_iter()
            .collect();
        (ct, dists)
    }

    #[test]
    fn conflict_free_round_never_shares_variables() {
        let (ct, dists) = two_object_setup();
        let solver = AdpllSolver::new();
        let ranked = rank_by_entropy(&[(ObjectId(0), 0.5), (ObjectId(1), 0.6)]);
        let tasks = assemble_round(
            &ranked,
            &ct,
            TaskStrategy::Fbs,
            &solver,
            &dists,
            2,
            true,
            &BTreeSet::new(),
        );
        assert_eq!(tasks.len(), 2);
        assert!(!tasks[0].conflicts_with(&tasks[1]));
    }

    #[test]
    fn without_conflict_avoidance_duplicate_vars_can_appear() {
        let (ct, dists) = two_object_setup();
        let solver = AdpllSolver::new();
        let ranked = rank_by_entropy(&[(ObjectId(0), 0.5), (ObjectId(1), 0.6)]);
        // FBS picks the x-expression for both objects when not blocked
        // (x-expressions are the most frequent across the two conditions).
        let tasks = assemble_round(
            &ranked,
            &ct,
            TaskStrategy::Fbs,
            &solver,
            &dists,
            2,
            false,
            &BTreeSet::new(),
        );
        assert_eq!(tasks.len(), 2);
        assert!(tasks[0].conflicts_with(&tasks[1]));
    }

    #[test]
    fn blocked_vars_are_off_limits_in_both_modes() {
        let (ct, dists) = two_object_setup();
        let solver = AdpllSolver::new();
        let ranked = rank_by_entropy(&[(ObjectId(0), 0.5), (ObjectId(1), 0.6)]);
        // Reserving x forces every selected task onto other variables.
        let blocked: BTreeSet<VarId> = [v(9, 0)].into_iter().collect();
        for conflict_free in [true, false] {
            let tasks = assemble_round(
                &ranked,
                &ct,
                TaskStrategy::Fbs,
                &solver,
                &dists,
                2,
                conflict_free,
                &blocked,
            );
            assert!(
                tasks
                    .iter()
                    .all(|t| t.vars().all(|var| !blocked.contains(&var))),
                "cf={conflict_free}: selected a blocked variable in {tasks:?}"
            );
            // Only o1 has a non-x expression, so exactly one task fits.
            assert_eq!(tasks.len(), 1, "cf={conflict_free}");
        }
    }

    #[test]
    fn limit_caps_the_batch() {
        let (ct, dists) = two_object_setup();
        let solver = AdpllSolver::new();
        let ranked = rank_by_entropy(&[(ObjectId(0), 0.5), (ObjectId(1), 0.6)]);
        let tasks = assemble_round(
            &ranked,
            &ct,
            TaskStrategy::Fbs,
            &solver,
            &dists,
            1,
            true,
            &BTreeSet::new(),
        );
        assert_eq!(tasks.len(), 1);
        assert!(assemble_round(
            &ranked,
            &ct,
            TaskStrategy::Fbs,
            &solver,
            &dists,
            0,
            true,
            &BTreeSet::new()
        )
        .is_empty());
    }
}
