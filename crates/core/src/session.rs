//! Resumable run sessions with durable checkpoints.
//!
//! A crowd run spans real human latency, and every answered task is money
//! already spent. [`Session`] exposes the crowdsourcing loop of Algorithm 4
//! one round at a time ([`Session::step`]) so a caller can persist the full
//! mid-run state between rounds ([`Session::checkpoint`]) and, after a
//! crash, pick the run back up exactly where it stopped
//! ([`Session::resume`]).
//!
//! Resumption is *deterministically continuing*: a run resumed at round `k`
//! produces a [`RunReport`] identical field-by-field (wall-clock durations
//! aside) to the uninterrupted run, because the checkpoint carries
//! everything the remaining rounds depend on — the learned distributions,
//! the c-table and constraint store, the retry queue, the probability
//! cache, every counter, and the platform's own RNG streams
//! ([`bc_crowd::PlatformState`]).
//!
//! [`BayesCrowd::run`](crate::BayesCrowd::run) and
//! [`BayesCrowd::try_run`](crate::BayesCrowd::try_run) are thin loops over
//! this type.

use crate::config::{BayesCrowdConfig, SolverKind};
use crate::error::RunError;
use crate::report::RunReport;
use crate::selection::{assemble_round, rank_objects, ObjectRanking};
use crate::strategy::TaskStrategy;
use bc_bayes::anneal::AnnealConfig;
use bc_bayes::em::EmConfig;
use bc_bayes::learn::LearnConfig;
use bc_bayes::{MissingValueModel, ModelConfig, Pmf, StructureSearch};
use bc_crowd::{CrowdPlatform, PlatformState, RetryPolicy, Task, TaskAnswer, TaskOutcome};
use bc_crowd::{CrowdStats, FaultStats};
use bc_ctable::{
    CTable, Clause, CmpOp, Condition, ConstraintStore, DominatorStrategy, Expr, Operand, Relation,
};
use bc_data::{Accuracy, Dataset, Domain, ObjectId, VarId};
use bc_obs::{Event, NoopObserver, Observer, RunPhase, Span};
use bc_snapshot::{fnv1a64, Snapshot, SnapshotError, SnapshotWriter, Value};
use bc_solver::{BranchHeuristic, SolveStats, Solver, SolverError, VarDists};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Per-object probabilities plus the solver effort behind them: aggregated
/// stats, the number of solver calls, and how many of those calls were
/// fallback re-solves after the configured solver failed.
type SolvedBatch = Result<(Vec<(ObjectId, f64)>, SolveStats, u64, u64), SolverError>;

/// A failed task waiting in the retry queue.
#[derive(Clone, Copy, Debug)]
struct PendingTask {
    task: Task,
    /// Posting attempts so far (≥ 1; the task failed each of them).
    attempts: usize,
    /// First round (1-based) the task may be re-posted in, per the retry
    /// policy's backoff.
    eligible_round: usize,
}

/// Whether a failed task is still worth re-posting: propagation may have
/// decided everything its variables touch, in which case the answer would
/// be useless.
fn task_still_open(ctable: &CTable, task: &Task) -> bool {
    let vars: BTreeSet<VarId> = task.vars().collect();
    ctable
        .open_objects()
        .iter()
        .any(|&o| !ctable.condition(o).vars().is_disjoint(&vars))
}

/// Per-object condition probabilities, optionally in parallel, emitting one
/// [`Event::ProbabilityBatch`] per non-empty batch. Solver errors (e.g. the
/// naive enumerator's state cap) fall back to a fresh, identically
/// configured ADPLL; the fallback count is surfaced on the event so the
/// degradation is visible. An error that survives the fallback aborts the
/// run as [`RunError::Solver`].
#[allow(clippy::too_many_arguments)]
fn probabilities(
    config: &BayesCrowdConfig,
    ctable: &CTable,
    objects: &[ObjectId],
    solver: &dyn Solver,
    dists: &VarDists,
    phase: RunPhase,
    observer: &mut dyn Observer,
) -> Result<Vec<(ObjectId, f64)>, RunError> {
    if objects.is_empty() {
        return Ok(Vec::new());
    }
    let t = Instant::now();
    let (out, stats, solver_calls, fallbacks) =
        solve_batch(config, ctable, objects, solver, dists)?;
    observer.event(&Event::ProbabilityBatch {
        phase,
        objects: objects.len(),
        solver_calls,
        branches: stats.branches,
        cache_hits: stats.cache_hits,
        fallbacks,
        nanos: t.elapsed().as_nanos(),
    });
    observer.event(&Event::SolverSearch {
        phase,
        decisions: stats.branches,
        direct_components: stats.direct_components,
        component_splits: stats.component_splits,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        max_depth: stats.max_depth,
    });
    Ok(out)
}

fn solve_batch(
    config: &BayesCrowdConfig,
    ctable: &CTable,
    objects: &[ObjectId],
    solver: &dyn Solver,
    dists: &VarDists,
) -> SolvedBatch {
    // One worker's share: solve sequentially, attributing per-call effort
    // via snapshot diffs and counting fallback re-solves. The fallback is
    // built through `SolverKind::build` so the configured branching
    // heuristic and caching flag survive it.
    fn solve_chunk(
        heuristic: BranchHeuristic,
        caching: bool,
        ctable: &CTable,
        objects: &[ObjectId],
        solver: &dyn Solver,
        dists: &VarDists,
    ) -> SolvedBatch {
        let mut out = Vec::with_capacity(objects.len());
        let mut stats = SolveStats::default();
        let mut calls = 0u64;
        let mut fallbacks = 0u64;
        for &o in objects {
            let cond = ctable.condition(o);
            calls += 1;
            let (p, s) = match solver.probability_with_stats(cond, dists) {
                Ok(solved) => solved,
                Err(_) => {
                    calls += 1;
                    fallbacks += 1;
                    SolverKind::Adpll
                        .build(heuristic, caching)
                        .probability_with_stats(cond, dists)?
                }
            };
            stats += s;
            out.push((o, p));
        }
        Ok((out, stats, calls, fallbacks))
    }

    let (heuristic, caching) = (config.branch_heuristic, config.solver_caching);
    if config.parallel && objects.len() > 64 && config.solver == SolverKind::Adpll {
        let n_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(objects.len());
        let chunk = objects.len().div_ceil(n_threads);
        let mut out: Vec<(ObjectId, f64)> = Vec::with_capacity(objects.len());
        let mut stats = SolveStats::default();
        let mut calls = 0u64;
        let mut fallbacks = 0u64;
        let mut first_err: Option<SolverError> = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = objects
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        // Per-thread solvers carry the run's configuration
                        // instead of silently reverting to defaults.
                        let local = SolverKind::Adpll.build(heuristic, caching);
                        solve_chunk(heuristic, caching, ctable, slice, local.as_ref(), dists)
                    })
                })
                .collect();
            for h in handles {
                match h.join().expect("probability worker panicked") {
                    Ok((chunk_out, chunk_stats, chunk_calls, chunk_fallbacks)) => {
                        out.extend(chunk_out);
                        stats += chunk_stats;
                        calls += chunk_calls;
                        fallbacks += chunk_fallbacks;
                    }
                    Err(e) => first_err = first_err.take().or(Some(e)),
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok((out, stats, calls, fallbacks)),
        }
    } else {
        solve_chunk(heuristic, caching, ctable, objects, solver, dists)
    }
}

/// An in-flight crowd run: the crowdsourcing phase of Algorithm 4, paused
/// between rounds.
///
/// Obtain one from [`BayesCrowd::session`](crate::BayesCrowd::session)
/// (which runs the modeling phase), drive it with [`Session::step`], and
/// close it with [`Session::finalize`]. Between steps — after a round's
/// answers have been propagated and before the next task selection — the
/// whole state can be written out with [`Session::checkpoint`] and later
/// revived with [`Session::resume`].
pub struct Session<'a> {
    config: BayesCrowdConfig,
    data: Dataset,
    platform: &'a mut dyn CrowdPlatform,
    observer: Option<&'a mut dyn Observer>,
    noop: NoopObserver,
    solver: Box<dyn Solver>,
    base_pmfs: BTreeMap<VarId, Pmf>,
    dists: VarDists,
    ctable: CTable,
    store: ConstraintStore,
    budget: usize,
    mu: usize,
    rounds_before: usize,
    pending: Vec<PendingTask>,
    tasks_expired: usize,
    tasks_retried: usize,
    rounds_stalled: usize,
    idle_rounds: usize,
    round_idx: usize,
    total_posted: usize,
    total_answered: usize,
    evals: u64,
    prob_cache: BTreeMap<ObjectId, f64>,
    finished: bool,
    modeling_time: Duration,
    /// Wall-clock accumulated by earlier incarnations of this run (zero for
    /// a fresh session, the checkpointed elapsed time after a resume).
    prior_elapsed: Duration,
    started: Instant,
}

impl<'a> Session<'a> {
    /// Runs the modeling phase (Algorithm 1 lines 1–3) and returns the
    /// session paused before the first crowdsourcing round. Emits the same
    /// events a `try_run` would up to this point.
    pub(crate) fn start(
        config: BayesCrowdConfig,
        data: &Dataset,
        platform: &'a mut dyn CrowdPlatform,
        mut observer: Option<&'a mut dyn Observer>,
    ) -> Result<Session<'a>, RunError> {
        if data.n_objects() == 0 {
            return Err(RunError::EmptyDataset);
        }
        let started = Instant::now();
        let mut local_noop = NoopObserver;
        let obs: &mut dyn Observer = match observer.as_deref_mut() {
            Some(o) => o,
            None => &mut local_noop,
        };
        obs.event(&Event::RunStarted {
            objects: data.n_objects(),
            attrs: data.n_attrs(),
            missing_vars: data.n_missing(),
            budget: config.budget,
            latency: config.latency,
        });

        // ---- Modeling phase --------------------------------------------
        let model_span = Span::start(RunPhase::Model);
        let (model, model_stats) = MissingValueModel::learn_with_stats(data, &config.model);
        let base_pmfs: BTreeMap<VarId, Pmf> = model.into_pmfs();
        let dists: VarDists = base_pmfs.iter().map(|(k, v)| (*k, v.clone())).collect();
        obs.event(&Event::ModelTrained {
            bic: model_stats.bic,
            edges: model_stats.edges,
            em_iters: model_stats.em_iters,
            search_iters: model_stats.search_iters,
            nanos: model_span.elapsed_nanos(),
        });
        model_span.finish(obs);

        let ctable_span = Span::start(RunPhase::CTable);
        let (ctable, build_stats) =
            bc_ctable::build_ctable_with_stats(data, &config.ctable_config());
        obs.event(&Event::CTableBuilt {
            objects: build_stats.objects,
            open_objects: build_stats.open,
            vars: build_stats.vars,
            exprs: build_stats.exprs,
            pruned: build_stats.pruned,
            candidates: build_stats.candidates,
            bitset_words: build_stats.bitset_words,
            nanos: ctable_span.elapsed_nanos(),
        });
        ctable_span.finish(obs);
        let modeling_time = started.elapsed();

        let solver = config.build_solver();
        let store = ConstraintStore::new(data);
        let budget = config.budget;
        let mu = config.tasks_per_round().max(1);
        let rounds_before = platform.stats().rounds;
        Ok(Session {
            config,
            data: data.clone(),
            platform,
            observer,
            noop: NoopObserver,
            solver,
            base_pmfs,
            dists,
            ctable,
            store,
            budget,
            mu,
            rounds_before,
            pending: Vec::new(),
            tasks_expired: 0,
            tasks_retried: 0,
            rounds_stalled: 0,
            idle_rounds: 0,
            round_idx: 0,
            total_posted: 0,
            total_answered: 0,
            evals: 0,
            prob_cache: BTreeMap::new(),
            finished: false,
            modeling_time,
            prior_elapsed: Duration::ZERO,
            started,
        })
    }

    /// The session's configuration.
    pub fn config(&self) -> &BayesCrowdConfig {
        &self.config
    }

    /// Rounds executed so far (the round counter of the last `step`).
    pub fn round(&self) -> usize {
        self.round_idx
    }

    /// Budget remaining.
    pub fn budget_left(&self) -> usize {
        self.budget
    }

    /// Symbolic expressions still undecided in the c-table.
    pub fn open_exprs(&self) -> usize {
        self.ctable.n_open_exprs()
    }

    /// Whether the crowdsourcing loop has terminated ([`Session::step`]
    /// will do nothing more; only [`Session::finalize`] remains).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The c-table as of the last step — each object's current condition
    /// after all propagation so far. Together with [`Session::dists`] this
    /// is everything an external oracle needs to recompute the session's
    /// probabilities from scratch.
    pub fn ctable(&self) -> &CTable {
        &self.ctable
    }

    /// The current per-variable posterior distributions (the learned pmfs,
    /// truncated by every crowd answer propagated so far).
    pub fn dists(&self) -> &VarDists {
        &self.dists
    }

    /// Every object's probability of being a skyline answer under the
    /// current posterior: `1.0` for conditions already decided true, `0.0`
    /// for false, and `Pr(φ(o))` via the configured solver otherwise.
    ///
    /// This is the oracle-checking hook: callable between any two
    /// [`Session::step`]s (or after a resume), it exposes the exact
    /// per-object numbers a [`Session::finalize`] at this instant would
    /// threshold — so a test can compare every intermediate state against
    /// an independent possible-worlds computation, not just the final
    /// [`RunReport`]. Freshly solved probabilities land in the session's
    /// round-level cache, exactly as a finalize would leave them.
    pub fn object_probabilities(&mut self) -> Result<BTreeMap<ObjectId, f64>, RunError> {
        let open = self.ctable.open_objects();
        let stale: Vec<ObjectId> = open
            .iter()
            .copied()
            .filter(|o| !self.prob_cache.contains_key(o))
            .collect();
        let observer: &mut dyn Observer = match self.observer.as_deref_mut() {
            Some(o) => o,
            None => &mut self.noop,
        };
        let fresh = probabilities(
            &self.config,
            &self.ctable,
            &stale,
            self.solver.as_ref(),
            &self.dists,
            RunPhase::Finalize,
            observer,
        )?;
        self.evals += fresh.len() as u64;
        self.prob_cache.extend(fresh);
        let mut out = BTreeMap::new();
        for (o, cond) in self.ctable.iter() {
            let p = match cond {
                Condition::True => 1.0,
                Condition::False => 0.0,
                Condition::Cnf(_) => self.prob_cache[&o],
            };
            out.insert(o, p);
        }
        Ok(out)
    }

    /// Runs one crowdsourcing round (one iteration of Algorithm 4):
    /// selection, posting, and answer propagation. Returns `Ok(true)` while
    /// the loop may continue and `Ok(false)` once it has terminated (budget
    /// or latency exhausted, nothing left to ask, or every expression
    /// decided). Idempotent after termination.
    pub fn step(&mut self) -> Result<bool, RunError> {
        if self.finished {
            return Ok(false);
        }
        let Session {
            config,
            data,
            platform,
            observer,
            noop,
            solver,
            base_pmfs,
            dists,
            ctable,
            store,
            budget,
            mu,
            rounds_before,
            pending,
            tasks_expired,
            tasks_retried,
            rounds_stalled,
            idle_rounds,
            round_idx,
            total_posted,
            total_answered,
            evals,
            prob_cache,
            finished,
            ..
        } = self;
        let observer: &mut dyn Observer = match observer {
            Some(o) => &mut **o,
            None => noop,
        };
        let retry = config.retry;

        if *budget == 0 || ctable.n_open_exprs() == 0 {
            *finished = true;
            return Ok(false);
        }
        // Latency is measured against the platform's own round counter (a
        // straggling platform may consume several rounds per posted batch)
        // plus locally idled backoff rounds.
        if config.latency > 0
            && (platform.stats().rounds - *rounds_before) + *idle_rounds >= config.latency
        {
            *finished = true;
            return Ok(false);
        }
        *round_idx += 1;
        observer.event(&Event::RoundStarted { round: *round_idx });
        let round_start = Instant::now();
        let limit = (*mu).min(*budget);
        let select_span = Span::start(RunPhase::Select);

        // Re-posts come first: failed tasks whose backoff has elapsed and
        // whose answer is still useful (propagation may have decided
        // everything they touch in the meantime — those drop quietly).
        let mut batch: Vec<Task> = Vec::new();
        let mut attempts_in_batch: Vec<usize> = Vec::new();
        let mut waiting: Vec<PendingTask> = Vec::new();
        for p in pending.drain(..) {
            if !task_still_open(ctable, &p.task) {
                continue;
            }
            if p.eligible_round <= *round_idx && batch.len() < limit {
                batch.push(p.task);
                attempts_in_batch.push(p.attempts);
            } else {
                waiting.push(p);
            }
        }
        *pending = waiting;
        let n_retries = batch.len();
        *tasks_retried += n_retries;
        if n_retries > 0 && retry.escalate_workers > 0 {
            platform.escalate(retry.escalate_workers);
        }

        // Variables already spoken for: this round's re-posts and the
        // queued tasks still backing off. Fresh selection must not ask
        // about them a second time.
        let mut reserved: BTreeSet<VarId> = batch.iter().flat_map(|t| t.vars()).collect();
        reserved.extend(pending.iter().flat_map(|p| p.task.vars()));

        if batch.len() < limit {
            let open = ctable.open_objects();
            let stale: Vec<ObjectId> = open
                .iter()
                .copied()
                .filter(|o| !prob_cache.contains_key(o))
                .collect();
            let fresh = probabilities(
                config,
                ctable,
                &stale,
                solver.as_ref(),
                dists,
                RunPhase::Select,
                observer,
            )?;
            *evals += fresh.len() as u64;
            prob_cache.extend(fresh);
            let probs: Vec<(ObjectId, f64)> = open.iter().map(|o| (*o, prob_cache[o])).collect();
            let ranked = rank_objects(&probs, config.ranking);
            let fresh_tasks = assemble_round(
                &ranked,
                ctable,
                config.strategy,
                solver.as_ref(),
                dists,
                limit - batch.len(),
                config.conflict_free,
                &reserved,
            );
            attempts_in_batch.resize(batch.len() + fresh_tasks.len(), 0);
            batch.extend(fresh_tasks);
        }
        select_span.finish(observer);

        if batch.is_empty() {
            observer.event(&Event::RoundFinished {
                round: *round_idx,
                posted: 0,
                answered: 0,
                expired: 0,
                requeued: 0,
                retried: 0,
                nanos: round_start.elapsed().as_nanos(),
            });
            if pending.is_empty() {
                *finished = true;
                return Ok(false);
            }
            // Everything still owed is backing off: idle one round.
            *idle_rounds += 1;
            *rounds_stalled += 1;
            return Ok(true);
        }

        // Algorithm 4 line 8: B ← max(B − μ, 0). The full per-round
        // allowance is charged even if conflicts left some of it unused,
        // which is what bounds the number of rounds by L. Re-posts are
        // tasks like any other and consume the same allowance.
        *budget = budget.saturating_sub(limit);

        let post_span = Span::start(RunPhase::Post);
        let results = platform.post_round(&batch);
        post_span.finish(observer);
        *total_posted += batch.len();

        let mut answers: Vec<TaskAnswer> = Vec::with_capacity(batch.len());
        let mut round_expired = 0usize;
        let mut round_requeued = 0usize;
        for (i, task) in batch.iter().enumerate() {
            // Defensive against foreign platforms returning short result
            // vectors: a missing result is an expired task.
            let outcome = results
                .get(i)
                .map(|r| r.outcome)
                .unwrap_or(TaskOutcome::Expired);
            match outcome {
                TaskOutcome::Answered(relation) => answers.push(TaskAnswer {
                    task: *task,
                    relation,
                }),
                TaskOutcome::Expired | TaskOutcome::Inconsistent => {
                    let attempts = attempts_in_batch[i] + 1;
                    if attempts < retry.max_attempts {
                        round_requeued += 1;
                        pending.push(PendingTask {
                            task: *task,
                            attempts,
                            eligible_round: *round_idx + 1 + retry.backoff_rounds(attempts),
                        });
                    } else {
                        round_expired += 1;
                    }
                }
            }
        }
        *tasks_expired += round_expired;
        *total_answered += answers.len();
        if answers.is_empty() {
            *rounds_stalled += 1;
        }
        let propagate_span = Span::start(RunPhase::Propagate);
        // Invalidate cached probabilities of conditions touching any
        // variable the round asked about (their pmfs and/or conditions
        // change below).
        let touched: BTreeSet<VarId> = answers.iter().flat_map(|a| a.task.vars()).collect();
        prob_cache.retain(|o, _| {
            let cond = ctable.condition(*o);
            !cond.is_decided() && cond.vars().is_disjoint(&touched)
        });
        if config.propagate_answers {
            for a in &answers {
                store.record(a.task.var, a.task.rhs, a.relation);
            }
            let prop_stats = ctable.propagate(store);
            // Re-condition each touched variable's distribution on its
            // narrowed candidate set.
            for (var, base) in base_pmfs.iter() {
                let mask = store.mask(*var);
                if let Some(pmf) = base.conditioned(mask) {
                    dists.insert(*var, pmf);
                }
            }
            observer.event(&Event::Propagated {
                answers: answers.len(),
                decided: prop_stats.decided,
                depth: prop_stats.max_depth,
                nanos: propagate_span.elapsed_nanos(),
            });
        } else {
            // Ablation: an answer only settles the exact expression it was
            // derived from — no cross-condition inference.
            let answered: BTreeMap<Task, Relation> =
                answers.iter().map(|a| (a.task, a.relation)).collect();
            for o in data.objects() {
                let cond = ctable.condition(o);
                if cond.is_decided() {
                    continue;
                }
                let simplified = cond.simplify(|e| {
                    answered
                        .get(&Task::from_expr(e))
                        .map(|&rel| crate::framework::expr_truth(e.op(), rel))
                });
                ctable.set_condition(o, simplified);
            }
        }
        propagate_span.finish(observer);
        observer.event(&Event::RoundFinished {
            round: *round_idx,
            posted: batch.len(),
            answered: answers.len(),
            expired: round_expired,
            requeued: round_requeued,
            retried: n_retries,
            nanos: round_start.elapsed().as_nanos(),
        });
        Ok(true)
    }

    /// Drives any remaining rounds to completion, derives the answer set,
    /// and returns the report. Consumes the session.
    ///
    /// A platform that answered nothing at all surfaces as
    /// [`RunError::PlatformExhausted`] with the degraded report attached,
    /// exactly as `try_run` does.
    pub fn finalize(mut self) -> Result<RunReport, RunError> {
        while self.step()? {}
        let Session {
            config,
            platform,
            mut observer,
            mut noop,
            solver,
            dists,
            ctable,
            budget,
            pending,
            mut tasks_expired,
            tasks_retried,
            rounds_stalled,
            total_posted,
            total_answered,
            mut evals,
            mut prob_cache,
            modeling_time,
            prior_elapsed,
            started,
            ..
        } = self;
        let observer: &mut dyn Observer = match &mut observer {
            Some(o) => *o,
            None => &mut noop,
        };

        // Tasks still queued (and still useful) when budget or latency ran
        // out never got their answer: graceful degradation, not an error.
        let tasks_abandoned = pending
            .iter()
            .filter(|p| task_still_open(&ctable, &p.task))
            .count();
        tasks_expired += tasks_abandoned;
        if tasks_abandoned > 0 {
            observer.event(&Event::Degraded { tasks_abandoned });
        }
        let degraded = tasks_expired > 0;

        // ---- Derive the answer set -------------------------------------
        // Open conditions keep their symbolic variables; their objects are
        // judged by the probability under the current posterior, exactly as
        // in a fully-budgeted run that simply stopped earlier. Cached
        // probabilities are still valid (invalidation dropped everything a
        // crowd answer touched), so only stale conditions are re-solved.
        let finalize_span = Span::start(RunPhase::Finalize);
        let open = ctable.open_objects();
        let stale: Vec<ObjectId> = open
            .iter()
            .copied()
            .filter(|o| !prob_cache.contains_key(o))
            .collect();
        let fresh = probabilities(
            &config,
            &ctable,
            &stale,
            solver.as_ref(),
            &dists,
            RunPhase::Finalize,
            observer,
        )?;
        evals += fresh.len() as u64;
        prob_cache.extend(fresh);
        let certain = ctable.certain_answers();
        let mut result = certain.clone();
        let mut open_probabilities = BTreeMap::new();
        for o in open {
            let p = prob_cache[&o];
            open_probabilities.insert(o, p);
            if p > config.answer_threshold {
                result.push(o);
            }
        }
        result.sort_unstable();
        finalize_span.finish(observer);

        let truth = platform
            .ground_truth()
            .and_then(|complete| bc_data::skyline::skyline_sfs(complete).ok());
        let accuracy = truth.map(|t| Accuracy::of(&result, &t));

        let total_time = prior_elapsed + started.elapsed();
        let report = RunReport {
            result,
            certain,
            open_probabilities,
            accuracy,
            crowd: platform.stats(),
            budget_left: budget,
            modeling_time,
            total_time,
            probability_evals: evals,
            open_exprs_left: ctable.n_open_exprs(),
            tasks_expired,
            tasks_retried,
            rounds_stalled,
            degraded,
        };
        observer.event(&Event::RunFinished {
            rounds: report.crowd.rounds,
            tasks_posted: report.crowd.tasks_posted,
            tasks_answered: total_answered,
            tasks_expired: report.tasks_expired,
            tasks_retried: report.tasks_retried,
            probability_evals: report.probability_evals,
            nanos: total_time.as_nanos(),
        });

        // A platform that swallowed every single task is indistinguishable
        // from no crowd at all: surface it as an error with the degraded
        // report attached (the trace above is already complete).
        if total_posted > 0 && total_answered == 0 && report.open_exprs_left > 0 {
            return Err(RunError::PlatformExhausted {
                report: Box::new(report),
            });
        }
        Ok(report)
    }

    // ---- Checkpoint / resume -------------------------------------------

    /// Serializes the full mid-run state to `out` as one `bc-snapshot`
    /// document and emits [`Event::CheckpointWritten`]. Call it between
    /// steps — after a round's answers have been propagated, before the
    /// next selection.
    ///
    /// Fails with [`RunError::Snapshot`] when the platform does not support
    /// durable state ([`bc_crowd::CrowdPlatform::save_state`] returning
    /// `None`) or the writer fails.
    pub fn checkpoint<W: Write>(&mut self, out: &mut W) -> Result<(), RunError> {
        let t = Instant::now();
        let state = self.platform.save_state().ok_or_else(|| {
            inv("platform does not support checkpointing (save_state returned None)")
        })?;
        let config_v = enc_config(&self.config);
        let dataset_v = enc_dataset(&self.data);
        let fp = fingerprint_of(&config_v, &dataset_v);
        let mut w = SnapshotWriter::new(out, &fp)?;
        w.section("config", config_v)?;
        w.section("dataset", dataset_v)?;
        w.section("model", enc_pmf_map(self.base_pmfs.iter()))?;
        w.section("dists", enc_pmf_map(self.dists.iter()))?;
        w.section("store", enc_store(&self.store))?;
        w.section("ctable", enc_ctable(&self.ctable))?;
        w.section("progress", self.enc_progress())?;
        w.section("pending", enc_pending(&self.pending))?;
        w.section("prob_cache", enc_prob_cache(&self.prob_cache))?;
        w.section("platform", enc_platform_state(&state))?;
        let bytes = w.finish()?;
        let observer: &mut dyn Observer = match self.observer.as_deref_mut() {
            Some(o) => o,
            None => &mut self.noop,
        };
        observer.event(&Event::CheckpointWritten {
            round: self.round_idx,
            bytes,
            nanos: t.elapsed().as_nanos(),
        });
        Ok(())
    }

    /// Restores a session from a checkpoint, unobserved.
    ///
    /// `platform` must be constructed the same way as the one the
    /// checkpoint was taken from (same oracle, rates, and cost model); its
    /// mutable state — accounting, answer log, RNG streams — is overwritten
    /// from the snapshot via
    /// [`load_state`](bc_crowd::CrowdPlatform::load_state). The snapshot's
    /// fingerprint, checksum, and section shapes are all verified; a torn
    /// or foreign checkpoint is rejected, never half-resumed.
    pub fn resume(
        reader: impl Read,
        platform: &'a mut dyn CrowdPlatform,
    ) -> Result<Session<'a>, RunError> {
        Session::resume_inner(reader, platform, None)
    }

    /// [`Session::resume`] with an observer; emits [`Event::Resumed`] and
    /// streams all later events to it.
    pub fn resume_observed(
        reader: impl Read,
        platform: &'a mut dyn CrowdPlatform,
        observer: &'a mut dyn Observer,
    ) -> Result<Session<'a>, RunError> {
        Session::resume_inner(reader, platform, Some(observer))
    }

    fn resume_inner(
        reader: impl Read,
        platform: &'a mut dyn CrowdPlatform,
        observer: Option<&'a mut dyn Observer>,
    ) -> Result<Session<'a>, RunError> {
        let snap = Snapshot::parse(reader)?;
        let config_v = snap.section("config")?;
        let dataset_v = snap.section("dataset")?;
        let fp = fingerprint_of(config_v, dataset_v);
        if fp != snap.fingerprint() {
            return Err(inv(format!(
                "snapshot fingerprint {} does not match its own config+dataset ({fp})",
                snap.fingerprint()
            ))
            .into());
        }
        let config = dec_config(config_v)?;
        let data = dec_dataset(dataset_v)?;
        let base_pmfs = dec_pmf_map(snap.section("model")?)?;
        let dists = VarDists::new(dec_pmf_map(snap.section("dists")?)?);
        let store = dec_store(snap.section("store")?)?;
        let ctable = dec_ctable(snap.section("ctable")?)?;
        let pending = dec_pending(snap.section("pending")?)?;
        let prob_cache = dec_prob_cache(snap.section("prob_cache")?)?;
        let state = dec_platform_state(snap.section("platform")?)?;
        platform
            .load_state(&state)
            .map_err(|e| inv(format!("platform cannot restore this checkpoint: {e}")))?;

        let p = snap.section("progress")?;
        let solver = config.build_solver();
        let mu = config.tasks_per_round().max(1);
        let mut session = Session {
            budget: get_usize(p, "budget")?,
            mu,
            rounds_before: get_usize(p, "rounds_before")?,
            tasks_expired: get_usize(p, "tasks_expired")?,
            tasks_retried: get_usize(p, "tasks_retried")?,
            rounds_stalled: get_usize(p, "rounds_stalled")?,
            idle_rounds: get_usize(p, "idle_rounds")?,
            round_idx: get_usize(p, "round")?,
            total_posted: get_usize(p, "total_posted")?,
            total_answered: get_usize(p, "total_answered")?,
            evals: get_u64(p, "evals")?,
            finished: get_bool(p, "finished")?,
            modeling_time: Duration::from_nanos(get_u64(p, "modeling_nanos")?),
            prior_elapsed: Duration::from_nanos(get_u64(p, "elapsed_nanos")?),
            started: Instant::now(),
            config,
            data,
            platform,
            observer,
            noop: NoopObserver,
            solver,
            base_pmfs,
            dists,
            ctable,
            store,
            pending,
            prob_cache,
        };
        let obs: &mut dyn Observer = match session.observer.as_deref_mut() {
            Some(o) => o,
            None => &mut session.noop,
        };
        obs.event(&Event::Resumed {
            round: session.round_idx,
            budget_left: session.budget,
            open_exprs: session.ctable.n_open_exprs(),
        });
        Ok(session)
    }

    fn enc_progress(&self) -> Value {
        Value::obj(vec![
            ("budget", uint(self.budget)),
            ("round", uint(self.round_idx)),
            ("idle_rounds", uint(self.idle_rounds)),
            ("tasks_expired", uint(self.tasks_expired)),
            ("tasks_retried", uint(self.tasks_retried)),
            ("rounds_stalled", uint(self.rounds_stalled)),
            ("total_posted", uint(self.total_posted)),
            ("total_answered", uint(self.total_answered)),
            ("evals", Value::Int(self.evals as i128)),
            ("rounds_before", uint(self.rounds_before)),
            ("finished", Value::Bool(self.finished)),
            (
                "modeling_nanos",
                Value::Int(self.modeling_time.as_nanos().min(u64::MAX as u128) as i128),
            ),
            (
                "elapsed_nanos",
                Value::Int(
                    (self.prior_elapsed + self.started.elapsed())
                        .as_nanos()
                        .min(u64::MAX as u128) as i128,
                ),
            ),
        ])
    }
}

// ---- Codecs ------------------------------------------------------------
//
// Everything below maps domain state onto `bc_snapshot::Value` trees. The
// shapes are part of the on-disk format (see DESIGN.md); changing any of
// them requires bumping `bc_snapshot::FORMAT_VERSION`.

fn inv(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid(msg.into())
}

fn uint(n: usize) -> Value {
    Value::Int(n as i128)
}

fn get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, SnapshotError> {
    v.get(key)
        .ok_or_else(|| inv(format!("missing key {key:?}")))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, SnapshotError> {
    get(v, key)?
        .as_usize()
        .ok_or_else(|| inv(format!("key {key:?} is not a usize")))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, SnapshotError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| inv(format!("key {key:?} is not a u64")))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, SnapshotError> {
    get(v, key)?
        .as_f64()
        .ok_or_else(|| inv(format!("key {key:?} is not a float")))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, SnapshotError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| inv(format!("key {key:?} is not a bool")))
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, SnapshotError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| inv(format!("key {key:?} is not a string")))
}

fn as_list<'v>(v: &'v Value, what: &str) -> Result<&'v [Value], SnapshotError> {
    v.as_list()
        .ok_or_else(|| inv(format!("{what} must be a list")))
}

/// The run identity: a hash of the canonical config and dataset sections.
/// A checkpoint only resumes against the run it was taken from.
fn fingerprint_of(config: &Value, dataset: &Value) -> String {
    let mut bytes = config.to_json().into_bytes();
    bytes.extend_from_slice(dataset.to_json().as_bytes());
    format!("{:016x}", fnv1a64(&bytes))
}

// -- identifiers ---------------------------------------------------------

fn enc_vid(v: VarId) -> Value {
    Value::List(vec![
        Value::Int(v.object.0 as i128),
        Value::Int(v.attr.0 as i128),
    ])
}

fn dec_vid(v: &Value) -> Result<VarId, SnapshotError> {
    match as_list(v, "variable id")? {
        [o, a] => {
            let o = o
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| inv("variable object id out of range"))?;
            let a = a
                .as_u16()
                .ok_or_else(|| inv("variable attr id out of range"))?;
            Ok(VarId::new(o, a))
        }
        _ => Err(inv("variable id must be [object, attr]")),
    }
}

// -- expressions and conditions ------------------------------------------

fn op_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
    }
}

fn dec_op(s: &str) -> Result<CmpOp, SnapshotError> {
    Ok(match s {
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        other => return Err(inv(format!("unknown comparison operator {other:?}"))),
    })
}

fn enc_operand(rhs: Operand) -> Value {
    match rhs {
        Operand::Const(c) => Value::obj(vec![("c", Value::Int(c as i128))]),
        Operand::Var(v) => Value::obj(vec![("v", enc_vid(v))]),
    }
}

fn dec_operand(v: &Value) -> Result<Operand, SnapshotError> {
    if let Some(c) = v.get("c") {
        let c = c
            .as_u16()
            .ok_or_else(|| inv("constant operand out of range"))?;
        Ok(Operand::Const(c))
    } else if let Some(var) = v.get("v") {
        Ok(Operand::Var(dec_vid(var)?))
    } else {
        Err(inv("operand must carry \"c\" or \"v\""))
    }
}

fn enc_expr(e: &Expr) -> Value {
    Value::obj(vec![
        ("v", enc_vid(e.var())),
        ("op", Value::Str(op_name(e.op()).into())),
        ("rhs", enc_operand(e.rhs())),
    ])
}

fn dec_expr(v: &Value) -> Result<Expr, SnapshotError> {
    Ok(Expr::new(
        dec_vid(get(v, "v")?)?,
        dec_op(get_str(v, "op")?)?,
        dec_operand(get(v, "rhs")?)?,
    ))
}

fn enc_cond(c: &Condition) -> Value {
    match c {
        Condition::True => Value::Bool(true),
        Condition::False => Value::Bool(false),
        Condition::Cnf(_) => Value::List(
            c.clauses()
                .iter()
                .map(|cl: &Clause| Value::List(cl.exprs().iter().map(enc_expr).collect()))
                .collect(),
        ),
    }
}

fn dec_cond(v: &Value) -> Result<Condition, SnapshotError> {
    match v {
        Value::Bool(true) => Ok(Condition::True),
        Value::Bool(false) => Ok(Condition::False),
        Value::List(clauses) => {
            // `from_clauses` canonicalizes; serialized conditions are
            // already canonical, so the rebuild is an identity.
            let mut raw = Vec::with_capacity(clauses.len());
            for cl in clauses {
                let exprs = as_list(cl, "clause")?;
                raw.push(
                    exprs
                        .iter()
                        .map(dec_expr)
                        .collect::<Result<Vec<Expr>, SnapshotError>>()?,
                );
            }
            Ok(Condition::from_clauses(raw))
        }
        _ => Err(inv("condition must be a bool or a clause list")),
    }
}

fn enc_ctable(ctable: &CTable) -> Value {
    Value::List(ctable.iter().map(|(_, c)| enc_cond(c)).collect())
}

fn dec_ctable(v: &Value) -> Result<CTable, SnapshotError> {
    let conds = as_list(v, "ctable")?
        .iter()
        .map(dec_cond)
        .collect::<Result<Vec<Condition>, SnapshotError>>()?;
    Ok(CTable::new(conds))
}

// -- constraint store -----------------------------------------------------

fn rel_name(r: Relation) -> &'static str {
    match r {
        Relation::Lt => "lt",
        Relation::Eq => "eq",
        Relation::Gt => "gt",
    }
}

fn dec_rel(s: &str) -> Result<Relation, SnapshotError> {
    Ok(match s {
        "lt" => Relation::Lt,
        "eq" => Relation::Eq,
        "gt" => Relation::Gt,
        other => return Err(inv(format!("unknown relation {other:?}"))),
    })
}

fn enc_store(store: &ConstraintStore) -> Value {
    Value::obj(vec![
        (
            "cards",
            Value::List(
                store
                    .attr_cards()
                    .iter()
                    .map(|&c| Value::Int(c as i128))
                    .collect(),
            ),
        ),
        (
            "masks",
            Value::List(
                store
                    .masks()
                    .iter()
                    .map(|(v, &m)| Value::List(vec![enc_vid(*v), Value::Int(m as i128)]))
                    .collect(),
            ),
        ),
        (
            "facts",
            Value::List(
                store
                    .facts()
                    .iter()
                    .map(|((l, r), &rel)| {
                        Value::List(vec![
                            enc_vid(*l),
                            enc_vid(*r),
                            Value::Str(rel_name(rel).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dec_store(v: &Value) -> Result<ConstraintStore, SnapshotError> {
    let cards = as_list(get(v, "cards")?, "cards")?
        .iter()
        .map(|c| c.as_u16().ok_or_else(|| inv("cardinality out of range")))
        .collect::<Result<Vec<u16>, SnapshotError>>()?;
    let mut masks = BTreeMap::new();
    for entry in as_list(get(v, "masks")?, "masks")? {
        match as_list(entry, "mask entry")? {
            [var, mask] => {
                let mask = mask.as_u64().ok_or_else(|| inv("mask is not a u64"))?;
                masks.insert(dec_vid(var)?, mask);
            }
            _ => return Err(inv("mask entry must be [var, mask]")),
        }
    }
    let mut facts = BTreeMap::new();
    for entry in as_list(get(v, "facts")?, "facts")? {
        match as_list(entry, "fact entry")? {
            [l, r, rel] => {
                let rel = rel
                    .as_str()
                    .ok_or_else(|| inv("fact relation is not a string"))?;
                facts.insert((dec_vid(l)?, dec_vid(r)?), dec_rel(rel)?);
            }
            _ => return Err(inv("fact entry must be [left, right, relation]")),
        }
    }
    Ok(ConstraintStore::from_parts(cards, masks, facts))
}

// -- distributions --------------------------------------------------------

fn enc_pmf_map<'m>(entries: impl Iterator<Item = (&'m VarId, &'m Pmf)>) -> Value {
    Value::List(
        entries
            .map(|(v, pmf)| {
                Value::List(vec![
                    enc_vid(*v),
                    Value::List(pmf.probs().iter().map(|&p| Value::Float(p)).collect()),
                ])
            })
            .collect(),
    )
}

fn dec_pmf_map(v: &Value) -> Result<BTreeMap<VarId, Pmf>, SnapshotError> {
    let mut out = BTreeMap::new();
    for entry in as_list(v, "distribution map")? {
        match as_list(entry, "distribution entry")? {
            [var, probs] => {
                let probs = as_list(probs, "pmf probabilities")?
                    .iter()
                    .map(|p| p.as_f64().ok_or_else(|| inv("pmf entry is not a float")))
                    .collect::<Result<Vec<f64>, SnapshotError>>()?;
                let total: f64 = probs.iter().sum();
                if probs.is_empty()
                    || probs.iter().any(|p| !p.is_finite() || *p < 0.0)
                    || (total - 1.0).abs() >= 1e-6
                {
                    return Err(inv("pmf probabilities do not form a distribution"));
                }
                // Exact restore: the serialized floats are bit-identical to
                // the originals, so no renormalization happens here.
                out.insert(dec_vid(var)?, Pmf::from_probs(probs));
            }
            _ => return Err(inv("distribution entry must be [var, probs]")),
        }
    }
    Ok(out)
}

// -- dataset --------------------------------------------------------------

fn enc_dataset(data: &Dataset) -> Value {
    let domains = data
        .domains()
        .iter()
        .map(|d| {
            Value::obj(vec![
                ("name", Value::Str(d.name().into())),
                ("card", Value::Int(d.cardinality() as i128)),
            ])
        })
        .collect();
    let rows = data
        .objects()
        .map(|o| {
            Value::List(
                data.row(o)
                    .iter()
                    .map(|cell| match cell {
                        Some(v) => Value::Int(*v as i128),
                        None => Value::Null,
                    })
                    .collect(),
            )
        })
        .collect();
    Value::obj(vec![
        ("name", Value::Str(data.name().into())),
        ("domains", Value::List(domains)),
        ("rows", Value::List(rows)),
    ])
}

fn dec_dataset(v: &Value) -> Result<Dataset, SnapshotError> {
    let name = get_str(v, "name")?;
    let mut domains = Vec::new();
    for d in as_list(get(v, "domains")?, "domains")? {
        let card = get(d, "card")?
            .as_u16()
            .ok_or_else(|| inv("domain cardinality out of range"))?;
        domains.push(
            Domain::new(get_str(d, "name")?, card)
                .map_err(|e| inv(format!("invalid domain: {e}")))?,
        );
    }
    let mut rows = Vec::new();
    for row in as_list(get(v, "rows")?, "rows")? {
        let mut cells = Vec::new();
        for cell in as_list(row, "row")? {
            cells.push(match cell {
                Value::Null => None,
                other => Some(
                    other
                        .as_u16()
                        .ok_or_else(|| inv("cell value out of range"))?,
                ),
            });
        }
        rows.push(cells);
    }
    Dataset::from_rows(name, domains, rows).map_err(|e| inv(format!("invalid dataset: {e}")))
}

// -- retry queue and probability cache ------------------------------------

fn enc_task(t: &Task) -> Value {
    Value::obj(vec![("v", enc_vid(t.var)), ("rhs", enc_operand(t.rhs))])
}

fn dec_task(v: &Value) -> Result<Task, SnapshotError> {
    Ok(Task {
        var: dec_vid(get(v, "v")?)?,
        rhs: dec_operand(get(v, "rhs")?)?,
    })
}

fn enc_pending(pending: &[PendingTask]) -> Value {
    Value::List(
        pending
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("task", enc_task(&p.task)),
                    ("attempts", uint(p.attempts)),
                    ("eligible_round", uint(p.eligible_round)),
                ])
            })
            .collect(),
    )
}

fn dec_pending(v: &Value) -> Result<Vec<PendingTask>, SnapshotError> {
    as_list(v, "pending queue")?
        .iter()
        .map(|p| {
            Ok(PendingTask {
                task: dec_task(get(p, "task")?)?,
                attempts: get_usize(p, "attempts")?,
                eligible_round: get_usize(p, "eligible_round")?,
            })
        })
        .collect()
}

fn enc_prob_cache(cache: &BTreeMap<ObjectId, f64>) -> Value {
    Value::List(
        cache
            .iter()
            .map(|(o, &p)| Value::List(vec![Value::Int(o.0 as i128), Value::Float(p)]))
            .collect(),
    )
}

fn dec_prob_cache(v: &Value) -> Result<BTreeMap<ObjectId, f64>, SnapshotError> {
    let mut out = BTreeMap::new();
    for entry in as_list(v, "probability cache")? {
        match as_list(entry, "cache entry")? {
            [o, p] => {
                let o = o
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| inv("cached object id out of range"))?;
                let p = p
                    .as_f64()
                    .ok_or_else(|| inv("cached probability is not a float"))?;
                out.insert(ObjectId(o), p);
            }
            _ => return Err(inv("cache entry must be [object, probability]")),
        }
    }
    Ok(out)
}

// -- platform state -------------------------------------------------------

fn enc_rng(rng: &[u64; 4]) -> Value {
    Value::List(rng.iter().map(|&w| Value::Int(w as i128)).collect())
}

fn dec_rng(v: &Value) -> Result<[u64; 4], SnapshotError> {
    match as_list(v, "rng state")? {
        [a, b, c, d] => {
            let word = |w: &Value| w.as_u64().ok_or_else(|| inv("rng word is not a u64"));
            Ok([word(a)?, word(b)?, word(c)?, word(d)?])
        }
        _ => Err(inv("rng state must be four words")),
    }
}

fn enc_crowd_stats(s: &CrowdStats) -> Value {
    Value::obj(vec![
        ("tasks_posted", uint(s.tasks_posted)),
        ("rounds", uint(s.rounds)),
        ("worker_answers", uint(s.worker_answers)),
        ("money_spent", Value::Int(s.money_spent as i128)),
    ])
}

fn dec_crowd_stats(v: &Value) -> Result<CrowdStats, SnapshotError> {
    Ok(CrowdStats {
        tasks_posted: get_usize(v, "tasks_posted")?,
        rounds: get_usize(v, "rounds")?,
        worker_answers: get_usize(v, "worker_answers")?,
        money_spent: get_u64(v, "money_spent")?,
    })
}

fn enc_platform_state(state: &PlatformState) -> Value {
    match state {
        PlatformState::Simulated {
            rng,
            stats,
            escalated,
            log,
        } => Value::obj(vec![
            ("kind", Value::Str("simulated".into())),
            ("rng", enc_rng(rng)),
            ("stats", enc_crowd_stats(stats)),
            ("escalated", uint(*escalated)),
            (
                "log",
                Value::List(
                    log.iter()
                        .map(|a| {
                            Value::obj(vec![
                                ("task", enc_task(&a.task)),
                                ("rel", Value::Str(rel_name(a.relation).into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        PlatformState::Faulty {
            rng,
            workforce,
            overlay,
            faults,
            inner,
        } => Value::obj(vec![
            ("kind", Value::Str("faulty".into())),
            ("rng", enc_rng(rng)),
            ("workforce", Value::Float(*workforce)),
            ("overlay", enc_crowd_stats(overlay)),
            (
                "faults",
                Value::obj(vec![
                    ("expired", uint(faults.expired_injected)),
                    ("spam", uint(faults.spam_injected)),
                    ("duplicates", uint(faults.duplicates_injected)),
                    ("straggler_rounds", uint(faults.straggler_rounds)),
                ]),
            ),
            ("inner", enc_platform_state(inner)),
        ]),
    }
}

fn dec_platform_state(v: &Value) -> Result<PlatformState, SnapshotError> {
    match get_str(v, "kind")? {
        "simulated" => {
            let mut log = Vec::new();
            for a in as_list(get(v, "log")?, "answer log")? {
                log.push(TaskAnswer {
                    task: dec_task(get(a, "task")?)?,
                    relation: dec_rel(get_str(a, "rel")?)?,
                });
            }
            Ok(PlatformState::Simulated {
                rng: dec_rng(get(v, "rng")?)?,
                stats: dec_crowd_stats(get(v, "stats")?)?,
                escalated: get_usize(v, "escalated")?,
                log,
            })
        }
        "faulty" => {
            let faults = get(v, "faults")?;
            Ok(PlatformState::Faulty {
                rng: dec_rng(get(v, "rng")?)?,
                workforce: get_f64(v, "workforce")?,
                overlay: dec_crowd_stats(get(v, "overlay")?)?,
                faults: FaultStats {
                    expired_injected: get_usize(faults, "expired")?,
                    spam_injected: get_usize(faults, "spam")?,
                    duplicates_injected: get_usize(faults, "duplicates")?,
                    straggler_rounds: get_usize(faults, "straggler_rounds")?,
                },
                inner: Box::new(dec_platform_state(get(v, "inner")?)?),
            })
        }
        other => Err(inv(format!("unknown platform state kind {other:?}"))),
    }
}

// -- configuration --------------------------------------------------------

fn enc_learn(l: &LearnConfig) -> Value {
    Value::obj(vec![
        ("max_parents", uint(l.max_parents)),
        ("laplace", Value::Float(l.laplace)),
        ("max_rows_for_scoring", uint(l.max_rows_for_scoring)),
        ("max_iterations", uint(l.max_iterations)),
    ])
}

fn dec_learn(v: &Value) -> Result<LearnConfig, SnapshotError> {
    Ok(LearnConfig {
        max_parents: get_usize(v, "max_parents")?,
        laplace: get_f64(v, "laplace")?,
        max_rows_for_scoring: get_usize(v, "max_rows_for_scoring")?,
        max_iterations: get_usize(v, "max_iterations")?,
    })
}

fn enc_config(c: &BayesCrowdConfig) -> Value {
    let strategy = match c.strategy {
        TaskStrategy::Fbs => Value::obj(vec![("kind", Value::Str("fbs".into()))]),
        TaskStrategy::Ubs => Value::obj(vec![("kind", Value::Str("ubs".into()))]),
        TaskStrategy::Hhs { m } => {
            Value::obj(vec![("kind", Value::Str("hhs".into())), ("m", uint(m))])
        }
    };
    let ranking = match c.ranking {
        ObjectRanking::Entropy => Value::obj(vec![("kind", Value::Str("entropy".into()))]),
        ObjectRanking::Random { seed } => Value::obj(vec![
            ("kind", Value::Str("random".into())),
            ("seed", Value::Int(seed as i128)),
        ]),
    };
    let solver = match c.solver {
        SolverKind::Adpll => "adpll",
        SolverKind::Naive => "naive",
        SolverKind::MonteCarlo => "montecarlo",
    };
    let heuristic = match c.branch_heuristic {
        BranchHeuristic::MostFrequent => "most-frequent",
        BranchHeuristic::First => "first",
    };
    let dominators = match c.dominators {
        DominatorStrategy::FastIndex => "fast-index",
        DominatorStrategy::Baseline => "baseline",
    };
    let em = match &c.model.em {
        None => Value::Null,
        Some(em) => Value::obj(vec![
            ("iterations", uint(em.iterations)),
            ("max_missing_per_row", uint(em.max_missing_per_row)),
            ("laplace", Value::Float(em.laplace)),
        ]),
    };
    let search = match &c.model.search {
        StructureSearch::HillClimb => Value::obj(vec![("kind", Value::Str("hill-climb".into()))]),
        StructureSearch::Anneal(a) => Value::obj(vec![
            ("kind", Value::Str("anneal".into())),
            ("learn", enc_learn(&a.learn)),
            ("initial_temperature", Value::Float(a.initial_temperature)),
            ("cooling", Value::Float(a.cooling)),
            ("moves", uint(a.moves)),
            ("seed", Value::Int(a.seed as i128)),
        ]),
    };
    Value::obj(vec![
        ("budget", uint(c.budget)),
        ("latency", uint(c.latency)),
        ("alpha", Value::Float(c.alpha)),
        ("strategy", strategy),
        ("ranking", ranking),
        ("solver", Value::Str(solver.into())),
        ("branch_heuristic", Value::Str(heuristic.into())),
        ("solver_caching", Value::Bool(c.solver_caching)),
        ("dominators", Value::Str(dominators.into())),
        (
            "model",
            Value::obj(vec![
                ("learn", enc_learn(&c.model.learn)),
                ("uniform_prior", Value::Bool(c.model.uniform_prior)),
                ("em", em),
                ("search", search),
            ]),
        ),
        ("conflict_free", Value::Bool(c.conflict_free)),
        ("propagate_answers", Value::Bool(c.propagate_answers)),
        ("parallel", Value::Bool(c.parallel)),
        (
            "retry",
            Value::obj(vec![
                ("max_attempts", uint(c.retry.max_attempts)),
                ("escalate_workers", uint(c.retry.escalate_workers)),
                ("backoff_base", uint(c.retry.backoff_base)),
            ]),
        ),
        ("answer_threshold", Value::Float(c.answer_threshold)),
    ])
}

fn dec_config(v: &Value) -> Result<BayesCrowdConfig, SnapshotError> {
    let strategy_v = get(v, "strategy")?;
    let strategy = match get_str(strategy_v, "kind")? {
        "fbs" => TaskStrategy::Fbs,
        "ubs" => TaskStrategy::Ubs,
        "hhs" => TaskStrategy::Hhs {
            m: get_usize(strategy_v, "m")?,
        },
        other => return Err(inv(format!("unknown strategy {other:?}"))),
    };
    let ranking_v = get(v, "ranking")?;
    let ranking = match get_str(ranking_v, "kind")? {
        "entropy" => ObjectRanking::Entropy,
        "random" => ObjectRanking::Random {
            seed: get_u64(ranking_v, "seed")?,
        },
        other => return Err(inv(format!("unknown ranking {other:?}"))),
    };
    let solver = match get_str(v, "solver")? {
        "adpll" => SolverKind::Adpll,
        "naive" => SolverKind::Naive,
        "montecarlo" => SolverKind::MonteCarlo,
        other => return Err(inv(format!("unknown solver {other:?}"))),
    };
    let branch_heuristic = match get_str(v, "branch_heuristic")? {
        "most-frequent" => BranchHeuristic::MostFrequent,
        "first" => BranchHeuristic::First,
        other => return Err(inv(format!("unknown branch heuristic {other:?}"))),
    };
    let dominators = match get_str(v, "dominators")? {
        "fast-index" => DominatorStrategy::FastIndex,
        "baseline" => DominatorStrategy::Baseline,
        other => return Err(inv(format!("unknown dominator strategy {other:?}"))),
    };
    let model_v = get(v, "model")?;
    let em = match get(model_v, "em")? {
        Value::Null => None,
        em => Some(EmConfig {
            iterations: get_usize(em, "iterations")?,
            max_missing_per_row: get_usize(em, "max_missing_per_row")?,
            laplace: get_f64(em, "laplace")?,
        }),
    };
    let search_v = get(model_v, "search")?;
    let search = match get_str(search_v, "kind")? {
        "hill-climb" => StructureSearch::HillClimb,
        "anneal" => StructureSearch::Anneal(AnnealConfig {
            learn: dec_learn(get(search_v, "learn")?)?,
            initial_temperature: get_f64(search_v, "initial_temperature")?,
            cooling: get_f64(search_v, "cooling")?,
            moves: get_usize(search_v, "moves")?,
            seed: get_u64(search_v, "seed")?,
        }),
        other => return Err(inv(format!("unknown structure search {other:?}"))),
    };
    let retry_v = get(v, "retry")?;
    Ok(BayesCrowdConfig {
        budget: get_usize(v, "budget")?,
        latency: get_usize(v, "latency")?,
        alpha: get_f64(v, "alpha")?,
        strategy,
        ranking,
        solver,
        branch_heuristic,
        solver_caching: get_bool(v, "solver_caching")?,
        dominators,
        model: ModelConfig {
            learn: dec_learn(get(model_v, "learn")?)?,
            uniform_prior: get_bool(model_v, "uniform_prior")?,
            em,
            search,
        },
        conflict_free: get_bool(v, "conflict_free")?,
        propagate_answers: get_bool(v, "propagate_answers")?,
        parallel: get_bool(v, "parallel")?,
        retry: RetryPolicy {
            max_attempts: get_usize(retry_v, "max_attempts")?,
            escalate_workers: get_usize(retry_v, "escalate_workers")?,
            backoff_base: get_usize(retry_v, "backoff_base")?,
        },
        answer_threshold: get_f64(v, "answer_threshold")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_bayes::anneal::AnnealConfig;

    #[test]
    fn config_round_trips_through_the_codec() {
        let config = BayesCrowdConfig {
            budget: 42,
            latency: 7,
            alpha: 0.125,
            strategy: TaskStrategy::Hhs { m: 9 },
            ranking: ObjectRanking::Random { seed: u64::MAX },
            solver: SolverKind::MonteCarlo,
            branch_heuristic: BranchHeuristic::First,
            solver_caching: false,
            dominators: DominatorStrategy::Baseline,
            model: ModelConfig {
                learn: LearnConfig {
                    max_parents: 3,
                    laplace: 0.5,
                    max_rows_for_scoring: 123,
                    max_iterations: 17,
                },
                uniform_prior: true,
                em: Some(EmConfig {
                    iterations: 4,
                    max_missing_per_row: 2,
                    laplace: 2.0,
                }),
                search: StructureSearch::Anneal(AnnealConfig {
                    seed: 99,
                    ..Default::default()
                }),
            },
            conflict_free: false,
            propagate_answers: false,
            parallel: true,
            retry: RetryPolicy {
                max_attempts: 5,
                escalate_workers: 2,
                backoff_base: 1,
            },
            answer_threshold: 0.625,
        };
        let encoded = enc_config(&config);
        let decoded = dec_config(&encoded).expect("decodes");
        // Re-encoding the decoded config must reproduce the same tree —
        // the codec is lossless and canonical.
        assert_eq!(enc_config(&decoded).to_json(), encoded.to_json());
        assert_eq!(decoded.budget, 42);
        assert_eq!(decoded.branch_heuristic, BranchHeuristic::First);
        assert!(!decoded.solver_caching);
        assert!(matches!(
            decoded.model.search,
            StructureSearch::Anneal(AnnealConfig { seed: 99, .. })
        ));
    }

    #[test]
    fn dataset_round_trips_through_the_codec() {
        let data = bc_data::generators::sample::paper_dataset();
        let encoded = enc_dataset(&data);
        let decoded = dec_dataset(&encoded).expect("decodes");
        assert_eq!(decoded.name(), data.name());
        assert_eq!(decoded.n_objects(), data.n_objects());
        assert_eq!(decoded.n_missing(), data.n_missing());
        for o in data.objects() {
            assert_eq!(decoded.row(o), data.row(o));
        }
        assert_eq!(enc_dataset(&decoded).to_json(), encoded.to_json());
    }

    #[test]
    fn conditions_round_trip_canonically() {
        let v1 = VarId::new(3, 0);
        let v2 = VarId::new(5, 1);
        let cond = Condition::from_clauses(vec![
            vec![Expr::lt(v1, 2), Expr::var_gt(v1, v2)],
            vec![Expr::gt(v2, 1)],
        ]);
        for c in [Condition::True, Condition::False, cond] {
            let decoded = dec_cond(&enc_cond(&c)).expect("decodes");
            assert_eq!(decoded, c);
            // Canonicalization is idempotent: re-encoding is byte-stable.
            assert_eq!(enc_cond(&decoded).to_json(), enc_cond(&c).to_json());
        }
    }

    #[test]
    fn platform_state_round_trips_nested() {
        let answer = TaskAnswer {
            task: Task {
                var: VarId::new(1, 2),
                rhs: Operand::Const(3),
            },
            relation: Relation::Gt,
        };
        let state = PlatformState::Faulty {
            rng: [1, u64::MAX, 3, 4],
            workforce: 0.75,
            overlay: CrowdStats {
                tasks_posted: 8,
                rounds: 2,
                worker_answers: 0,
                money_spent: u64::MAX,
            },
            faults: FaultStats {
                expired_injected: 1,
                spam_injected: 2,
                duplicates_injected: 3,
                straggler_rounds: 4,
            },
            inner: Box::new(PlatformState::Simulated {
                rng: [9, 8, 7, 6],
                stats: CrowdStats::default(),
                escalated: 5,
                log: vec![answer],
            }),
        };
        let decoded = dec_platform_state(&enc_platform_state(&state)).expect("decodes");
        assert_eq!(decoded, state);
    }

    #[test]
    fn pmf_maps_restore_bit_exactly() {
        let mut map = BTreeMap::new();
        map.insert(VarId::new(0, 0), Pmf::from_weights(vec![1.0, 2.0, 4.0]));
        map.insert(VarId::new(1, 3), Pmf::uniform(7));
        let decoded = dec_pmf_map(&enc_pmf_map(map.iter())).expect("decodes");
        assert_eq!(decoded.len(), 2);
        for (v, pmf) in &map {
            let got = &decoded[v];
            assert_eq!(got.probs(), pmf.probs(), "bit-exact restore for {v}");
        }
    }

    #[test]
    fn corrupt_sections_are_rejected_not_panicked() {
        for bad in [
            Value::Str("nope".into()),
            Value::List(vec![Value::Int(1)]),
            Value::obj(vec![("kind", Value::Str("martian".into()))]),
        ] {
            assert!(dec_platform_state(&bad).is_err());
            assert!(dec_config(&bad).is_err());
            assert!(dec_dataset(&bad).is_err());
        }
        // A pmf that does not sum to one is data corruption the checksum
        // cannot catch (it was written that way): the decoder must reject
        // it instead of panicking inside Pmf::from_probs.
        let bad_pmf = Value::List(vec![Value::List(vec![
            enc_vid(VarId::new(0, 0)),
            Value::List(vec![Value::Float(0.9), Value::Float(0.3)]),
        ])]);
        assert!(dec_pmf_map(&bad_pmf).is_err());
    }
}
