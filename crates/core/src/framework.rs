//! The BayesCrowd framework (Algorithm 1 + Algorithm 4).
//!
//! [`BayesCrowd::run`] and [`BayesCrowd::try_run`] are thin loops over the
//! resumable [`Session`] API (see [`crate::session`]): they start a
//! session, [`step`](Session::step) it until the crowdsourcing loop
//! terminates, and [`finalize`](Session::finalize) it into a report.
//! Callers that want to checkpoint mid-run use [`BayesCrowd::session`]
//! directly.

use crate::config::BayesCrowdConfig;
use crate::error::RunError;
use crate::report::RunReport;
use crate::session::Session;
use bc_bayes::MissingValueModel;
use bc_crowd::CrowdPlatform;
use bc_ctable::{build_ctable, CTable, CmpOp, Relation};
use bc_data::{Dataset, ObjectId};
use bc_obs::Observer;
use bc_solver::VarDists;

/// The crowd-assisted skyline query engine.
#[derive(Clone, Debug)]
pub struct BayesCrowd {
    config: BayesCrowdConfig,
}

impl BayesCrowd {
    /// An engine with the given configuration.
    pub fn new(config: BayesCrowdConfig) -> BayesCrowd {
        BayesCrowd { config }
    }

    /// The configuration.
    pub fn config(&self) -> &BayesCrowdConfig {
        &self.config
    }

    /// Runs the full query (Algorithm 1): modeling phase, then the iterative
    /// crowdsourcing phase against `platform`, and returns the answer set
    /// with all measurements. Accuracy is computed against the skyline of
    /// the platform's ground truth, when it exposes one.
    ///
    /// The platform is any [`CrowdPlatform`] — tasks may come back expired
    /// or inconsistent, in which case the configured
    /// [`RetryPolicy`](bc_crowd::RetryPolicy) re-queues them under the same
    /// budget `B` and latency `L`. When both run out with tasks still
    /// unanswered the run *degrades* instead of failing: the c-table keeps
    /// its symbolic variables, answer probabilities come from the current
    /// posterior, and the report's `degraded`/`tasks_expired` fields say
    /// what was given up.
    ///
    /// This is the infallible convenience wrapper: it observes nothing
    /// (every event goes to a [`bc_obs::NoopObserver`]), skips configuration
    /// validation (degenerate configs like `budget: 0` run to a trivial
    /// report), recovers the degraded report from a
    /// [`RunError::PlatformExhausted`], and **panics** on the errors
    /// [`BayesCrowd::try_run`] would return (empty dataset, unrecoverable
    /// solver failure). Use `try_run` when those must be handled.
    pub fn run(&self, data: &Dataset, platform: &mut dyn CrowdPlatform) -> RunReport {
        match self.run_loop(data, platform, None) {
            Ok(report) => report,
            Err(RunError::PlatformExhausted { report }) => *report,
            Err(e) => panic!("BayesCrowd::run failed: {e} (use try_run to handle errors)"),
        }
    }

    /// The fallible, observable run: like [`BayesCrowd::run`], but
    ///
    /// * the configuration is validated first
    ///   ([`RunError::Config`](RunError)),
    /// * an empty dataset and unrecoverable solver failures become typed
    ///   errors instead of panics,
    /// * a platform that answered nothing at all surfaces as
    ///   [`RunError::PlatformExhausted`] (with the degraded report
    ///   attached), and
    /// * every phase of the run streams structured [`Event`](bc_obs::Event)s
    ///   to `observer` — pass `&mut NoopObserver` for none, a
    ///   [`bc_obs::JsonLinesSink`] for a trace file, or a
    ///   [`bc_obs::MetricsRecorder`] for in-memory aggregation.
    pub fn try_run(
        &self,
        data: &Dataset,
        platform: &mut dyn CrowdPlatform,
        observer: &mut dyn Observer,
    ) -> Result<RunReport, RunError> {
        self.config.validate()?;
        self.run_loop(data, platform, Some(observer))
    }

    /// An unobserved resumable session over `data` and `platform`: the
    /// modeling phase runs here, the crowdsourcing rounds are driven by the
    /// caller via [`Session::step`] with a [`Session::checkpoint`] wherever
    /// durability is wanted. The configuration is validated first.
    pub fn session<'a>(
        &self,
        data: &Dataset,
        platform: &'a mut dyn CrowdPlatform,
    ) -> Result<Session<'a>, RunError> {
        self.config.validate()?;
        Session::start(self.config.clone(), data, platform, None)
    }

    /// [`BayesCrowd::session`] with an observer: the session streams the
    /// same structured events a [`BayesCrowd::try_run`] would.
    pub fn session_observed<'a>(
        &self,
        data: &Dataset,
        platform: &'a mut dyn CrowdPlatform,
        observer: &'a mut dyn Observer,
    ) -> Result<Session<'a>, RunError> {
        self.config.validate()?;
        Session::start(self.config.clone(), data, platform, Some(observer))
    }

    fn run_loop<'a>(
        &self,
        data: &Dataset,
        platform: &'a mut dyn CrowdPlatform,
        observer: Option<&'a mut dyn Observer>,
    ) -> Result<RunReport, RunError> {
        let mut session = Session::start(self.config.clone(), data, platform, observer)?;
        while session.step()? {}
        session.finalize()
    }
}

/// Truth of an expression `var op rhs` given the answered relation of
/// `var` to `rhs`.
pub(crate) fn expr_truth(op: CmpOp, rel: Relation) -> bool {
    match op {
        CmpOp::Lt => rel == Relation::Lt,
        CmpOp::Le => rel != Relation::Gt,
        CmpOp::Gt => rel == Relation::Gt,
        CmpOp::Ge => rel != Relation::Lt,
        CmpOp::Eq => rel == Relation::Eq,
        CmpOp::Ne => rel != Relation::Eq,
    }
}

/// Convenience used by tests and examples: the answer set a machine-only
/// pass would return (no crowdsourcing at all) — certain answers plus
/// high-probability open objects.
pub fn machine_only_answers(data: &Dataset, config: &BayesCrowdConfig) -> (Vec<ObjectId>, CTable) {
    let model = MissingValueModel::learn(data, &config.model);
    let dists: VarDists = model.pmfs().iter().map(|(k, v)| (*k, v.clone())).collect();
    let ctable = build_ctable(data, &config.ctable_config());
    let solver = config.build_solver();
    let mut result = ctable.certain_answers();
    for o in ctable.open_objects() {
        let p = solver
            .probability(ctable.condition(o), &dists)
            .unwrap_or(0.0);
        if p > config.answer_threshold {
            result.push(o);
        }
    }
    result.sort_unstable();
    (result, ctable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::TaskStrategy;
    use bc_crowd::{CrowdPlatform, GroundTruthOracle, SimulatedPlatform, Task, TaskOutcome};
    use bc_data::generators::sample::{paper_completion, paper_dataset};
    use bc_obs::{Event, NoopObserver, RunPhase};

    fn sample_config(strategy: TaskStrategy) -> BayesCrowdConfig {
        BayesCrowdConfig {
            budget: 6,
            latency: 3,
            alpha: 1.0,
            strategy,
            ..Default::default()
        }
    }

    fn run_sample(strategy: TaskStrategy, accuracy: f64, seed: u64) -> RunReport {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, accuracy, seed);
        BayesCrowd::new(sample_config(strategy)).run(&data, &mut platform)
    }

    #[test]
    fn paper_example_4_setting_respects_budget_and_latency() {
        // Budget 6, latency 3 → 2 tasks per round, HHS with m = 2, perfect
        // workers (the paper's Example 4 setting). Which tasks get asked
        // depends on tie-breaks, so the guaranteed properties are the
        // budget/latency bounds and a high-quality answer.
        let report = run_sample(TaskStrategy::Hhs { m: 2 }, 1.0, 7);
        assert!(report.crowd.tasks_posted <= 6);
        assert!(report.crowd.rounds <= 3);
        assert!(report.accuracy.unwrap().f1 >= 0.8, "{}", report.summary());
        // The two machine-certain answers are always present.
        assert!(report.result.contains(&ObjectId(1)));
        assert!(report.result.contains(&ObjectId(2)));
    }

    #[test]
    fn ample_budget_resolves_the_sample_exactly() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 7);
        let config = BayesCrowdConfig {
            budget: 20,
            latency: 10,
            ..sample_config(TaskStrategy::Hhs { m: 2 })
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(
            report.result,
            vec![ObjectId(0), ObjectId(1), ObjectId(2), ObjectId(4)]
        );
        assert_eq!(report.accuracy.unwrap().f1, 1.0);
        assert_eq!(report.open_exprs_left, 0, "{}", report.summary());
    }

    #[test]
    fn all_strategies_solve_the_sample() {
        for strategy in [
            TaskStrategy::Fbs,
            TaskStrategy::Ubs,
            TaskStrategy::Hhs { m: 2 },
        ] {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 11);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(strategy)
            };
            let report = BayesCrowd::new(config).run(&data, &mut platform);
            assert_eq!(
                report.accuracy.unwrap().f1,
                1.0,
                "{} failed: {}",
                strategy.name(),
                report.summary()
            );
        }
    }

    #[test]
    fn zero_budget_posts_nothing() {
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 3);
        let config = BayesCrowdConfig {
            budget: 0,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert_eq!(report.crowd.tasks_posted, 0);
        assert_eq!(report.crowd.rounds, 0);
        // o2/o3 are certain regardless.
        assert!(report.certain.contains(&ObjectId(1)));
        assert!(report.certain.contains(&ObjectId(2)));
    }

    #[test]
    fn budget_is_respected() {
        let report = run_sample(TaskStrategy::Fbs, 1.0, 5);
        assert!(report.crowd.tasks_posted + report.budget_left <= 6);
    }

    #[test]
    fn latency_bounds_round_size() {
        // Budget 6, latency 2 → at most 3 tasks per round.
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 5);
        let config = BayesCrowdConfig {
            budget: 6,
            latency: 2,
            ..sample_config(TaskStrategy::Fbs)
        };
        let report = BayesCrowd::new(config).run(&data, &mut platform);
        assert!(report.crowd.rounds <= 3, "{}", report.summary());
    }

    #[test]
    fn noisy_workers_still_usually_work_on_the_sample() {
        // With accuracy 0.9, majority voting, and an ample budget the sample
        // usually resolves; across seeds the average F1 must stay high.
        let mut total = 0.0;
        for seed in 0..20 {
            let data = paper_dataset();
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 0.9, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 10,
                ..sample_config(TaskStrategy::Hhs { m: 2 })
            };
            total += BayesCrowd::new(config)
                .run(&data, &mut platform)
                .accuracy
                .unwrap()
                .f1;
        }
        assert!(total / 20.0 > 0.85, "avg f1 = {}", total / 20.0);
    }

    #[test]
    fn machine_only_pass_returns_probable_answers() {
        let data = paper_dataset();
        let (answers, ctable) = machine_only_answers(&data, &sample_config(TaskStrategy::Fbs));
        // o2, o3 certain; o1 and o5 have probability > 0.5 under uniform-ish
        // priors (φ(o1) ≈ 0.9+, φ(o5) ≈ 0.8).
        assert!(answers.contains(&ObjectId(1)));
        assert!(answers.contains(&ObjectId(2)));
        assert_eq!(ctable.open_objects().len(), 3);
    }

    #[test]
    fn expr_truth_table() {
        use CmpOp::*;
        assert!(expr_truth(Lt, Relation::Lt));
        assert!(!expr_truth(Lt, Relation::Eq));
        assert!(expr_truth(Le, Relation::Eq));
        assert!(expr_truth(Gt, Relation::Gt));
        assert!(!expr_truth(Gt, Relation::Eq));
        assert!(expr_truth(Ge, Relation::Eq));
        assert!(expr_truth(Eq, Relation::Eq));
        assert!(expr_truth(Ne, Relation::Gt));
    }

    #[test]
    fn propagation_ablation_resolves_less_per_budget() {
        // Statistically, cross-condition inference (constraint propagation)
        // resolves more expressions for the same budget than deciding only
        // the asked expression. On any single instance task selection may
        // diverge and luck can win, so the claim is tested in aggregate on a
        // non-trivial workload.
        let complete = bc_data::generators::classic::correlated(80, 4, 8, 0.7, 31);
        let (data, _) = bc_data::missing::inject_mcar(&complete, 0.2, 32);
        let run = |propagate: bool, seed: u64| {
            let oracle = GroundTruthOracle::new(complete.clone());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, seed);
            let config = BayesCrowdConfig {
                budget: 20,
                latency: 5,
                alpha: 1.0,
                propagate_answers: propagate,
                strategy: TaskStrategy::Fbs,
                ..Default::default()
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let mut with_total = 0usize;
        let mut without_total = 0usize;
        for seed in 0..6 {
            with_total += run(true, seed).open_exprs_left;
            without_total += run(false, seed).open_exprs_left;
        }
        assert!(
            with_total <= without_total,
            "propagation should resolve at least as much: {with_total} vs {without_total}"
        );
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let data = paper_dataset();
        let mk = |parallel: bool| {
            let oracle = GroundTruthOracle::new(paper_completion());
            let mut platform = SimulatedPlatform::new(oracle, 1.0, 9);
            let config = BayesCrowdConfig {
                parallel,
                ..sample_config(TaskStrategy::Fbs)
            };
            BayesCrowd::new(config).run(&data, &mut platform)
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a.result, b.result);
        assert_eq!(a.crowd.tasks_posted, b.crowd.tasks_posted);
        // Chunking must not change how often conditions are solved.
        assert_eq!(a.probability_evals, b.probability_evals);
    }

    /// A platform that accepts every task and answers none of them.
    struct BlackHolePlatform {
        stats: bc_crowd::CrowdStats,
    }

    impl BlackHolePlatform {
        fn new() -> BlackHolePlatform {
            BlackHolePlatform {
                stats: bc_crowd::CrowdStats::default(),
            }
        }
    }

    impl CrowdPlatform for BlackHolePlatform {
        fn post_round(&mut self, tasks: &[Task]) -> Vec<bc_crowd::TaskResult> {
            self.stats.tasks_posted += tasks.len();
            self.stats.rounds += 1;
            tasks
                .iter()
                .map(|&task| bc_crowd::TaskResult {
                    task,
                    outcome: TaskOutcome::Expired,
                })
                .collect()
        }

        fn stats(&self) -> bc_crowd::CrowdStats {
            self.stats
        }
    }

    #[test]
    fn finalize_reuses_cached_probabilities() {
        // When no crowd answer arrives, no variable distribution changes, so
        // every condition probability computed during task selection is
        // still valid at finalize: each open object must be solved exactly
        // once across the whole run, and the finalize phase must not emit a
        // probability batch at all.
        let data = paper_dataset();
        let mut platform = BlackHolePlatform::new();
        let mut metrics = bc_obs::MetricsRecorder::new();
        let err = BayesCrowd::new(sample_config(TaskStrategy::Fbs))
            .try_run(&data, &mut platform, &mut metrics)
            .unwrap_err();
        let report = match err {
            RunError::PlatformExhausted { report } => *report,
            other => panic!("expected PlatformExhausted, got {other}"),
        };
        let n_open = report.open_probabilities.len();
        assert!(n_open > 0);
        assert_eq!(report.probability_evals, n_open as u64);
        let finalize_batches = metrics
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::ProbabilityBatch {
                        phase: RunPhase::Finalize,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(finalize_batches, 0, "finalize re-solved a warm cache");
    }

    #[test]
    fn run_recovers_the_report_when_the_platform_is_exhausted() {
        // The infallible wrapper must not panic on PlatformExhausted — the
        // degraded machine-only report is a usable answer.
        let data = paper_dataset();
        let mut platform = BlackHolePlatform::new();
        let report = BayesCrowd::new(sample_config(TaskStrategy::Fbs)).run(&data, &mut platform);
        assert!(report.crowd.tasks_posted > 0);
        assert!(report.degraded);
        assert!(report.certain.contains(&ObjectId(1)));
    }

    #[test]
    fn try_run_rejects_an_empty_dataset() {
        let domain = bc_data::Domain::new("a", 4).unwrap();
        let data = Dataset::from_rows("empty", vec![domain], vec![]).unwrap();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 1);
        let err = BayesCrowd::new(sample_config(TaskStrategy::Fbs))
            .try_run(&data, &mut platform, &mut NoopObserver)
            .unwrap_err();
        assert!(matches!(err, RunError::EmptyDataset), "{err}");
    }

    #[test]
    fn try_run_rejects_an_invalid_config() {
        // Struct-literal construction deliberately skips validation (the
        // zero-budget ablation above depends on it); try_run re-checks.
        let data = paper_dataset();
        let oracle = GroundTruthOracle::new(paper_completion());
        let mut platform = SimulatedPlatform::new(oracle, 1.0, 1);
        let config = BayesCrowdConfig {
            budget: 0,
            ..sample_config(TaskStrategy::Fbs)
        };
        let err = BayesCrowd::new(config)
            .try_run(&data, &mut platform, &mut NoopObserver)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RunError::Config(crate::config::ConfigError::ZeroBudget)
            ),
            "{err}"
        );
    }

    #[test]
    fn try_run_report_matches_run() {
        let data = paper_dataset();
        let mk_platform = || {
            let oracle = GroundTruthOracle::new(paper_completion());
            SimulatedPlatform::new(oracle, 1.0, 7)
        };
        let config = sample_config(TaskStrategy::Hhs { m: 2 });
        let via_run = BayesCrowd::new(config.clone()).run(&data, &mut mk_platform());
        let via_try = BayesCrowd::new(config)
            .try_run(&data, &mut mk_platform(), &mut NoopObserver)
            .unwrap();
        assert_eq!(via_run.result, via_try.result);
        assert_eq!(via_run.probability_evals, via_try.probability_evals);
        assert_eq!(via_run.crowd.tasks_posted, via_try.crowd.tasks_posted);
    }

    #[test]
    fn stepping_a_session_matches_run() {
        // Driving the loop manually through the Session API is exactly the
        // run() loop: same report, same posted tasks, same evals.
        let data = paper_dataset();
        let config = sample_config(TaskStrategy::Hhs { m: 2 });
        let mk_platform = || {
            let oracle = GroundTruthOracle::new(paper_completion());
            SimulatedPlatform::new(oracle, 1.0, 7)
        };
        let via_run = BayesCrowd::new(config.clone()).run(&data, &mut mk_platform());
        let mut platform = mk_platform();
        let mut session = BayesCrowd::new(config)
            .session(&data, &mut platform)
            .unwrap();
        let mut steps = 0;
        while session.step().unwrap() {
            steps += 1;
            assert!(session.round() >= steps);
        }
        assert!(session.is_finished());
        let via_session = session.finalize().unwrap();
        assert!(steps > 0);
        assert_eq!(via_run.result, via_session.result);
        assert_eq!(via_run.probability_evals, via_session.probability_evals);
        assert_eq!(via_run.crowd.tasks_posted, via_session.crowd.tasks_posted);
        assert_eq!(via_run.budget_left, via_session.budget_left);
    }
}
